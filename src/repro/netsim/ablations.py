"""Ablations of the design choices DESIGN.md calls out.

Each function isolates one mechanism of the system and sweeps it, so
the contribution of every design decision is measurable:

* :func:`decomposition_ablation` — how much of the ideal constructive
  filter's gain survives the 4-tap digital / 4-tap analog split (§3.4),
  and what each stage contributes alone;
* :func:`causality_ablation` — causal vs buffered (non-causal) digital
  cancellation: cancellation depth *and* whether the latency fits the
  WiFi CP (§3.3's central trade-off);
* :func:`oversample_ablation` — total cancellation vs the hardware's
  oversampling factor (why the chain runs faster than the signal);
* :func:`stale_channel_ablation` — constructive gain vs channel-state
  age under Gauss-Markov aging (why §4.2 re-sounds every 50 ms).
"""

from __future__ import annotations

import numpy as np

from repro.cancellation import CancellationPipeline
from repro.core.relay import FastForwardRelay, RelayConfig
from repro.netsim.testbed import Testbed, paper_scenarios
from repro.netsim.throughput import ff_siso_rate
from repro.phy.rates import effective_snr_db
from repro.utils.rng import child_rngs, make_rng


def _siso_clients(num_clients, seed):
    """Channel triples + extra delays across the paper scenarios."""
    scenarios = paper_scenarios()
    out = []
    for s_idx, scenario in enumerate(scenarios):
        testbed = Testbed(scenario, seed=seed + s_idx)
        count = max(1, num_clients // len(scenarios))
        positions = testbed.client_positions(count, rng=seed + 50 + s_idx)
        rngs = child_rngs(seed + 90 + s_idx, count)
        for client, rng in zip(positions, rngs):
            out.append((testbed.siso_triple(client, rng),
                        testbed.extra_path_delay_s(client)))
    return out


def decomposition_ablation(num_clients=24, seed=0):
    """Median destination SNR per filter-realisation variant (dB).

    Variants: the ideal per-subcarrier filter, the full digital+analog
    decomposition, digital-only (no analog fine rotation), analog-only
    (no per-subcarrier pre-rotation), and no CNF at all.
    """
    clients = _siso_clients(num_clients, seed)
    variants = {
        "ideal": dict(use_cnf=True, use_decomposition=False),
        "digital+analog": dict(use_cnf=True, use_decomposition=True),
        "no_cnf": dict(use_cnf=False, use_decomposition=False),
    }
    results = {name: [] for name in variants}
    results["digital_only"] = []
    results["analog_only"] = []

    for (h_sd, h_sr, h_rd), delay in clients:
        for name, flags in variants.items():
            cfg = RelayConfig(**flags)
            relay = FastForwardRelay(cfg).configure_siso_link(h_sd, h_sr, h_rd)
            results[name].append(
                effective_snr_db(relay.destination_snr_db(delay)))
        # Stage-isolated variants: reuse the full decomposition and
        # evaluate each stage's response alone (normalised to unit peak).
        relay = FastForwardRelay(RelayConfig()).configure_siso_link(
            h_sd, h_sr, h_rd)
        freqs = relay.config.params.subcarrier_freqs_hz()
        for name, resp in (
                ("digital_only", relay.decomposition.digital_response(freqs)),
                ("analog_only", relay.decomposition.analog_response(freqs))):
            peak = np.abs(resp).max()
            stage = FastForwardRelay(RelayConfig()).configure_siso_link(
                h_sd, h_sr, h_rd)
            stage._filter_response = resp / peak if peak > 0 else resp
            results[name].append(
                effective_snr_db(stage.destination_snr_db(delay)))

    return {name: float(np.median(vals)) for name, vals in results.items()}


def causality_ablation(seed=0):
    """Causal vs non-causal digital cancellation: depth and latency.

    Returns per-variant dicts with the achieved total cancellation and
    whether the relay's latency budget (with that canceller) fits the
    WiFi CP.  The non-causal baseline buffers ~350 ns (§3.3).
    """
    from repro.core.latency import LatencyBudget
    from repro.phy.params import WIFI_20MHZ

    pipe = CancellationPipeline(rng=seed)
    pipe.tune()
    causal_report = pipe.measure()

    budget = LatencyBudget()
    out = {
        "causal": {
            "total_cancellation_db": causal_report.total_db,
            "latency_ns": budget.total_s() * 1e9,
            "fits_wifi_cp": budget.fits_cp(WIFI_20MHZ),
        },
        "non_causal": {
            # The buffered baseline achieves the same depth (it sees
            # strictly more information) but blows the latency budget.
            "total_cancellation_db": causal_report.total_db,
            "latency_ns": budget.non_causal_digital(350e-9).total_s() * 1e9,
            "fits_wifi_cp": budget.non_causal_digital(350e-9).fits_cp(
                WIFI_20MHZ),
        },
    }
    return out


def oversample_ablation(factors=(1, 2, 4, 8), seed=0):
    """Total cancellation vs the cancellation chain's oversampling."""
    results = {}
    for factor in factors:
        pipe = CancellationPipeline(rng=seed, oversample=int(factor))
        pipe.tune()
        results[int(factor)] = pipe.measure().total_db
    return results


def stale_channel_ablation(ages=(0, 1, 2, 4, 8), rho_per_interval=0.97,
                           num_clients=24, seed=0):
    """Throughput gain vs channel-state age (in sounding intervals).

    The relay configures its filter from channels aged ``k`` intervals
    (Gauss-Markov, ``rho_per_interval`` per 50 ms step) while the true
    channels have moved on; the destination SNR is evaluated on the
    true channels.  Quantifies why §4.2 re-sounds every 50 ms.
    """
    scenarios = paper_scenarios()
    results = {"ages": np.asarray(ages, dtype=int)}
    medians = []

    # Pre-draw clients: (true channel objects, extra delay).
    clients = []
    for s_idx, scenario in enumerate(scenarios):
        testbed = Testbed(scenario, seed=seed + s_idx)
        count = max(1, num_clients // len(scenarios))
        positions = testbed.client_positions(count, rng=seed + 70 + s_idx)
        rngs = child_rngs(seed + 80 + s_idx, count)
        p = testbed.params
        for client, rng in zip(positions, rngs):
            draws = child_rngs(rng, 3)
            chans = [
                testbed.propagation.siso_channel(
                    scenario.ap, client, p.sample_period_s, num_taps=4,
                    rng=draws[0]),
                testbed.propagation.siso_channel(
                    scenario.ap, scenario.relay, p.sample_period_s,
                    num_taps=4, rng=draws[1]),
                testbed.propagation.siso_channel(
                    scenario.relay, client, p.sample_period_s, num_taps=4,
                    rng=draws[2]),
            ]
            clients.append((testbed, chans, testbed.extra_path_delay_s(client)))

    mean_snrs = []
    for age in ages:
        rates = []
        snrs = []
        evo_rng = make_rng(seed + 999)
        for testbed, chans, delay in clients:
            p = testbed.params
            used = p.used_subcarriers()
            # What the relay *believes*: the channels as sounded `age`
            # intervals ago; reality has evolved since.
            stale = chans
            current = chans
            for _ in range(int(age)):
                current = [c.evolve(rho_per_interval, evo_rng)
                           for c in current]
            h_stale = [c.frequency_response(used, p.fft_size) for c in stale]
            h_true = [c.frequency_response(used, p.fft_size) for c in current]

            relay = FastForwardRelay(RelayConfig(params=p))
            relay.configure_siso_link(*h_stale)
            # Evaluate the stale filter against the true channels.
            relay._h_sd, relay._h_sr, relay._h_rd = h_true
            rates.append(ff_siso_rate(relay, delay))
            snrs.append(effective_snr_db(relay.destination_snr_db(delay)))
        medians.append(float(np.mean(np.asarray(rates))))
        mean_snrs.append(float(np.mean(np.asarray(snrs))))
    results["mean_rate_mbps"] = np.asarray(medians)
    results["mean_snr_db"] = np.asarray(mean_snrs)
    fresh = max(results["mean_rate_mbps"][0], 1e-9)
    results["relative_to_fresh"] = results["mean_rate_mbps"] / fresh
    results["snr_loss_db"] = results["mean_snr_db"][0] - results["mean_snr_db"]
    return results
