"""Testbed scenarios: node placement over floor plans.

§5 evaluates in several indoor settings — "open wide office space,
L-shaped corridor and a wide room, two large wide rooms and ... the one
shown in Fig. 1".  Each is modelled as a floor plan with an AP and a
relay at fixed positions and clients drawn across the interior.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.floorplan import FloorPlan, Wall, fig1_home
from repro.channel.raytrace import PropagationModel
from repro.phy.params import OfdmParams, WIFI_20MHZ
from repro.utils.rng import child_rngs, make_rng
from repro.utils.units import SPEED_OF_LIGHT


@dataclass
class Scenario:
    """One physical deployment: floor plan + AP + relay positions."""

    name: str
    floorplan: FloorPlan
    ap: np.ndarray
    relay: np.ndarray

    def propagation(self, **kwargs):
        """A propagation model over this floor plan."""
        return PropagationModel(self.floorplan, **kwargs)


def _open_office():
    """Open wide office: 13 x 9 m, no interior walls, AP at a corner.

    The relay sits mid-room, ~5 m from the AP — close enough to keep a
    strong backhaul link, deep enough to rescue the far half.
    """
    plan = FloorPlan(13.0, 9.0, walls=(
        Wall((0, 0), (13, 0), 12.0, "south"),
        Wall((13, 0), (13, 9), 12.0, "east"),
        Wall((13, 9), (0, 9), 12.0, "north"),
        Wall((0, 9), (0, 0), 12.0, "west"),
    ), name="open-office")
    return Scenario("open-office", plan, np.array([0.8, 0.8]),
                    np.array([5.0, 3.5]))


def _l_corridor():
    """An L: corridor feeding a wide room — a deliberate pinhole.

    The AP sits at the corridor's end; the relay inside the corridor
    near its mouth so it can illuminate the room beyond.
    """
    walls = [
        Wall((0, 0), (12, 0), 12.0, "south"),
        Wall((12, 0), (12, 9), 12.0, "east"),
        Wall((12, 9), (0, 9), 12.0, "north"),
        Wall((0, 9), (0, 0), 12.0, "west"),
        # Corridor along the south edge (2 m wide, x in [0, 7]); gap at
        # the corridor mouth (x = 7..8.5) is the pinhole into the room.
        Wall((0, 2.0), (7.0, 2.0), 8.0, "corridor-inner"),
        Wall((8.5, 2.0), (12.0, 2.0), 8.0, "corridor-inner-east"),
    ]
    plan = FloorPlan(12.0, 9.0, walls,
                     apertures=((7.75, 2.0, 0.85),), name="l-corridor")
    return Scenario("l-corridor", plan, np.array([0.7, 1.0]),
                    np.array([5.7, 1.5]))


def _two_rooms():
    """Two large rooms with a single door between them."""
    walls = [
        Wall((0, 0), (12, 0), 12.0, "south"),
        Wall((12, 0), (12, 9), 12.0, "east"),
        Wall((12, 9), (0, 9), 12.0, "north"),
        Wall((0, 9), (0, 0), 12.0, "west"),
        Wall((6.0, 0.0), (6.0, 3.8), 9.0, "divider-south"),
        Wall((6.0, 5.0), (6.0, 9.0), 9.0, "divider-north"),
    ]
    plan = FloorPlan(12.0, 9.0, walls,
                     apertures=((6.0, 4.4, 0.7),), name="two-rooms")
    return Scenario("two-rooms", plan, np.array([0.8, 4.5]),
                    np.array([5.9, 4.4]))


def _home():
    plan, ap, relay = fig1_home()
    return Scenario("fig1-home", plan, ap, relay)


def paper_scenarios():
    """The four §5 settings, home first (the Fig. 1 layout)."""
    return [_home(), _open_office(), _l_corridor(), _two_rooms()]


class Testbed:
    """Channel factory for one scenario.

    Draws consistent channel triples (source->destination, source->
    relay, relay->destination) per client position, with reproducible
    child RNG streams, and computes the geometric extra delay of the
    via-relay route (it consumes CP budget alongside processing
    latency).
    """

    __test__ = False  # keep pytest from collecting this by name

    def __init__(self, scenario: Scenario, params: OfdmParams = WIFI_20MHZ,
                 seed=0, **propagation_kwargs):
        propagation_kwargs.setdefault("rms_delay_spread_s", 30e-9)
        self.scenario = scenario
        self.params = params
        self.propagation = scenario.propagation(**propagation_kwargs)
        self._seed = seed

    def client_positions(self, count, rng=None, min_ap_distance_m=1.0):
        """Draw client positions across the floor plan interior."""
        rng = make_rng(rng if rng is not None else self._seed)
        out = []
        while len(out) < count:
            pts = self.scenario.floorplan.random_points(count, rng)
            for pt in pts:
                if np.linalg.norm(pt - self.scenario.ap) >= min_ap_distance_m:
                    out.append(pt)
                if len(out) == count:
                    break
        return np.asarray(out)

    def extra_path_delay_s(self, client):
        """Via-relay geometric delay minus the direct-path delay."""
        sc = self.scenario
        d_direct = np.linalg.norm(np.asarray(client) - sc.ap)
        d_via = (np.linalg.norm(sc.relay - sc.ap)
                 + np.linalg.norm(np.asarray(client) - sc.relay))
        return max(d_via - d_direct, 0.0) / SPEED_OF_LIGHT

    def siso_triple(self, client, rng):
        """Per-subcarrier SISO (h_sd, h_sr, h_rd) for one client."""
        p = self.params
        used = p.used_subcarriers()
        rngs = child_rngs(rng, 3)
        chans = [
            self.propagation.siso_channel(self.scenario.ap, client,
                                          p.sample_period_s, num_taps=4,
                                          rng=rngs[0]),
            self.propagation.siso_channel(self.scenario.ap, self.scenario.relay,
                                          p.sample_period_s, num_taps=4,
                                          rng=rngs[1]),
            self.propagation.siso_channel(self.scenario.relay, client,
                                          p.sample_period_s, num_taps=4,
                                          rng=rngs[2]),
        ]
        return tuple(c.frequency_response(used, p.fft_size) for c in chans)

    def mimo_triple(self, client, rng, num_ap=2, num_relay=2, num_client=2):
        """Per-subcarrier MIMO (H_sd, H_sr, H_rd) for one client.

        Shapes: H_sd (n_sc, client, ap); H_sr (n_sc, relay, ap);
        H_rd (n_sc, client, relay).
        """
        p = self.params
        used = p.used_subcarriers()
        rngs = child_rngs(rng, 3)
        links = [
            self.propagation.mimo_link(self.scenario.ap, client,
                                       p.sample_period_s, num_rx=num_client,
                                       num_tx=num_ap, num_taps=4, rng=rngs[0]),
            self.propagation.mimo_link(self.scenario.ap, self.scenario.relay,
                                       p.sample_period_s, num_rx=num_relay,
                                       num_tx=num_ap, num_taps=4, rng=rngs[1]),
            self.propagation.mimo_link(self.scenario.relay, client,
                                       p.sample_period_s, num_rx=num_client,
                                       num_tx=num_relay, num_taps=4,
                                       rng=rngs[2]),
        ]
        return tuple(l.frequency_response(used, p.fft_size) for l in links)

    def hop_mimo_channels(self, client, rng, num_antennas=2):
        """(AP->relay, relay->client) MIMO channels for the HD baseline."""
        p = self.params
        used = p.used_subcarriers()
        rngs = child_rngs(rng, 2)
        first = self.propagation.mimo_link(
            self.scenario.ap, self.scenario.relay, p.sample_period_s,
            num_rx=num_antennas, num_tx=num_antennas, num_taps=4, rng=rngs[0])
        second = self.propagation.mimo_link(
            self.scenario.relay, client, p.sample_period_s,
            num_rx=num_antennas, num_tx=num_antennas, num_taps=4, rng=rngs[1])
        return (first.frequency_response(used, p.fft_size),
                second.frequency_response(used, p.fft_size))
