"""A multi-client network with one FastForward relay — §6 end to end.

The deployment story, at sample level: an AP serves several clients,
prepending each packet with that client's PN signature; the relay's
control plane (:class:`repro.ident.RelayController`) watches the
stream, names the destination before the preamble ends, and arms the
matching per-client constructive filter; foreign packets (a neighbour's
AP) go un-relayed.  Clients run the stock receiver on the superposition
of direct and relayed copies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.relay import FastForwardRelay, RelayConfig
from repro.ident.controller import RelayController
from repro.ident.pn_signature import SignatureBook
from repro.netsim.testbed import Testbed
from repro.phy.transceiver import Receiver, Transmitter, TxConfig
from repro.utils.rng import child_rngs, make_rng
from repro.utils.signal_ops import add_signals, awgn_like


@dataclass
class PacketOutcome:
    """What happened to one packet (either direction)."""

    client_id: object
    relayed: bool
    decoded: bool
    bit_exact: bool
    controller_reason: str


class NetworkSimulation:
    """One AP + one FF relay + several clients, packet by packet.

    Parameters
    ----------
    testbed:
        Scenario and channel factory.
    client_positions:
        Mapping of client id -> (x, y).
    mcs_index / tx_power_dbm / noise_floor_dbm:
        Link configuration shared by all packets.
    """

    def __init__(self, testbed: Testbed, client_positions, seed=0,
                 mcs_index=1, tx_power_dbm=20.0, noise_floor_dbm=-90.0):
        self.testbed = testbed
        self.params = testbed.params
        self.mcs_index = int(mcs_index)
        self.tx_power_dbm = float(tx_power_dbm)
        self.noise_floor_dbm = float(noise_floor_dbm)
        self.controller = RelayController(book=SignatureBook(seed=seed))
        self._channels = {}
        self._relays = {}
        self._delays = {}

        rng = make_rng(seed)
        used = self.params.used_subcarriers()
        n = self.params.fft_size
        for client_id, position in client_positions.items():
            draws = child_rngs(rng, 3)
            sc = testbed.scenario
            p = testbed.propagation
            chans = {
                "sd": p.siso_channel(sc.ap, position,
                                     self.params.sample_period_s,
                                     num_taps=3, rng=draws[0]),
                "sr": p.siso_channel(sc.ap, sc.relay,
                                     self.params.sample_period_s,
                                     num_taps=3, rng=draws[1]),
                "rd": p.siso_channel(sc.relay, position,
                                     self.params.sample_period_s,
                                     num_taps=3, rng=draws[2]),
            }
            self._channels[client_id] = chans
            self._delays[client_id] = testbed.extra_path_delay_s(position)
            # The sounding loop hands the relay its three channels.
            self.controller.observe_ap_packet(
                chans["sr"].frequency_response(used, n), now_s=0.0)
            self.controller.observe_sounding(
                client_id,
                chans["sd"].frequency_response(used, n),
                chans["rd"].frequency_response(used, n), now_s=0.0)
            relay = FastForwardRelay(RelayConfig(params=self.params))
            relay.configure_siso_link(
                chans["sd"].frequency_response(used, n),
                chans["sr"].frequency_response(used, n),
                chans["rd"].frequency_response(used, n))
            self._relays[client_id] = relay

    def clients(self):
        """Registered client ids."""
        return sorted(self._channels, key=str)

    def send_downlink(self, client_id, payload_bits, rng, now_s=0.01,
                      foreign=False):
        """One downlink packet; returns a :class:`PacketOutcome`.

        ``foreign=True`` transmits with a signature from a different
        network's book — the relay must leave it alone.
        """
        rng = make_rng(rng)
        payload_bits = np.asarray(payload_bits, dtype=int).ravel()
        chans = self._channels[client_id]
        amp = 10.0 ** (self.tx_power_dbm / 20.0)

        if foreign:
            signature = SignatureBook(seed=987654).prepend_field(client_id)
        else:
            signature = self.controller.book.prepend_field(client_id)
        tx = Transmitter(TxConfig(params=self.params,
                                  mcs_index=self.mcs_index,
                                  tx_power_dbm=self.tx_power_dbm))
        wave = tx.transmit(payload_bits, signature=signature) * amp

        # What the relay hears, and what it decides.
        at_relay = chans["sr"].apply_trimmed(wave[0])
        at_relay_noisy = at_relay + awgn_like(
            at_relay, 10.0 ** (self.noise_floor_dbm / 10.0), rng)
        decision = self.controller.decide_downlink(at_relay_noisy[:400],
                                                   now_s=now_s)

        parts = [chans["sd"].apply_trimmed(wave[0])]
        relayed = bool(decision.relay and decision.client_id == client_id
                       and not foreign)
        if relayed:
            relay = self._relays[decision.client_id]
            forwarded = relay.process(at_relay)
            lat = int(round(relay.latency_s() / self.params.sample_period_s))
            forwarded = np.concatenate(
                [np.zeros(lat, dtype=complex), forwarded])
            parts.append(chans["rd"].apply_trimmed(forwarded))

        combined = add_signals(*parts)
        combined = np.concatenate([np.zeros(60, dtype=complex), combined,
                                   np.zeros(40, dtype=complex)])
        noisy = combined + awgn_like(
            combined, 10.0 ** (self.noise_floor_dbm / 10.0), rng)
        result = Receiver(self.params, detection_threshold=0.7).receive(noisy)
        bit_exact = bool(result.success
                         and result.payload_bits.size == payload_bits.size
                         and np.array_equal(result.payload_bits,
                                            payload_bits))
        return PacketOutcome(client_id=client_id, relayed=relayed,
                             decoded=bool(result.success),
                             bit_exact=bit_exact,
                             controller_reason=decision.reason)

    def send_uplink(self, client_id, payload_bits, rng, now_s=0.01,
                    tx_power_dbm=None):
        """One uplink packet: client -> (relay) -> AP.

        The relay names the transmitter from the first STF period via
        its channel fingerprint and, by reciprocity, reuses the same
        constructive filter in the reverse direction (§4.2, §6).
        """
        rng = make_rng(rng)
        payload_bits = np.asarray(payload_bits, dtype=int).ravel()
        chans = self._channels[client_id]
        power = self.tx_power_dbm if tx_power_dbm is None else tx_power_dbm
        amp = 10.0 ** (power / 20.0)
        tx = Transmitter(TxConfig(params=self.params,
                                  mcs_index=self.mcs_index,
                                  tx_power_dbm=power))
        wave = tx.transmit(payload_bits)[0] * amp

        # Reciprocity: client->relay is the same channel as relay->client.
        at_relay = chans["rd"].apply_trimmed(wave)
        noise = 10.0 ** (self.noise_floor_dbm / 10.0)
        at_relay_noisy = at_relay + awgn_like(at_relay, noise, rng)
        # The relay fingerprints the first STF period (normalised: the
        # fingerprint matcher removes common gain/phase anyway).
        stf_period = at_relay_noisy[:self.params.fft_size // 4]
        decision = self.controller.decide_uplink(stf_period, now_s=now_s)

        parts = [chans["sd"].apply_trimmed(wave)]  # reciprocal direct
        relayed = bool(decision.relay and decision.client_id == client_id)
        if relayed:
            # The same filter serves the uplink; only the channels are
            # swapped (source=client), which the relay object encodes.
            used = self.params.used_subcarriers()
            n = self.params.fft_size
            relay = FastForwardRelay(RelayConfig(params=self.params))
            relay.configure_siso_link(
                chans["sd"].frequency_response(used, n),
                chans["rd"].frequency_response(used, n),
                chans["sr"].frequency_response(used, n))
            forwarded = relay.process(at_relay)
            lat = int(round(relay.latency_s() / self.params.sample_period_s))
            forwarded = np.concatenate([np.zeros(lat, dtype=complex),
                                        forwarded])
            parts.append(chans["sr"].apply_trimmed(forwarded))

        combined = add_signals(*parts)
        combined = np.concatenate([np.zeros(60, dtype=complex), combined,
                                   np.zeros(40, dtype=complex)])
        noisy = combined + awgn_like(combined, noise, rng)
        result = Receiver(self.params, detection_threshold=0.7).receive(noisy)
        bit_exact = bool(result.success
                         and result.payload_bits.size == payload_bits.size
                         and np.array_equal(result.payload_bits,
                                            payload_bits))
        return PacketOutcome(client_id=client_id, relayed=relayed,
                             decoded=bool(result.success),
                             bit_exact=bit_exact,
                             controller_reason=decision.reason)

    def run_round(self, payload_bits_per_client, rng, now_s=0.01):
        """One packet to every client; returns {client: PacketOutcome}."""
        rng = make_rng(rng)
        outcomes = {}
        for client_id in self.clients():
            bits = payload_bits_per_client[client_id]
            outcomes[client_id] = self.send_downlink(client_id, bits, rng,
                                                     now_s=now_s)
        return outcomes
