"""CDFs and gain statistics for the evaluation figures."""

from __future__ import annotations

import numpy as np


def empirical_cdf(values):
    """Sorted values and their empirical CDF ordinates in (0, 1]."""
    v = np.sort(np.asarray(values, dtype=float))
    if v.size == 0:
        raise ValueError("cannot build a CDF from no data")
    return v, np.arange(1, v.size + 1) / v.size


def relative_gains(scheme_rates, baseline_rates, drop_zero_baseline=True):
    """Per-location throughput ratios against a baseline scheme.

    The paper uses AP + half-duplex mesh as the baseline "because we
    have dead spots in [the AP-only] scenario where the throughput is
    zero and we cannot compute relative gain"; locations where the
    baseline is itself zero are dropped (or an error raised).
    """
    scheme = np.asarray(scheme_rates, dtype=float)
    base = np.asarray(baseline_rates, dtype=float)
    if scheme.shape != base.shape:
        raise ValueError(f"shape mismatch: {scheme.shape} vs {base.shape}")
    nz = base > 0
    if not nz.all():
        if not drop_zero_baseline:
            raise ValueError("baseline contains zero-rate locations")
        scheme, base = scheme[nz], base[nz]
    if scheme.size == 0:
        raise ValueError("no locations with a usable baseline")
    return scheme / base


def median_gain(scheme_rates, baseline_rates):
    """Median of the per-location gain ratios."""
    return float(np.median(relative_gains(scheme_rates, baseline_rates)))


def percentile_gain(scheme_rates, baseline_rates, percentile):
    """A percentile of the per-location gain ratios (e.g. 20 for tail)."""
    gains = relative_gains(scheme_rates, baseline_rates)
    return float(np.percentile(gains, percentile))
