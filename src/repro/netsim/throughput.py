"""PHY-layer throughput: the paper's evaluation metric.

"The metric we use is PHY layer throughput which is defined as the
optimal bitrate that can be used at any location given the SNR and the
MIMO rank" (§5) — no MAC, no rate adaptation.  For MIMO the AP picks
the better of two transmit modes, exactly the idealised-AP assumption:

* two-stream spatial multiplexing with per-stream MCS (MMSE receiver);
* single-stream eigen-beamforming with the full power budget.
"""

from __future__ import annotations

import numpy as np

from repro.phy.rates import effective_snr_db, mimo_phy_rate_mbps, phy_rate_mbps
from repro.utils.units import power_to_db


def siso_rate_mbps(per_subcarrier_snr_db):
    """Rate from per-subcarrier SNRs: EESM collapse, then the MCS table."""
    return phy_rate_mbps(effective_snr_db(per_subcarrier_snr_db))


def _eigen_beamforming_snrs(h_eff, noise_cov, tx_power):
    """Per-subcarrier best single-stream SNR (linear).

    The AP beamforms along the generalised dominant direction of
    ``H^H R^-1 H`` with the full power budget.
    """
    n_sc = h_eff.shape[0]
    out = np.empty(n_sc)
    for s in range(n_sc):
        r_inv = np.linalg.inv(noise_cov[s])
        gram = h_eff[s].conj().T @ r_inv @ h_eff[s]
        vals = np.linalg.eigvalsh(gram)
        out[s] = tx_power * max(float(vals[-1].real), 0.0)
    return out


def _multiplexing_stream_snrs(h_eff, noise_cov, tx_power):
    """Per-subcarrier per-stream MMSE SINRs (linear), equal power split."""
    from repro.phy.mimo import mimo_stream_sinrs

    n_sc, _, n_streams = h_eff.shape
    p_stream = tx_power / n_streams
    out = np.empty((n_sc, n_streams))
    for s in range(n_sc):
        vals, vecs = np.linalg.eigh(noise_cov[s])
        whiten = (vecs / np.sqrt(np.maximum(vals.real, 1e-30))) @ vecs.conj().T
        h_white = whiten @ h_eff[s] * np.sqrt(p_stream)
        out[s] = mimo_stream_sinrs(h_white, 1.0)
    return out


def mimo_rate_mbps(h_eff, noise_cov, tx_power_dbm=20.0):
    """Best-mode MIMO PHY rate for per-subcarrier effective channels.

    ``h_eff``: (n_sc, N, M); ``noise_cov``: (n_sc, N, N).  Returns the
    larger of the multiplexing and beamforming mode rates — "the optimal
    bitrate ... given the SNR and the MIMO rank".
    """
    h_eff = np.asarray(h_eff, dtype=complex)
    noise_cov = np.asarray(noise_cov, dtype=complex)
    tx_power = 10.0 ** (tx_power_dbm / 10.0)

    stream_snrs = _multiplexing_stream_snrs(h_eff, noise_cov, tx_power)
    per_stream_eff = [effective_snr_db(power_to_db(
        np.maximum(stream_snrs[:, k], 1e-12)))
        for k in range(stream_snrs.shape[1])]
    rate_mux = mimo_phy_rate_mbps(per_stream_eff)

    bf_snrs = _eigen_beamforming_snrs(h_eff, noise_cov, tx_power)
    rate_bf = phy_rate_mbps(effective_snr_db(power_to_db(
        np.maximum(bf_snrs, 1e-12))))
    return max(rate_mux, rate_bf)


def ap_only_siso_rate(h_sd, tx_power_dbm=20.0, noise_floor_dbm=-90.0):
    """Direct-link SISO rate."""
    p_tx = 10.0 ** (tx_power_dbm / 10.0)
    noise = 10.0 ** (noise_floor_dbm / 10.0)
    snrs = power_to_db(np.maximum(np.abs(h_sd) ** 2 * p_tx / noise, 1e-30))
    return siso_rate_mbps(snrs)


def ap_only_mimo_rate(h_sd, tx_power_dbm=20.0, noise_floor_dbm=-90.0):
    """Direct-link MIMO rate; ``h_sd`` is (n_sc, N, M)."""
    h_sd = np.asarray(h_sd, dtype=complex)
    noise = 10.0 ** (noise_floor_dbm / 10.0)
    n_rx = h_sd.shape[1]
    cov = np.broadcast_to(noise * np.eye(n_rx),
                          (h_sd.shape[0], n_rx, n_rx)).copy()
    return mimo_rate_mbps(h_sd, cov, tx_power_dbm=tx_power_dbm)


def ff_siso_rate(relay, extra_path_delay_s=0.0):
    """SISO rate with a configured FastForward (or repeater) relay."""
    return siso_rate_mbps(relay.destination_snr_db(extra_path_delay_s))


def ff_mimo_rate(relay, extra_path_delay_s=0.0):
    """MIMO rate with a configured FastForward (or repeater) relay."""
    h_eff, noise_cov = relay.mimo_effective_channels(extra_path_delay_s)
    return mimo_rate_mbps(h_eff, noise_cov,
                          tx_power_dbm=relay.config.tx_power_dbm)


def usable_streams(h_eff, noise_cov, tx_power_dbm=20.0, min_snr_db=2.0):
    """Number of spatial streams the channel can actually sustain.

    The operational "number of MIMO spatial streams possible" of Fig. 2:
    full multiplexing counts only if *every* stream's post-MMSE
    effective SNR clears the lowest MCS; otherwise the channel falls
    back to a single beamformed stream, which counts if its SNR does —
    rank deficiency and plain low SNR both remove streams.
    """
    h_eff = np.asarray(h_eff, dtype=complex)
    noise_cov = np.asarray(noise_cov, dtype=complex)
    tx_power = 10.0 ** (tx_power_dbm / 10.0)
    stream_snrs = _multiplexing_stream_snrs(h_eff, noise_cov, tx_power)
    all_streams_ok = all(
        effective_snr_db(power_to_db(np.maximum(stream_snrs[:, k], 1e-12)))
        >= min_snr_db
        for k in range(stream_snrs.shape[1]))
    if all_streams_ok:
        return stream_snrs.shape[1]
    bf = _eigen_beamforming_snrs(h_eff, noise_cov, tx_power)
    if effective_snr_db(power_to_db(np.maximum(bf, 1e-12))) >= min_snr_db:
        return 1
    return 0


def snr_field_db(h, tx_power_dbm=20.0, noise_floor_dbm=-90.0):
    """Effective SNR of a per-subcarrier SISO channel (heatmap helper)."""
    p_tx = 10.0 ** (tx_power_dbm / 10.0)
    noise = 10.0 ** (noise_floor_dbm / 10.0)
    snrs = power_to_db(np.maximum(np.abs(h) ** 2 * p_tx / noise, 1e-30))
    return effective_snr_db(snrs)
