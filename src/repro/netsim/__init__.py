"""Testbeds, throughput models and per-figure experiment runners.

This is the evaluation layer: it places APs, relays and clients in
floor plans (§5's indoor settings), computes each scheme's PHY-layer
throughput — "the optimal bitrate that can be used at any location
given the SNR and the MIMO rank" — and packages one runner per figure
of the paper's evaluation section.
"""

from repro.netsim.testbed import Testbed, Scenario, paper_scenarios
from repro.netsim.throughput import (
    siso_rate_mbps,
    mimo_rate_mbps,
    ap_only_siso_rate,
    ap_only_mimo_rate,
    ff_siso_rate,
    ff_mimo_rate,
    snr_field_db,
)
from repro.netsim.metrics import (
    empirical_cdf,
    relative_gains,
    median_gain,
    percentile_gain,
)
from repro.netsim.heatmap import coverage_heatmap, HeatmapResult
from repro.netsim.link import SampleLevelLink, LinkResult
from repro.netsim.ablations import (
    causality_ablation,
    decomposition_ablation,
    oversample_ablation,
    stale_channel_ablation,
)
from repro.netsim.experiments import (
    overall_gains_experiment,
    siso_gains_experiment,
    uplink_gains_experiment,
    scenario_class_experiment,
    latency_sweep_experiment,
    no_cnf_experiment,
    cancellation_sweep_experiment,
    fault_sweep_experiment,
    fingerprint_experiment,
    link_health_experiment,
)

__all__ = [
    "Testbed",
    "Scenario",
    "paper_scenarios",
    "siso_rate_mbps",
    "mimo_rate_mbps",
    "ap_only_siso_rate",
    "ap_only_mimo_rate",
    "ff_siso_rate",
    "ff_mimo_rate",
    "snr_field_db",
    "empirical_cdf",
    "relative_gains",
    "median_gain",
    "percentile_gain",
    "coverage_heatmap",
    "HeatmapResult",
    "SampleLevelLink",
    "LinkResult",
    "causality_ablation",
    "decomposition_ablation",
    "oversample_ablation",
    "stale_channel_ablation",
    "overall_gains_experiment",
    "siso_gains_experiment",
    "uplink_gains_experiment",
    "scenario_class_experiment",
    "latency_sweep_experiment",
    "no_cnf_experiment",
    "cancellation_sweep_experiment",
    "fault_sweep_experiment",
    "fingerprint_experiment",
    "link_health_experiment",
]
