"""Coverage heatmaps: the Fig. 1 (SNR) and Fig. 2 (MIMO streams) maps.

The grid sweep runs through :mod:`repro.exec` — one task per grid
point, seeded exactly as the historical serial loop — so it shards
across workers and caches per-point results like every other sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.relay import FastForwardRelay, RelayConfig
from repro.exec import Task, run_sweep, task_fn
from repro.netsim.testbed import Testbed
from repro.netsim.throughput import snr_field_db, usable_streams
from repro.telemetry.collector import current_collector
from repro.phy.rates import effective_snr_db
from repro.utils.rng import child_seeds


@dataclass
class HeatmapResult:
    """Gridded coverage fields for one scenario."""

    positions: np.ndarray          # (n_points, 2)
    snr_ap_only_db: np.ndarray     # (n_points,)
    snr_with_ff_db: np.ndarray     # (n_points,)
    streams_ap_only: np.ndarray    # (n_points,) ints
    streams_with_ff: np.ndarray    # (n_points,) ints

    def median_improvement_db(self):
        """Median SNR lift the relay provides across the grid."""
        return float(np.median(self.snr_with_ff_db - self.snr_ap_only_db))

    def fraction_full_rank(self, with_ff, num_streams=2):
        """Fraction of the grid supporting ``num_streams`` streams."""
        field = self.streams_with_ff if with_ff else self.streams_ap_only
        return float(np.mean(field >= num_streams))


@task_fn("netsim.coverage-point", version="1")
def _coverage_point(testbed, point, rng=None):
    """Both coverage fields (SNR and streams) at one grid point."""
    h_sd, h_sr, h_rd = testbed.siso_triple(point, rng)
    snr_ap = snr_field_db(h_sd)
    relay = FastForwardRelay(RelayConfig(params=testbed.params))
    relay.configure_siso_link(h_sd, h_sr, h_rd)
    delay = testbed.extra_path_delay_s(point)
    snr_ff = effective_snr_db(relay.destination_snr_db(delay))

    m_sd, m_sr, m_rd = testbed.mimo_triple(point, rng)
    noise = 10.0 ** (-90.0 / 10.0)
    n_rx = m_sd.shape[1]
    direct_cov = np.broadcast_to(noise * np.eye(n_rx),
                                 (m_sd.shape[0], n_rx, n_rx)).copy()
    streams_ap = usable_streams(m_sd, direct_cov)
    mrelay = FastForwardRelay(RelayConfig(params=testbed.params))
    mrelay.configure_mimo_link(m_sd, m_sr, m_rd)
    h_eff, noise_cov = mrelay.mimo_effective_channels(delay)
    streams_ff = usable_streams(h_eff, noise_cov)
    return {"snr_ap": float(snr_ap), "snr_ff": float(snr_ff),
            "streams_ap": int(streams_ap), "streams_ff": int(streams_ff)}


def coverage_heatmap(testbed: Testbed, spacing_m=1.0, seed=0, jobs=None,
                     cache=None, backend=None, checkpoint=None,
                     max_retries=None, task_timeout=None, chaos=None):
    """Sweep a grid of client positions; compute both coverage fields.

    For each point: the AP-only effective SNR and usable MIMO stream
    count, and the same with a FastForward relay configured for that
    client.
    """
    with current_collector().span("netsim.experiment",
                                  experiment="coverage"):
        return _coverage_heatmap(testbed, spacing_m=spacing_m, seed=seed,
                                 jobs=jobs, cache=cache, backend=backend,
                                 checkpoint=checkpoint,
                                 max_retries=max_retries,
                                 task_timeout=task_timeout, chaos=chaos)


def _coverage_heatmap(testbed, spacing_m, seed, jobs, cache, backend,
                      checkpoint, max_retries=None, task_timeout=None,
                      chaos=None):
    grid = testbed.scenario.floorplan.grid(spacing_m=spacing_m)
    seeds = child_seeds(seed, len(grid))
    tasks = [Task("netsim.coverage-point",
                  {"testbed": testbed, "point": point}, seed=point_seed)
             for point, point_seed in zip(grid, seeds)]
    rows = run_sweep(tasks, jobs=jobs, backend=backend, cache=cache,
                     checkpoint=checkpoint, max_retries=max_retries,
                     task_timeout=task_timeout, chaos=chaos).results

    return HeatmapResult(
        positions=grid,
        snr_ap_only_db=np.asarray([r["snr_ap"] for r in rows]),
        snr_with_ff_db=np.asarray([r["snr_ff"] for r in rows]),
        streams_ap_only=np.asarray([r["streams_ap"] for r in rows],
                                   dtype=int),
        streams_with_ff=np.asarray([r["streams_ff"] for r in rows],
                                   dtype=int),
    )
