"""End-to-end sample-level link simulation.

Everything the link-level throughput model abstracts, run for real: the
AP's transmitter produces an actual PPDU, the waveform traverses drawn
multipath channels, the relay's :meth:`process` forwards actual samples
(with its processing latency as a stream delay), and the client's stock
receiver does detection, CFO recovery, channel estimation and decoding
on the superposition.  Used by integration tests and the dead-spot
example; also a convenient harness for packet-error-rate curves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.multipath import MultipathChannel
from repro.core.relay import FastForwardRelay, RelayConfig
from repro.phy.params import OfdmParams, WIFI_20MHZ
from repro.phy.transceiver import Receiver, Transmitter, TxConfig
from repro.utils.rng import make_rng
from repro.utils.signal_ops import add_signals
from repro.utils.validation import ensure_positive


@dataclass
class LinkResult:
    """Outcome of one sample-level packet attempt."""

    success: bool
    bit_errors: int
    snr_estimate_db: float
    failure_reason: str


class SampleLevelLink:
    """One AP -> (relay) -> client link over explicit channels.

    Parameters
    ----------
    ch_sd / ch_sr / ch_rd:
        :class:`~repro.channel.multipath.MultipathChannel` objects for
        the three links.  The relay is optional at :meth:`run` time.
    params / mcs_index / tx_power_dbm:
        PHY configuration; transmit amplitude follows the sqrt-mW
        convention (20 dBm -> amplitude scale 10).
    noise_floor_dbm:
        Receiver noise at the client.
    """

    def __init__(self, ch_sd: MultipathChannel, ch_sr: MultipathChannel,
                 ch_rd: MultipathChannel, params: OfdmParams = WIFI_20MHZ,
                 mcs_index=0, tx_power_dbm=20.0, noise_floor_dbm=-90.0,
                 detection_threshold=0.7):
        self.ch_sd = ch_sd
        self.ch_sr = ch_sr
        self.ch_rd = ch_rd
        self.params = params
        self.mcs_index = int(mcs_index)
        self.tx_power_dbm = float(tx_power_dbm)
        self.noise_floor_dbm = float(noise_floor_dbm)
        self._tx = Transmitter(TxConfig(params=params, mcs_index=mcs_index,
                                        tx_power_dbm=tx_power_dbm))
        self._rx = Receiver(params, detection_threshold=detection_threshold)

    def build_relay(self, config: RelayConfig = None):
        """A FastForward relay configured for this link's channels."""
        used = self.params.used_subcarriers()
        n = self.params.fft_size
        relay = FastForwardRelay(config or RelayConfig(params=self.params))
        relay.configure_siso_link(self.ch_sd.frequency_response(used, n),
                                  self.ch_sr.frequency_response(used, n),
                                  self.ch_rd.frequency_response(used, n))
        return relay

    def run(self, payload_bits, rng, relay: FastForwardRelay = None,
            extra_relay_delay_s=0.0, prefix_samples=120):
        """Transmit one packet; return a :class:`LinkResult`.

        ``relay=None`` runs the direct link only.  ``extra_relay_delay_s``
        adds artificial buffering at the relay (the Fig. 16 knob) on top
        of its configured processing latency.
        """
        rng = make_rng(rng)
        payload_bits = np.asarray(payload_bits, dtype=int).ravel()
        amp = 10.0 ** (self.tx_power_dbm / 20.0)
        wave = self._tx.transmit(payload_bits)[0] * amp

        parts = [self.ch_sd.apply_trimmed(wave)]
        if relay is not None:
            at_relay = self.ch_sr.apply_trimmed(wave)
            relayed = relay.process(at_relay)
            delay_s = relay.latency_s() + max(extra_relay_delay_s, 0.0)
            lat = int(round(delay_s / self.params.sample_period_s))
            relayed = np.concatenate([np.zeros(lat, dtype=complex), relayed])
            parts.append(self.ch_rd.apply_trimmed(relayed))
        combined = add_signals(*parts)
        combined = np.concatenate([np.zeros(prefix_samples, dtype=complex),
                                   combined, np.zeros(40, dtype=complex)])
        noise_power = 10.0 ** (self.noise_floor_dbm / 10.0)
        noisy = combined + np.sqrt(noise_power / 2.0) * (
            rng.standard_normal(combined.shape)
            + 1j * rng.standard_normal(combined.shape))

        result = self._rx.receive(noisy)
        if result.success:
            errors = int(np.sum(result.payload_bits != payload_bits)) \
                if result.payload_bits.size == payload_bits.size \
                else payload_bits.size
            return LinkResult(success=errors == 0, bit_errors=errors,
                              snr_estimate_db=result.snr_estimate_db,
                              failure_reason="bit errors" if errors else "")
        return LinkResult(success=False, bit_errors=payload_bits.size,
                          snr_estimate_db=result.snr_estimate_db,
                          failure_reason=result.failure_reason)

    def packet_error_rate(self, num_packets, rng, relay=None,
                          payload_bits=200, **kwargs):
        """PER over ``num_packets`` fresh payloads (same channels)."""
        ensure_positive(num_packets, "num_packets")
        rng = make_rng(rng)
        failures = 0
        for _ in range(num_packets):
            bits = rng.integers(0, 2, payload_bits)
            result = self.run(bits, rng, relay=relay, **kwargs)
            failures += not result.success
        return failures / num_packets
