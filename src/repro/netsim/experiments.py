"""One runner per evaluation figure (§5, §6.1).

Every runner returns a plain dict of arrays/statistics so that the
benchmark layer can print the paper's rows and the test layer can
assert the qualitative shape (who wins, roughly by how much, where the
crossovers fall).

All Monte-Carlo sweeps run through :mod:`repro.exec`: each experiment
decomposes into pure per-client task functions (registered below with
``@task_fn``), fans them out over the configured backend, and
reassembles results in task order.  Per-task RNGs are fixed by seeds
derived exactly as the original serial loops derived them, so

* ``jobs=4`` output is bit-identical to ``jobs=1`` output, and
* every ported sweep reproduces the seed implementation's numbers.

Each runner accepts ``jobs=``, ``cache=``, ``backend=`` and
``checkpoint=`` keywords (``None`` defers to the ``REPRO_JOBS`` /
``REPRO_CACHE`` / ``REPRO_BACKEND`` environment defaults), plus the
fault-tolerance trio ``max_retries=`` / ``task_timeout=`` / ``chaos=``
passed straight through to :func:`repro.exec.run_sweep` (``None``
defers to ``REPRO_MAX_RETRIES`` / ``REPRO_TASK_TIMEOUT``; see
:mod:`repro.exec.recovery`).
"""

from __future__ import annotations

import functools
import os

import numpy as np

from repro.core.baselines import AmplifyForwardRelay, half_duplex_throughput_mbps
from repro.core.latency import LatencyBudget
from repro.core.relay import FastForwardRelay, RelayConfig
from repro.exec import Task, run_sweep, task_fn
from repro.netsim.metrics import median_gain, percentile_gain, relative_gains
from repro.netsim.testbed import Testbed, paper_scenarios
from repro.telemetry.collector import current_collector
from repro.netsim.throughput import (
    ap_only_mimo_rate,
    ap_only_siso_rate,
    ff_mimo_rate,
    ff_siso_rate,
    usable_streams,
)
from repro.phy.rates import effective_snr_db
from repro.utils.rng import child_rngs, child_seeds
from repro.utils.units import power_to_db


def _hd_mimo_rate(testbed, client, rng, direct_rate):
    """AP + half-duplex mesh router rate for one client."""
    h1, h2 = testbed.hop_mimo_channels(client, rng)
    r1 = ap_only_mimo_rate(h1)
    r2 = ap_only_mimo_rate(h2)
    return half_duplex_throughput_mbps(direct_rate, r1, r2)


# ---------------------------------------------------------------------------
# Shared sweep scaffolding
# ---------------------------------------------------------------------------

def _collect_clients(testbed, num_clients, seed):
    """Client positions plus one child seed per client.

    ``numpy.random.default_rng(seed_i)`` rebuilds exactly the generator
    the historical ``child_rngs`` path produced, so a task carrying the
    integer seed reproduces the serial loop's channel draws bit-for-bit.
    """
    positions = testbed.client_positions(num_clients, rng=seed)
    return positions, child_seeds(seed + 1, num_clients)


def _default_block_size():
    """The ``REPRO_BLOCK`` environment default for client blocking."""
    raw = os.environ.get("REPRO_BLOCK", "").strip()
    if not raw:
        return None
    value = int(raw)
    return value if value > 1 else None


def _client_tasks(fn_name, scenarios, num_clients, seed, stream, extra=None,
                  block_size=None):
    """One engine task per (scenario, client) — or per client *block*.

    The per-client scaffolding every sweep used to duplicate — scenario
    ``i`` gets testbed seed ``seed + i``, its clients come from
    ``_collect_clients(testbed, count, seed + stream + i)`` — hoisted
    into one helper so all experiments derive per-client seeds the same
    way (and keep the seed implementation's exact numbers).

    ``block_size`` > 1 packs that many consecutive clients into one
    ``netsim.client-block`` task (amortising per-task dispatch,
    serialisation and cache bookkeeping); per-client seeds travel inside
    the block, so flattened results are bit-identical to the per-client
    layout in the same order.  ``None`` defers to the ``REPRO_BLOCK``
    environment default (unset means one task per client, the layout
    every cache entry and manifest produced so far was keyed under).
    """
    if block_size is None:
        block_size = _default_block_size()
    units = []
    for s_idx, scenario in enumerate(scenarios):
        testbed = Testbed(scenario, seed=seed + s_idx)
        count = max(1, num_clients // len(scenarios))
        positions, seeds = _collect_clients(testbed, count,
                                            seed + stream + s_idx)
        for client, client_seed in zip(positions, seeds):
            params = {"scenario": scenario, "testbed_seed": seed + s_idx,
                      "client": client}
            if extra:
                params.update(extra)
            units.append((params, client_seed))
    if not block_size or block_size <= 1:
        return [Task(fn_name, params, seed=client_seed)
                for params, client_seed in units]
    return [
        Task("netsim.client-block",
             {"fn_name": fn_name,
              "blocks": tuple(units[i : i + block_size])})
        for i in range(0, len(units), int(block_size))
    ]


def _task_client_count(tasks):
    """Clients covered by a task list (blocks count their members)."""
    return sum(len(t.params["blocks"]) if t.fn == "netsim.client-block"
               else 1 for t in tasks)


def _block_rows(results):
    """Flatten sweep results back to one row per client.

    Per-client tasks return dict rows; ``netsim.client-block`` tasks
    return a list of them.  Blocks preserve client order, so the
    flattened sequence matches the unblocked layout exactly.
    """
    rows = []
    for result in results:
        if isinstance(result, list):
            rows.extend(result)
        else:
            rows.append(result)
    return rows


def _sub_checkpoint(checkpoint, label):
    """A per-phase manifest path for experiments that run >1 sweep."""
    return None if checkpoint is None else f"{checkpoint}.{label}"


def _ft_kwargs(max_retries, task_timeout, chaos):
    """The fault-tolerance trio every runner forwards to ``run_sweep``."""
    return {"max_retries": max_retries, "task_timeout": task_timeout,
            "chaos": chaos}


# ---------------------------------------------------------------------------
# Per-client task functions (pure, seeded; registered with the engine)
# ---------------------------------------------------------------------------

@task_fn("netsim.client-block", version="1")
def _client_block(fn_name, blocks):
    """Run a registered per-client task over a whole block of clients.

    ``blocks`` is a sequence of ``(params, seed)`` pairs; each client's
    RNG is materialised from its own seed exactly as the executor would
    for a standalone task, so the returned row list is bit-identical to
    running the clients as individual tasks.  Batching them in one task
    amortises engine dispatch, result pickling and cache bookkeeping
    over ``len(blocks)`` clients — the netsim half of the sweep fast
    path (the PHY half batches inside the signal processing itself).
    """
    from repro.exec.task import resolve_task_fn

    fn, _ = resolve_task_fn(fn_name)
    rows = []
    for params, client_seed in blocks:
        kwargs = dict(params)
        if client_seed is not None:
            kwargs["rng"] = np.random.default_rng(client_seed)
        rows.append(fn(**kwargs))
    return rows


@task_fn("netsim.overall-gains-client", version="1")
def _overall_gains_client(scenario, testbed_seed, client, relay_config=None,
                          rng=None):
    """Figs. 12/13/15 work unit: the three schemes' rates for one client."""
    testbed = Testbed(scenario, seed=testbed_seed)
    m_sd, m_sr, m_rd = testbed.mimo_triple(client, rng)
    delay = testbed.extra_path_delay_s(client)

    direct_rate = ap_only_mimo_rate(m_sd)
    hd_rate = _hd_mimo_rate(testbed, client, rng, direct_rate)

    cfg = relay_config or RelayConfig(params=testbed.params)
    relay = FastForwardRelay(cfg)
    relay.configure_mimo_link(m_sd, m_sr, m_rd)
    ff_rate = ff_mimo_rate(relay, delay)

    # Diagnostics for the Fig. 15 classes.
    noise = 10.0 ** (-90.0 / 10.0)
    n_rx = m_sd.shape[1]
    cov = np.broadcast_to(noise * np.eye(n_rx),
                          (m_sd.shape[0], n_rx, n_rx)).copy()
    streams = usable_streams(m_sd, cov)
    band_snr = effective_snr_db(power_to_db(np.maximum(
        np.einsum("sij,sij->s", m_sd, m_sd.conj()).real
        * 10.0 ** (20.0 / 10.0) / (n_rx * noise), 1e-30)))
    return {"ap": float(direct_rate), "hd": float(hd_rate),
            "ff": float(ff_rate), "snr": float(band_snr),
            "streams": int(streams)}


@task_fn("netsim.siso-gains-client", version="1")
def _siso_gains_client(scenario, testbed_seed, client, rng=None):
    """Fig. 14 work unit: SISO AP/HD/FF rates for one client."""
    testbed = Testbed(scenario, seed=testbed_seed)
    h_sd, h_sr, h_rd = testbed.siso_triple(client, rng)
    delay = testbed.extra_path_delay_s(client)

    direct_rate = ap_only_siso_rate(h_sd)
    r1 = ap_only_siso_rate(h_sr)
    # relay->client hop reuses the rd channel.
    r2 = ap_only_siso_rate(h_rd)
    hd_rate = half_duplex_throughput_mbps(direct_rate, r1, r2)

    relay = FastForwardRelay(RelayConfig(params=testbed.params))
    relay.configure_siso_link(h_sd, h_sr, h_rd)
    return {"ap": float(direct_rate), "hd": float(hd_rate),
            "ff": float(ff_siso_rate(relay, delay))}


@task_fn("netsim.uplink-gains-client", version="1")
def _uplink_gains_client(scenario, testbed_seed, client,
                         client_tx_power_dbm=15.0, rng=None):
    """Uplink work unit: reciprocal roles, client-power budget."""
    testbed = Testbed(scenario, seed=testbed_seed)
    h_sd, h_sr, h_rd = testbed.siso_triple(client, rng)
    delay = testbed.extra_path_delay_s(client)
    # Uplink roles: direct is reciprocal; source->relay is the
    # client->relay channel (= h_rd), relay->dest is relay->AP
    # (= h_sr by reciprocity).
    cfg = RelayConfig(params=testbed.params,
                      tx_power_dbm=client_tx_power_dbm)
    relay = FastForwardRelay(cfg)
    relay.configure_siso_link(h_sd, h_rd, h_sr)
    return {"ff": float(ff_siso_rate(relay, delay)),
            "ap": float(ap_only_siso_rate(
                h_sd, tx_power_dbm=client_tx_power_dbm))}


@task_fn("netsim.latency-client", version="1")
def _latency_client(scenario, testbed_seed, client, extra_buffering_s,
                    rng=None):
    """Fig. 16 work unit: FF vs HD at one buffering depth."""
    testbed = Testbed(scenario, seed=testbed_seed)
    budget = LatencyBudget(adc_dac_s=50e-9, cnf_digital_s=50e-9,
                           extra_buffering_s=0.0)
    budget = budget.with_extra_buffering(extra_buffering_s)
    m_sd, m_sr, m_rd = testbed.mimo_triple(client, rng)
    delay = testbed.extra_path_delay_s(client)
    direct_rate = ap_only_mimo_rate(m_sd)
    hd_rate = _hd_mimo_rate(testbed, client, rng, direct_rate)
    cfg = RelayConfig(params=testbed.params, latency=budget)
    relay = FastForwardRelay(cfg)
    relay.configure_mimo_link(m_sd, m_sr, m_rd)
    return {"ff": float(ff_mimo_rate(relay, delay)), "hd": float(hd_rate)}


@task_fn("netsim.no-cnf-client", version="1")
def _no_cnf_client(scenario, testbed_seed, client, rng=None):
    """Fig. 17 work unit: the blind amplify-and-forward repeater."""
    testbed = Testbed(scenario, seed=testbed_seed)
    m_sd, m_sr, m_rd = testbed.mimo_triple(client, rng)
    delay = testbed.extra_path_delay_s(client)
    relay = AmplifyForwardRelay(RelayConfig(params=testbed.params))
    relay.configure_mimo_link(m_sd, m_sr, m_rd)
    return {"af": float(ff_mimo_rate(relay, delay))}


@task_fn("netsim.link-health-client", version="1")
def _link_health_client(scenario, testbed_seed, client, n_symbols=24,
                        fault=None, rng=None):
    """Link-health work unit: probe-instrumented relay pass for one client.

    Runs a known reference frame through the client's sample-level
    relay with a :class:`repro.probes.ProbeSet` tapping the three named
    sites, and returns the quantised probe aggregates.  ``fault``
    optionally injects a receive-side impairment (``"residual-si"`` /
    ``"tap-drift"``) — the deliberate-perturbation arm the baseline
    drift gate proves itself against.
    """
    from repro.faults import FaultSchedule, ResidualSiStage, TapDriftStage
    from repro.probes import ALWAYS, ProbeSet, make_reference_frame

    testbed = Testbed(scenario, seed=testbed_seed)
    h_sd, h_sr, h_rd = testbed.siso_triple(client, rng)
    cfg = RelayConfig(params=testbed.params, use_decomposition=False)
    relay = FastForwardRelay(cfg)
    relay.configure_siso_link(h_sd, h_sr, h_rd)
    frame = make_reference_frame(testbed.params, n_symbols=n_symbols,
                                 rng=rng)
    # Short frames analyse every segment; the decimated default policy
    # is exercised (and overhead-gated) by the benchmark suite.
    probes = ProbeSet(testbed.params, reference=frame, policy=ALWAYS,
                      budget=cfg.latency)
    faults = None
    schedule = FaultSchedule(testbed_seed * 31 + 7)
    if fault == "residual-si":
        faults = [ResidualSiStage(schedule, jump_rate_per_sample=0.0,
                                  baseline_residual_db=-18.0)]
    elif fault == "tap-drift":
        # Fast enough to decorrelate within one EVM window at 20 Msps.
        faults = [TapDriftStage(schedule, testbed.params.bandwidth_hz,
                                amp_sigma_db_per_sqrt_s=50.0,
                                phase_sigma_rad_per_sqrt_s=50.0)]
    elif fault is not None:
        raise ValueError(f"unknown link-health fault {fault!r}")
    relay.process(frame.iq, faults=faults, probes=probes)
    return probes.summary()


@task_fn("netsim.cancellation-client", version="1")
def _cancellation_client(scenario, testbed_seed, client, cancellation_db,
                         rng=None):
    """Fig. 18 work unit: FF vs HD at one cancellation depth."""
    testbed = Testbed(scenario, seed=testbed_seed)
    m_sd, m_sr, m_rd = testbed.mimo_triple(client, rng)
    delay = testbed.extra_path_delay_s(client)
    direct_rate = ap_only_mimo_rate(m_sd)
    hd_rate = _hd_mimo_rate(testbed, client, rng, direct_rate)
    cfg = RelayConfig(params=testbed.params,
                      cancellation_db=float(cancellation_db))
    relay = FastForwardRelay(cfg)
    relay.configure_mimo_link(m_sd, m_sr, m_rd)
    return {"ff": float(ff_mimo_rate(relay, delay)), "hd": float(hd_rate)}


# ---------------------------------------------------------------------------
# Experiment runners
# ---------------------------------------------------------------------------

def _traced(name):
    """Wrap a runner in a ``netsim.experiment`` telemetry span.

    Zero-cost through the ambient null collector; with a live collector
    installed (``repro report``, or any ``use_collector`` block) each
    experiment run shows up as one top-level span enclosing its sweep.
    """
    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with current_collector().span("netsim.experiment",
                                          experiment=name):
                return fn(*args, **kwargs)
        return wrapper
    return decorate


@_traced("overall-gains")
def overall_gains_experiment(num_clients=60, seed=0, scenarios=None,
                             relay_config=None, jobs=None, cache=None,
                             backend=None, checkpoint=None,
                             block_size=None, max_retries=None,
                             task_timeout=None, chaos=None):
    """Figs. 12/13/15 data: per-client rates for the three schemes (2x2).

    Returns arrays ``ap_only``, ``half_duplex``, ``fastforward`` (Mbps)
    plus per-client diagnostics (direct effective SNR, usable direct
    streams) for the Fig. 15 classification.
    """
    scenarios = scenarios if scenarios is not None else paper_scenarios()
    extra = {"relay_config": relay_config} if relay_config is not None else None
    tasks = _client_tasks("netsim.overall-gains-client", scenarios,
                          num_clients, seed, stream=100, extra=extra,
                          block_size=block_size)
    rows = _block_rows(run_sweep(
        tasks, jobs=jobs, backend=backend, cache=cache,
        checkpoint=checkpoint,
        **_ft_kwargs(max_retries, task_timeout, chaos)).results)

    out = {
        "ap_only": np.asarray([r["ap"] for r in rows]),
        "half_duplex": np.asarray([r["hd"] for r in rows]),
        "fastforward": np.asarray([r["ff"] for r in rows]),
        "direct_snr_db": np.asarray([r["snr"] for r in rows]),
        "direct_streams": np.asarray([r["streams"] for r in rows],
                                     dtype=int),
    }
    out["ff_gain_vs_hd"] = relative_gains(out["fastforward"], out["half_duplex"])
    out["ap_gain_vs_hd"] = relative_gains(out["ap_only"], out["half_duplex"])
    out["median_ff_vs_ap"] = median_gain(out["fastforward"],
                                         np.maximum(out["ap_only"], 1e-3))
    out["median_ff_vs_hd"] = median_gain(out["fastforward"], out["half_duplex"])
    return out


@_traced("siso-gains")
def siso_gains_experiment(num_clients=60, seed=0, scenarios=None, jobs=None,
                          cache=None, backend=None, checkpoint=None,
                          block_size=None, max_retries=None,
                          task_timeout=None, chaos=None):
    """Fig. 14 data: SISO AP/relay/client — pure SNR-gain territory."""
    scenarios = scenarios if scenarios is not None else paper_scenarios()
    tasks = _client_tasks("netsim.siso-gains-client", scenarios,
                          num_clients, seed, stream=200,
                          block_size=block_size)
    rows = _block_rows(run_sweep(
        tasks, jobs=jobs, backend=backend, cache=cache,
        checkpoint=checkpoint,
        **_ft_kwargs(max_retries, task_timeout, chaos)).results)

    out = {
        "ap_only": np.asarray([r["ap"] for r in rows]),
        "half_duplex": np.asarray([r["hd"] for r in rows]),
        "fastforward": np.asarray([r["ff"] for r in rows]),
    }
    out["ff_gain_vs_hd"] = relative_gains(out["fastforward"], out["half_duplex"])
    out["median_ff_vs_hd"] = median_gain(out["fastforward"], out["half_duplex"])
    out["tail_ff_vs_hd"] = percentile_gain(out["fastforward"],
                                           out["half_duplex"], 90)
    return out


@_traced("uplink-gains")
def uplink_gains_experiment(num_clients=40, seed=0, client_tx_power_dbm=15.0,
                            jobs=None, cache=None, backend=None,
                            checkpoint=None, block_size=None,
                            max_retries=None, task_timeout=None,
                            chaos=None):
    """Uplink (client -> AP) gains — "the relay can be used to improve
    the link from the client to the AP as well" (§1, footnote 1).

    SISO, with the roles swapped by reciprocity: the source is the
    client (typically at lower transmit power than the AP), the first
    hop is the client->relay channel, and the relay's amplification is
    re-derived for the relay->AP path (the paper's footnote: "the
    amplification applied is different in both directions").
    """
    tasks = _client_tasks(
        "netsim.uplink-gains-client", paper_scenarios(), num_clients, seed,
        stream=700, extra={"client_tx_power_dbm": client_tx_power_dbm},
        block_size=block_size)
    rows = _block_rows(run_sweep(
        tasks, jobs=jobs, backend=backend, cache=cache,
        checkpoint=checkpoint,
        **_ft_kwargs(max_retries, task_timeout, chaos)).results)
    out = {
        "ap_only": np.asarray([r["ap"] for r in rows]),
        "fastforward": np.asarray([r["ff"] for r in rows]),
    }
    nz = out["ap_only"] > 0
    out["median_ff_vs_ap"] = float(np.median(
        out["fastforward"][nz] / out["ap_only"][nz])) if nz.any() else np.inf
    out["dead_fixed"] = float(np.mean(
        (out["ap_only"] == 0) & (out["fastforward"] > 0)))
    return out


@_traced("scenario-classes")
def scenario_class_experiment(num_clients=90, seed=0, jobs=None, cache=None,
                              backend=None, checkpoint=None,
                              max_retries=None, task_timeout=None,
                              chaos=None):
    """Fig. 15: gains partitioned by (SNR, rank) client class.

    Classes: a) low SNR + low rank (edge); b) medium/high SNR + low
    rank (pinhole); c) high SNR + full rank (near AP).
    """
    data = overall_gains_experiment(num_clients=num_clients, seed=seed,
                                    jobs=jobs, cache=cache, backend=backend,
                                    checkpoint=checkpoint,
                                    max_retries=max_retries,
                                    task_timeout=task_timeout, chaos=chaos)
    snr = data["direct_snr_db"]
    streams = data["direct_streams"]
    gains = {}
    masks = {
        "low_snr_low_rank": (snr < 10.0) & (streams <= 1),
        "medium_snr_low_rank": (snr >= 10.0) & (streams <= 1),
        "high_snr_high_rank": (snr >= 18.0) & (streams >= 2),
    }
    for name, mask in masks.items():
        if mask.sum() == 0:
            gains[name] = np.array([])
            continue
        gains[name] = relative_gains(
            data["fastforward"][mask], data["half_duplex"][mask],
            drop_zero_baseline=True)
    gains["counts"] = {name: int(mask.sum()) for name, mask in masks.items()}
    gains["raw"] = data
    return gains


@_traced("latency-sweep")
def latency_sweep_experiment(latencies_ns=(0, 100, 200, 300, 400, 500),
                             num_clients=40, seed=0, jobs=None, cache=None,
                             backend=None, checkpoint=None,
                             block_size=None, max_retries=None,
                             task_timeout=None, chaos=None):
    """Fig. 16: median throughput gain vs relay processing latency.

    Extra buffering is added to the relay's budget; past the CP the
    relayed copy turns into inter-symbol interference and the gain
    collapses below 1 (worse than no relay).

    All (latency, client) pairs form one task list, so the whole sweep
    shards across workers at once.
    """
    scenarios = paper_scenarios()
    results = {"latency_ns": np.asarray(latencies_ns, dtype=float)}
    base = LatencyBudget(adc_dac_s=50e-9, cnf_digital_s=50e-9,
                         extra_buffering_s=0.0).total_s()
    tasks, spans, clients_so_far = [], [], 0
    for extra_ns in latencies_ns:
        # The sweep interprets the x-axis as *total* processing latency,
        # matching the paper ("vary the processing delay at the FF relay
        # from 100ns to 400ns"): the base budget is ~100 ns.
        extra = max(extra_ns * 1e-9 - base, 0.0)
        lat_tasks = _client_tasks(
            "netsim.latency-client", scenarios, num_clients, seed,
            stream=300, extra={"extra_buffering_s": extra},
            block_size=block_size)
        covered = _task_client_count(lat_tasks)
        spans.append((clients_so_far, clients_so_far + covered))
        clients_so_far += covered
        tasks.extend(lat_tasks)
    rows = _block_rows(run_sweep(
        tasks, jobs=jobs, backend=backend, cache=cache,
        checkpoint=checkpoint,
        **_ft_kwargs(max_retries, task_timeout, chaos)).results)

    medians = []
    for lo, hi in spans:
        ff = np.asarray([r["ff"] for r in rows[lo:hi]])
        hd = np.asarray([r["hd"] for r in rows[lo:hi]])
        medians.append(median_gain(ff, hd))
    results["median_gain"] = np.asarray(medians)
    return results


@_traced("no-cnf")
def no_cnf_experiment(num_clients=60, seed=0, jobs=None, cache=None,
                      backend=None, checkpoint=None, max_retries=None,
                      task_timeout=None, chaos=None):
    """Fig. 17: the blind amplify-and-forward repeater vs FastForward."""
    data = overall_gains_experiment(
        num_clients=num_clients, seed=seed, jobs=jobs, cache=cache,
        backend=backend, checkpoint=_sub_checkpoint(checkpoint, "overall"),
        max_retries=max_retries, task_timeout=task_timeout, chaos=chaos)
    # Stream 100 on purpose: the repeater sees the same clients and
    # channel draws as the FastForward arm above.
    tasks = _client_tasks("netsim.no-cnf-client", paper_scenarios(),
                          num_clients, seed, stream=100)
    rows = run_sweep(tasks, jobs=jobs, backend=backend, cache=cache,
                     checkpoint=_sub_checkpoint(checkpoint, "af"),
                     **_ft_kwargs(max_retries, task_timeout, chaos)).results
    data["amplify_forward"] = np.asarray([r["af"] for r in rows])
    data["af_gain_vs_hd"] = relative_gains(data["amplify_forward"],
                                           data["half_duplex"])
    data["median_af_vs_hd"] = median_gain(data["amplify_forward"],
                                          data["half_duplex"])
    return data


@_traced("cancellation-sweep")
def cancellation_sweep_experiment(cancellations_db=(100, 102, 104, 106, 108, 110),
                                  num_clients=40, seed=0, jobs=None,
                                  cache=None, backend=None, checkpoint=None,
                                  block_size=None, max_retries=None,
                                  task_timeout=None, chaos=None):
    """Fig. 18: median gain vs the cancellation the relay achieves.

    Cancellation caps amplification (minus the loop margin); dead-spot
    clients lose the most when the cap drops.
    """
    scenarios = paper_scenarios()
    tasks, spans, clients_so_far = [], [], 0
    for canc in cancellations_db:
        c_tasks = _client_tasks(
            "netsim.cancellation-client", scenarios, num_clients, seed,
            stream=400, extra={"cancellation_db": float(canc)},
            block_size=block_size)
        covered = _task_client_count(c_tasks)
        spans.append((clients_so_far, clients_so_far + covered))
        clients_so_far += covered
        tasks.extend(c_tasks)
    rows = _block_rows(run_sweep(
        tasks, jobs=jobs, backend=backend, cache=cache,
        checkpoint=checkpoint,
        **_ft_kwargs(max_retries, task_timeout, chaos)).results)

    medians, tails = [], []
    for lo, hi in spans:
        ff = np.asarray([r["ff"] for r in rows[lo:hi]])
        hd = np.asarray([r["hd"] for r in rows[lo:hi]])
        medians.append(median_gain(ff, hd))
        tails.append(percentile_gain(ff, hd, 80))
    return {
        "cancellation_db": np.asarray(cancellations_db, dtype=float),
        "median_gain": np.asarray(medians),
        "p80_gain": np.asarray(tails),
    }


@_traced("link-health")
def link_health_experiment(num_clients=4, seed=2014, n_symbols=24,
                           fault=None, scenarios=None, jobs=None,
                           cache=None, backend=None, checkpoint=None,
                           block_size=None, max_retries=None,
                           task_timeout=None, chaos=None):
    """Probe-instrumented relay passes: the link-health sweep.

    Each client runs a known reference frame through its sample-level
    relay with IQ taps at the three named sites.  Returns the per-client
    probe aggregate rows plus their mean under ``"probes"`` — the flat
    metric dict :mod:`repro.probes.baseline` freezes and drift-checks,
    and the payload behind ``repro report link-health --html``.

    Aggregates are means of dyadic-quantised per-client values, so the
    result is bit-identical across serial/thread/process backends and
    every chunk layout (the contract the determinism suite asserts).
    """
    scenarios = scenarios if scenarios is not None \
        else paper_scenarios()[:1]
    extra = {"n_symbols": int(n_symbols)}
    if fault is not None:
        extra["fault"] = fault
    tasks = _client_tasks("netsim.link-health-client", scenarios,
                          num_clients, seed, stream=800, extra=extra,
                          block_size=block_size)
    rows = _block_rows(run_sweep(
        tasks, jobs=jobs, backend=backend, cache=cache,
        checkpoint=checkpoint,
        **_ft_kwargs(max_retries, task_timeout, chaos)).results)

    keys = sorted({k for row in rows for k in row})
    aggregate = {}
    for key in keys:
        values = [row[key] for row in rows if key in row]
        if values:
            aggregate[key] = float(np.mean(values))
    return {
        "probes": aggregate,
        "per_client": rows,
        "num_clients": len(rows),
        "fault": fault,
    }


@_traced("fingerprint")
def fingerprint_experiment(num_locations=100, num_clients=4,
                           packets_per_client=50, seed=0,
                           threshold=None, snr_db=18.0, drift=0.18):
    """Fig. 21: uplink sender-identification error rates.

    ``num_clients`` clients at ``num_locations`` placements; for each
    packet the relay measures a noisy STF through the client's channel
    — which has *drifted* since enrollment (the paper measures over a
    five-minute window precisely to capture channel fluctuation) — and
    must name the sender.  Returns per-location false-positive and
    false-negative rates.
    """
    from repro.ident.fingerprint import (
        AGGRESSIVE_THRESHOLD,
        ChannelFingerprinter,
    )
    from repro.phy.params import WIFI_20MHZ

    if threshold is None:
        threshold = AGGRESSIVE_THRESHOLD
    params = WIFI_20MHZ
    scenario = paper_scenarios()[0]
    testbed = Testbed(scenario, seed=seed)
    used = params.used_subcarriers()

    fp_rates, fn_rates = [], []
    rngs = child_rngs(seed + 500, num_locations)
    for rng in rngs:
        clients = testbed.client_positions(num_clients, rng=rng,
                                           min_ap_distance_m=1.0)
        finger = ChannelFingerprinter(params, threshold=threshold)
        channels = []
        for c_idx, client in enumerate(clients):
            h = testbed.propagation.siso_channel(
                client, testbed.scenario.relay, params.sample_period_s,
                num_taps=4, rng=rng).frequency_response(used, params.fft_size)
            # Normalise so identification tests geometry, not raw power.
            h = h / max(np.sqrt(np.mean(np.abs(h) ** 2)), 1e-12)
            channels.append(h)
            finger.enroll(c_idx, h, used)

        false_pos = 0
        false_neg = 0
        total = 0
        for c_idx, h in enumerate(channels):
            expected = finger.expected_measurement(c_idx)
            rms = np.sqrt(np.mean(np.abs(expected) ** 2))
            noise_std = rms * 10.0 ** (-snr_db / 20.0)
            for _ in range(packets_per_client):
                # Per-tone channel drift over the measurement window plus
                # receiver noise; global phase is arbitrary per packet.
                wobble = 1.0 + drift / np.sqrt(2.0) * (
                    rng.standard_normal(expected.shape)
                    + 1j * rng.standard_normal(expected.shape))
                measured = expected * wobble \
                    * np.exp(1j * rng.uniform(0, 2 * np.pi))
                measured = measured + noise_std / np.sqrt(2.0) * (
                    rng.standard_normal(expected.shape)
                    + 1j * rng.standard_normal(expected.shape))
                decision = _identify_from_measurement(finger, measured)
                total += 1
                if decision is None:
                    false_neg += 1
                elif decision != c_idx:
                    false_pos += 1
        fp_rates.append(false_pos / total)
        fn_rates.append(false_neg / total)
    return {
        "false_positive": np.asarray(fp_rates),
        "false_negative": np.asarray(fn_rates),
        "threshold": threshold,
    }


def _degraded_siso_rate(relay, cfg, cancellation_db, gain_backoff_db,
                        clip_fraction, delay_s, channels):
    """Rate of the (possibly degraded) relay on the *true* channels.

    Temporarily overrides the achieved cancellation and the operating
    amplification (tuning happened earlier, on possibly stale reports),
    evaluates :meth:`destination_snr_db` against the current air, and
    caps the per-tone SNR at ``1/clip_fraction`` — clipping distortion
    is signal-correlated, so it floors the SINR no matter how strong
    the link is.
    """
    from repro.netsim.throughput import siso_rate_mbps

    amp0, canc0 = relay.amplification_db, cfg.cancellation_db
    try:
        cfg.cancellation_db = float(cancellation_db)
        relay.amplification_db = amp0 - float(gain_backoff_db)
        snr_db = relay.destination_snr_db(delay_s, channels=channels)
    finally:
        relay.amplification_db, cfg.cancellation_db = amp0, canc0
    snr = 10.0 ** (snr_db / 10.0)
    if clip_fraction > 0.0:
        snr = 1.0 / (1.0 / np.maximum(snr, 1e-12) + clip_fraction)
    return siso_rate_mbps(10.0 * np.log10(np.maximum(snr, 1e-30)))


@task_fn("netsim.fault-client-probe", version="1")
def _fault_client_probe(scenario, testbed_seed, client, rng=None):
    """Fault-sweep phase 1: channels and baseline rates for one client."""
    testbed = Testbed(scenario, seed=testbed_seed)
    h_sd, h_sr, h_rd = testbed.siso_triple(client, rng)
    delay = testbed.extra_path_delay_s(client)
    direct = ap_only_siso_rate(h_sd)
    hd = half_duplex_throughput_mbps(direct, ap_only_siso_rate(h_sr),
                                     ap_only_siso_rate(h_rd))
    cfg = RelayConfig(params=testbed.params, use_decomposition=False)
    relay = FastForwardRelay(cfg)
    relay.configure_siso_link(h_sd, h_sr, h_rd)
    ff = ff_siso_rate(relay, delay)
    return {"h_sd": h_sd, "h_sr": h_sr, "h_rd": h_rd,
            "delay": float(delay), "direct": float(direct),
            "hd": float(hd), "ff": float(ff)}


@task_fn("netsim.fault-client-run", version="1")
def _fault_client_run(ofdm_params, h_sd, h_sr, h_rd, delay, hd_rate,
                      fault_rates, num_steps, schedule_seed, si_jump_db,
                      clip_burst_steps, clip_fraction, retune_success_prob):
    """Fault-sweep phase 2: time-step one client over every fault rate.

    Both arms see the *identical* fault trace (one seeded uniform draw
    per step, thresholded by the rate, so higher rates are supersets).
    Returns per-rate mean throughput for both arms, per-rate supervisor
    event counts and the last rate's event log.
    """
    from repro.faults import FaultSchedule
    from repro.ident.sounding import DEFAULT_SOUNDING_INTERVAL_S
    from repro.supervision import (
        RelayHealthMonitor,
        RelaySupervisor,
        SupervisorPolicy,
    )

    step_s = DEFAULT_SOUNDING_INTERVAL_S
    fault_rates = np.asarray(fault_rates, dtype=float)
    n_sc = h_sd.size

    schedule = FaultSchedule(schedule_seed)
    # One uniform draw per step per process, independent of the
    # rate: event at step t iff u[t] < p(rate), so a higher rate's
    # fault trace is a superset of a lower rate's.
    u_jump = schedule.stream("si-jump").random(num_steps)
    u_clip = schedule.stream("clip").random(num_steps)
    u_loss = schedule.stream("poll-loss").random(num_steps)
    u_retune = schedule.stream("retune").random(4 * num_steps)
    # The air drifts regardless of faults: a per-tone phase walk on
    # the relay hops (the direct path stays put so the baselines
    # are constant).
    drift_rng = schedule.stream("drift")
    phase_sr = np.cumsum(0.15 * drift_rng.standard_normal(
        (num_steps, n_sc)), axis=0)
    phase_rd = np.cumsum(0.15 * drift_rng.standard_normal(
        (num_steps, n_sc)), axis=0)

    supervised = np.zeros(fault_rates.size)
    unsupervised = np.zeros(fault_rates.size)
    event_counts = [dict() for _ in fault_rates]
    sample_events = []

    for r_idx, rate in enumerate(fault_rates):
        p_jump = p_clip = 0.25 * rate
        p_loss = min(2.0 * rate, 0.95)

        cfg = RelayConfig(params=ofdm_params, use_decomposition=False)
        relay = FastForwardRelay(cfg)
        relay.configure_siso_link(h_sd, h_sr, h_rd)
        nominal_canc = cfg.cancellation_db

        sup_state = {"canc": nominal_canc}
        retune_calls = [0]

        def attempt_retune(now_s):
            ok = bool(u_retune[retune_calls[0] % u_retune.size]
                      < retune_success_prob)
            retune_calls[0] += 1
            if ok:
                sup_state["canc"] = nominal_canc
            return ok

        policy = SupervisorPolicy(
            retune_backoff_s=0.6 * step_s,
            retune_backoff_max_s=4.0 * step_s,
            retune_retry_budget=2,
            gain_step_db=6.0, max_gain_backoff_db=6.0,
            escalation_hold_s=0.5 * step_s,
            recovery_hold_s=1.2 * step_s,
            fallback_sounding_age_s=0.5)
        sup = RelaySupervisor(
            monitor=RelayHealthMonitor(alpha=1.0),
            policy=policy, retune=attempt_retune)

        unsup_canc = nominal_canc
        clip_left = 0
        age_steps = 0
        sup_sum = unsup_sum = 0.0
        for t in range(num_steps):
            now = (t + 1) * step_s
            true_triple = (h_sd, h_sr * np.exp(1j * phase_sr[t]),
                           h_rd * np.exp(1j * phase_rd[t]))
            # Fault processes for this step.
            if u_jump[t] < p_jump:
                sup_state["canc"] = nominal_canc - si_jump_db
                unsup_canc = nominal_canc - si_jump_db
            if u_clip[t] < p_clip and clip_left == 0:
                clip_left = clip_burst_steps
            clip_now = clip_fraction if clip_left > 0 else 0.0
            clip_left = max(clip_left - 1, 0)
            if u_loss[t] < p_loss:
                age_steps += 1
            else:
                age_steps = 0
                # A delivered poll re-tunes the constructive filter
                # onto the current air (both arms benefit equally).
                relay.configure_siso_link(*true_triple)

            residual_sup = -50.0 + (nominal_canc - sup_state["canc"])
            residual_unsup = -50.0 + (nominal_canc - unsup_canc)

            # Supervised arm: observe, walk the ladder, then serve.
            sup.monitor.observe(residual_si_db=residual_sup,
                                clip_fraction=clip_now,
                                sounding_age_s=age_steps * step_s)
            sup.step(now)
            if not sup.relaying:
                sup_sum += hd_rate
            else:
                # Gain backoff unloads the converters too.
                eff_clip = clip_now * 10.0 ** (-sup.gain_backoff_db / 10.0)
                sup_sum += _degraded_siso_rate(
                    relay, cfg, sup_state["canc"], sup.gain_backoff_db,
                    eff_clip, delay, true_triple)

            # Unsupervised arm: same trace, no remedy, ever.
            unsup_sum += _degraded_siso_rate(
                relay, cfg, unsup_canc, 0.0, clip_now, delay,
                true_triple)

        supervised[r_idx] = sup_sum / num_steps
        unsupervised[r_idx] = unsup_sum / num_steps
        for event in sup.events:
            key = event.kind.value
            event_counts[r_idx][key] = event_counts[r_idx].get(key, 0) + 1
        if r_idx == fault_rates.size - 1:
            sample_events = [str(event) for event in sup.events]

    return {"supervised": supervised, "unsupervised": unsupervised,
            "event_counts": event_counts, "sample_events": sample_events}


@_traced("fault-sweep")
def fault_sweep_experiment(fault_rates=(0.0, 0.1, 0.2, 0.4), num_clients=5,
                           num_steps=60, seed=0, scenario=None,
                           si_jump_db=35.0, clip_burst_steps=6,
                           clip_fraction=0.25, retune_success_prob=0.8,
                           jobs=None, cache=None, backend=None,
                           checkpoint=None, max_retries=None,
                           task_timeout=None, chaos=None):
    """Throughput vs fault rate, with and without the supervisor.

    The fault-injection counterpart of the gains experiments: SISO
    clients whose relay path is worth having (§6's selectivity rule),
    time-stepped at the sounding interval, with three fault processes
    scaled by ``fault_rate`` — SI-channel jumps that void the tuned
    cancellation by ``si_jump_db``, ADC clipping bursts of
    ``clip_burst_steps`` steps, and lost sounding polls that age the
    relay's channel state while the air keeps drifting.

    Both arms see the *identical* fault trace (one seeded uniform draw
    per step, thresholded by the rate, so higher rates are supersets):
    the supervised relay detects via its health monitor and walks the
    degradation ladder (re-tune -> gain backoff -> half-duplex ->
    recover), the unsupervised relay blindly keeps relaying.  Returns
    per-rate mean throughputs for both arms plus the half-duplex and
    AP-only baselines, per-rate supervisor event counts, and a sample
    event log — everything reproducible from ``seed``.

    Runs as two engine phases: a per-client channel/baseline probe,
    then — after the §6 selectivity cut — one time-stepped simulation
    task per selected client covering every fault rate.
    """
    scenario = scenario if scenario is not None else paper_scenarios()[1]
    testbed = Testbed(scenario, seed=seed)
    fault_rates = np.asarray(fault_rates, dtype=float)

    # -- phase 1: only clients the relay constructively serves (§6) --------
    positions, seeds = _collect_clients(testbed, num_clients, seed + 600)
    probe_tasks = [
        Task("netsim.fault-client-probe",
             {"scenario": scenario, "testbed_seed": seed, "client": client},
             seed=client_seed)
        for client, client_seed in zip(positions, seeds)
    ]
    clients = run_sweep(probe_tasks, jobs=jobs, backend=backend, cache=cache,
                        checkpoint=_sub_checkpoint(checkpoint, "probe"),
                        **_ft_kwargs(max_retries, task_timeout,
                                     chaos)).results
    selected = [c for c in clients if c["ff"] >= 1.3 * max(c["hd"], 1e-9)]
    if not selected:
        selected = [max(clients,
                        key=lambda c: c["ff"] / max(c["hd"], 1e-9))]

    # -- phase 2: the time-stepped two-arm simulation per client -----------
    run_tasks = [
        Task("netsim.fault-client-run",
             {"ofdm_params": testbed.params, "h_sd": c["h_sd"],
              "h_sr": c["h_sr"], "h_rd": c["h_rd"], "delay": c["delay"],
              "hd_rate": c["hd"], "fault_rates": tuple(float(r)
                                                       for r in fault_rates),
              "num_steps": int(num_steps),
              "schedule_seed": seed * 7919 + 13 + c_idx,
              "si_jump_db": float(si_jump_db),
              "clip_burst_steps": int(clip_burst_steps),
              "clip_fraction": float(clip_fraction),
              "retune_success_prob": float(retune_success_prob)})
        for c_idx, c in enumerate(selected)
    ]
    runs = run_sweep(run_tasks, jobs=jobs, backend=backend, cache=cache,
                     checkpoint=_sub_checkpoint(checkpoint, "run"),
                     **_ft_kwargs(max_retries, task_timeout, chaos)).results

    supervised = np.zeros(fault_rates.size)
    unsupervised = np.zeros(fault_rates.size)
    event_counts = [dict() for _ in fault_rates]
    for run in runs:
        supervised += np.asarray(run["supervised"])
        unsupervised += np.asarray(run["unsupervised"])
        for r_idx, counts in enumerate(run["event_counts"]):
            for key, n in counts.items():
                event_counts[r_idx][key] = event_counts[r_idx].get(key, 0) + n
    sample_events = list(runs[0]["sample_events"]) if runs else []

    n_sel = len(selected)
    return {
        "fault_rate": fault_rates,
        "supervised": supervised / n_sel,
        "unsupervised": unsupervised / n_sel,
        "half_duplex": np.full(fault_rates.size,
                               float(np.mean([c["hd"] for c in selected]))),
        "ap_only": np.full(fault_rates.size,
                           float(np.mean([c["direct"] for c in selected]))),
        "nominal_ff": float(np.mean([c["ff"] for c in selected])),
        "event_counts": event_counts,
        "sample_events": sample_events,
        "num_clients": n_sel,
        "num_steps": num_steps,
        "seed": seed,
    }


def _identify_from_measurement(finger, measured):
    """Identify from a pre-computed tone measurement (test shortcut)."""
    best_id, best_d = None, np.inf
    norm_m = np.linalg.norm(measured)
    for client_id in finger._database:
        expected = finger.expected_measurement(client_id)
        norm_e = np.linalg.norm(expected)
        if norm_m == 0 or norm_e == 0:
            continue
        alpha = np.vdot(expected, measured) / (norm_e ** 2)
        d = np.linalg.norm(measured - alpha * expected) / norm_m
        if d < best_d:
            best_id, best_d = client_id, d
    if best_d > finger.threshold:
        return None
    return best_id
