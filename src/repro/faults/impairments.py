"""Composable impairment models, implemented as runtime stages.

Each impairment is a :class:`repro.runtime.chain.Stage`, so faults
compose with the real processing exactly where they occur physically —
``Chain([AdcSaturationStage(...), relay_chain])`` clips at the receive
converter, before cancellation and filtering ever see the samples.  All
randomness comes from a :class:`repro.faults.schedule.FaultSchedule`
via labelled streams: a seed reproduces the full fault sequence, and
``reset()`` replays it (impairments are bit-deterministic under any
block chunking, like every other stage in the runtime).

The catalogue follows the failure modes the full-duplex literature
identifies as dominant — converter saturation and quantisation, analog
coefficient drift, burst corruption, and sudden self-interference
channel changes that void the tuned cancellation (Duarte et al., Sahai
et al.; paper §3.5 re-tunes when the residual rises).
"""

from __future__ import annotations

import numpy as np

from repro.faults.schedule import FaultSchedule
from repro.runtime.chain import Stage
from repro.utils.validation import ensure_positive


class AdcSaturationStage(Stage):
    """Ideal converter rails: clip I and Q at ``±full_scale``.

    Tracks the running clip fraction — the health metric a real
    front-end exports via its ADC overflow counter.  A relay driven
    into its rails produces correlated distortion the cancellation
    filters cannot model, which is why the supervisor treats a rising
    clip fraction as a first-class fault.
    """

    def __init__(self, full_scale=1.0, name="adc-clip"):
        self.full_scale = float(ensure_positive(full_scale, "full_scale"))
        self.name = name
        self.reset()

    def reset(self):
        self._samples = 0
        self._clipped = 0

    @property
    def clip_fraction(self):
        """Fraction of samples that hit either rail so far."""
        return self._clipped / self._samples if self._samples else 0.0

    def process_block(self, x):
        x = np.asarray(x, dtype=complex)
        fs = self.full_scale
        hit = (np.abs(x.real) > fs) | (np.abs(x.imag) > fs)
        self._samples += x.size
        self._clipped += int(np.count_nonzero(hit))
        if not hit.any():
            return x
        return np.clip(x.real, -fs, fs) + 1j * np.clip(x.imag, -fs, fs)


class QuantizationStage(Stage):
    """Uniform mid-rise I/Q quantisation to ``bits`` bits over ±full_scale.

    Models the converter's finite resolution: each of I and Q snaps to
    the nearest of ``2**bits`` levels; values beyond full scale clip to
    the outermost level (use :class:`AdcSaturationStage` upstream to
    track that clipping explicitly).
    """

    def __init__(self, bits=10, full_scale=1.0, name="adc-quantize"):
        bits = int(bits)
        if bits < 1:
            raise ValueError(f"bits must be >= 1, got {bits}")
        self.bits = bits
        self.full_scale = float(ensure_positive(full_scale, "full_scale"))
        self._step = 2.0 * self.full_scale / (2 ** bits)
        self.name = name

    @property
    def step(self):
        """Quantisation step size (per I/Q rail)."""
        return self._step

    def _quantize(self, v):
        level = np.floor(v / self._step) + 0.5
        max_level = 2 ** (self.bits - 1) - 0.5
        return np.clip(level, -max_level, max_level) * self._step

    def process_block(self, x):
        x = np.asarray(x, dtype=complex)
        return self._quantize(x.real) + 1j * self._quantize(x.imag)


class TapDriftStage(Stage):
    """Slow random-walk drift of an analog stage's realised coefficients.

    Attenuator and phase-shifter settings on boards like the
    :class:`repro.dsp.tapped_delay_line.AnalogTapDelayLine` drift with
    temperature and supply; to the stream this appears as a slowly
    varying multiplicative error.  Amplitude walks in dB and phase in
    radians, each a Wiener process with the given per-√second standard
    deviations, integrated per sample so the drift trajectory is
    independent of block chunking and replayed exactly on ``reset()``.
    """

    def __init__(self, schedule: FaultSchedule, sample_rate_hz,
                 amp_sigma_db_per_sqrt_s=0.5, phase_sigma_rad_per_sqrt_s=0.5,
                 label="tap-drift", name="tap-drift"):
        self.sample_rate_hz = float(ensure_positive(sample_rate_hz,
                                                    "sample_rate_hz"))
        self._schedule = schedule
        self._label = label
        dt = 1.0 / self.sample_rate_hz
        self._amp_step_db = float(amp_sigma_db_per_sqrt_s) * np.sqrt(dt)
        self._phase_step_rad = float(phase_sigma_rad_per_sqrt_s) * np.sqrt(dt)
        self.name = name
        self.reset()

    def reset(self):
        # Separate streams per walk: interleaved draws from one stream
        # would make the trajectory depend on the block chunking.
        self._amp_rng = self._schedule.stream(self._label, "amp")
        self._phase_rng = self._schedule.stream(self._label, "phase")
        self._amp_db = 0.0
        self._phase_rad = 0.0

    @property
    def drift_db(self):
        """Current amplitude drift in dB."""
        return self._amp_db

    @property
    def drift_phase_rad(self):
        """Current phase drift in radians."""
        return self._phase_rad

    def process_block(self, x):
        x = np.asarray(x, dtype=complex)
        n = x.shape[-1]
        if n == 0:
            return x
        amp_db = self._amp_db \
            + np.cumsum(self._amp_rng.standard_normal(n)) * self._amp_step_db
        phase = self._phase_rad \
            + np.cumsum(self._phase_rng.standard_normal(n)) \
            * self._phase_step_rad
        self._amp_db = float(amp_db[-1])
        self._phase_rad = float(phase[-1])
        gain = 10.0 ** (amp_db / 20.0) * np.exp(1j * phase)
        return x * gain          # broadcasts over MIMO rows


class SampleDropStage(Stage):
    """Burst sample corruption: zeros or NaNs in Poisson bursts.

    ``mode="zero"`` models dropped samples (a DMA underrun reads
    silence); ``mode="nan"`` models outright garbage — the case nothing
    downstream of the converters detects today, which is exactly what
    :class:`repro.supervision.guard.GuardedStage` exists to catch.
    """

    _MODES = ("zero", "nan")

    def __init__(self, schedule: FaultSchedule, rate_per_sample=1e-5,
                 mean_burst_samples=32, mode="zero", label="drops",
                 name=None):
        if mode not in self._MODES:
            raise ValueError(f"mode must be one of {self._MODES}, got {mode!r}")
        self._schedule = schedule
        self._label = label
        self._rate = float(rate_per_sample)
        self._mean_burst = float(mean_burst_samples)
        self.mode = mode
        self.name = name or f"drop-{mode}"
        self.reset()

    def reset(self):
        self._process = self._schedule.bursts(self._label, self._rate,
                                              self._mean_burst)
        self._cursor = 0
        self._samples = 0
        self._corrupted = 0

    @property
    def corrupted_fraction(self):
        """Fraction of stream samples corrupted so far."""
        return self._corrupted / self._samples if self._samples else 0.0

    def process_block(self, x):
        x = np.asarray(x, dtype=complex)
        n = x.shape[-1]
        mask = self._process.mask(self._cursor, n)
        self._cursor += n
        self._samples += n
        if not mask.any():
            return x
        self._corrupted += int(np.count_nonzero(mask)) \
            * (x.shape[0] if x.ndim == 2 else 1)
        y = x.copy()
        fill = 0.0 if self.mode == "zero" else complex(np.nan, np.nan)
        y[..., mask] = fill
        return y


class ResidualSiStage(Stage):
    """Residual self-interference with Poisson SI-channel jumps.

    While the cancellation tracks the channel, the residual rides
    ``baseline_residual_db`` below the relayed signal (dBc).  A jump —
    someone walks past the antenna, a cable flexes — changes the SI
    channel under the tuned filters and the residual rises to
    ``jump_residual_db`` until :meth:`retune` is called (the
    supervisor's :class:`repro.cancellation.tuning.NoiseInjectionTuner`
    pass), which restores the baseline.  The injected residual is
    white within the band — the worst case for the CNF filter.
    """

    def __init__(self, schedule: FaultSchedule, jump_rate_per_sample=0.0,
                 jump_residual_db=-8.0, baseline_residual_db=-50.0,
                 label="si-jump", name="si-residual"):
        self._schedule = schedule
        self._label = label
        self._rate = float(jump_rate_per_sample)
        self.jump_residual_db = float(jump_residual_db)
        self.baseline_residual_db = float(baseline_residual_db)
        self.name = name
        self.reset()

    def reset(self):
        self._jumps = self._schedule.bursts((self._label, "jumps"),
                                            self._rate, 1)
        self._noise_rng = self._schedule.stream(self._label, "noise")
        self._cursor = 0
        self._jumped = False
        self.jump_count = 0

    @property
    def jumped(self):
        """Whether an un-retuned SI jump is currently in effect."""
        return self._jumped

    @property
    def residual_si_db(self):
        """Current residual level in dBc (relative to the stream)."""
        return self.jump_residual_db if self._jumped \
            else self.baseline_residual_db

    def retune(self, now_s=None):
        """A successful re-tune: the filters track the new SI channel."""
        self._jumped = False
        return True

    def process_block(self, x):
        x = np.asarray(x, dtype=complex)
        n = x.shape[-1]
        mask = self._jumps.mask(self._cursor, n)
        self._cursor += n
        if mask.any():
            # Jump events are single-sample arrivals (duration 1).
            self.jump_count += int(np.count_nonzero(mask))
            self._jumped = True
        if n == 0:
            return x
        power = float(np.mean(np.abs(x) ** 2))
        if power <= 0.0:
            return x
        level = power * 10.0 ** (self.residual_si_db / 10.0)
        scale = np.sqrt(level / 2.0)
        noise = scale * (self._noise_rng.standard_normal(x.shape)
                         + 1j * self._noise_rng.standard_normal(x.shape))
        return x + noise
