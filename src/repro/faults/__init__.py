"""Fault injection: seeded, composable impairments for the relay.

The simulation's happy path proves the algorithms; this subpackage
breaks them on purpose.  Impairments are ordinary runtime stages —
compose them into any :class:`repro.runtime.chain.Chain`, or hand them
to :meth:`repro.core.relay.FastForwardRelay.process` via ``faults=`` —
and every draw comes from a single :class:`FaultSchedule` seed, so any
failure replays exactly.

Catalogue:

* :class:`AdcSaturationStage` — converter rails, with a clip-fraction
  counter (the health metric);
* :class:`QuantizationStage` — finite converter resolution;
* :class:`TapDriftStage` — analog coefficient drift as a per-sample
  random walk in gain/phase;
* :class:`SampleDropStage` — Poisson burst drops (zeros) or garbage
  (NaNs);
* :class:`ResidualSiStage` — self-interference channel jumps that void
  the tuned cancellation until a re-tune;
* :class:`PacketLossProcess` — probabilistic sounding/feedback loss.

The matching detection/reaction machinery lives in
:mod:`repro.supervision`.
"""

from repro.faults.impairments import (
    AdcSaturationStage,
    QuantizationStage,
    ResidualSiStage,
    SampleDropStage,
    TapDriftStage,
)
from repro.faults.schedule import (
    BurstProcess,
    FaultSchedule,
    PacketLossProcess,
)

__all__ = [
    "FaultSchedule",
    "BurstProcess",
    "PacketLossProcess",
    "AdcSaturationStage",
    "QuantizationStage",
    "TapDriftStage",
    "SampleDropStage",
    "ResidualSiStage",
]
