"""Deterministic seeded schedules driving every impairment model.

Reproducibility is the whole point of a fault-injection layer: a bug
found at fault seed 7 must replay sample-for-sample.  A
:class:`FaultSchedule` is a single integer seed from which every
impairment draws its randomness through *labelled* child streams, so

* two runs with the same seed see identical faults,
* two impairments in the same run (labelled differently) are
  statistically independent, and
* resetting a fault stage replays its exact fault sequence.

Two small processes cover the temporal patterns the impairments need:
:class:`BurstProcess` (Poisson-arrival bursts on the absolute sample
axis, invariant to how the stream is chunked into blocks) and
:class:`PacketLossProcess` (per-packet Bernoulli loss indexed by packet
number, for sounding/feedback drops).
"""

from __future__ import annotations

import zlib

import numpy as np


def _label_words(labels):
    """Stable 32-bit words for arbitrary labels (no builtin ``hash``)."""
    words = []
    for label in labels:
        if isinstance(label, (int, np.integer)):
            words.append(int(label) & 0xFFFFFFFF)
        else:
            words.append(zlib.crc32(str(label).encode("utf-8")))
    return words


class FaultSchedule:
    """A seeded, labelled source of impairment randomness.

    ``stream(*labels)`` returns an independent deterministic generator
    per label tuple; every impairment model takes a schedule plus a
    label instead of a raw RNG, so one seed reproduces an entire
    multi-impairment scenario.
    """

    def __init__(self, seed=0):
        self.seed = int(seed) & (2**63 - 1)

    def stream(self, *labels):
        """A deterministic child generator for this label tuple."""
        return np.random.default_rng(
            np.random.SeedSequence([self.seed] + _label_words(labels)))

    def bernoulli(self, p, *labels):
        """One deterministic coin flip with probability ``p``."""
        return bool(self.stream(*labels).random() < float(p))

    def bursts(self, label, rate_per_sample, mean_duration_samples=1):
        """A :class:`BurstProcess` seeded from this schedule."""
        return BurstProcess(self.stream(label, "bursts"), rate_per_sample,
                            mean_duration_samples)

    def packet_loss(self, label, loss_probability):
        """A :class:`PacketLossProcess` seeded from this schedule."""
        return PacketLossProcess(self, loss_probability, label=label)

    def __repr__(self):
        return f"FaultSchedule(seed={self.seed})"


class BurstProcess:
    """Poisson-arrival bursts on the absolute sample axis.

    Arrivals follow an exponential inter-arrival law with mean
    ``1 / rate_per_sample``; each burst lasts a geometric number of
    samples with the given mean.  Bursts are generated lazily and
    consumed strictly left to right, so querying the mask in any block
    sizes yields identical per-sample faults — chunking invariance, the
    same contract the streaming runtime keeps for signal processing.
    """

    def __init__(self, rng, rate_per_sample, mean_duration_samples=1):
        rate = float(rate_per_sample)
        mean_dur = float(mean_duration_samples)
        if rate < 0:
            raise ValueError(f"rate_per_sample must be >= 0, got {rate}")
        if mean_dur < 1:
            raise ValueError(
                f"mean_duration_samples must be >= 1, got {mean_dur}")
        self._rng = rng
        self._rate = rate
        self._mean_duration = mean_dur
        self._windows = []         # (start, stop) half-open, sample indices
        self._next_start = self._gap()

    def _gap(self):
        if self._rate <= 0:
            return float("inf")
        return self._rng.exponential(1.0 / self._rate)

    def _duration(self):
        if self._mean_duration <= 1.0:
            return 1
        return int(self._rng.geometric(1.0 / self._mean_duration))

    def _extend(self, upto):
        while self._next_start < upto:
            start = int(self._next_start)
            duration = self._duration()
            self._windows.append((start, start + duration))
            # Bursts never overlap: the next one starts after this one.
            self._next_start = start + duration + self._gap()

    def mask(self, start, count):
        """Boolean fault mask for absolute samples [start, start+count)."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        self._extend(start + count)
        mask = np.zeros(count, dtype=bool)
        keep = []
        for (a, b) in self._windows:
            if b <= start:
                continue               # burst fully consumed — prune
            keep.append((a, b))
            lo, hi = max(a - start, 0), min(b - start, count)
            if lo < hi:
                mask[lo:hi] = True
        self._windows = keep
        return mask


class PacketLossProcess:
    """Per-packet Bernoulli loss, deterministic in the packet index.

    Models probabilistic sounding/feedback loss: whether poll reply
    ``k`` is lost depends only on (seed, label, k), so replaying an
    experiment — or evaluating supervised and unsupervised policies on
    the *same* fault trace — sees the same losses in the same places.
    """

    def __init__(self, schedule: FaultSchedule, loss_probability,
                 label="packet-loss"):
        p = float(loss_probability)
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"loss_probability must be in [0, 1], got {p}")
        self._schedule = schedule
        self._p = p
        self._label = label

    @property
    def loss_probability(self):
        """The per-packet loss probability."""
        return self._p

    def lost(self, index):
        """Whether packet ``index`` is lost."""
        return self._schedule.bernoulli(self._p, self._label, int(index))

    def delivered(self, index):
        """Whether packet ``index`` arrives."""
        return not self.lost(index)
