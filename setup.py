"""Legacy setup shim.

Kept so that ``python setup.py develop`` works on minimal environments
(no ``wheel`` package, no network) where PEP 660 editable installs fail.
All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
