"""Correlation peak detection."""

import numpy as np
import pytest

from repro.dsp import detect_sequence, find_correlation_peaks
from repro.utils import make_rng


class TestFindPeaks:
    def test_single_peak(self):
        corr = np.array([0.1, 0.2, 0.9, 0.2, 0.1])
        assert list(find_correlation_peaks(corr, 0.5)) == [2]

    def test_threshold_filters(self):
        corr = np.array([0.1, 0.4, 0.1])
        assert find_correlation_peaks(corr, 0.5).size == 0

    def test_min_separation_keeps_strongest(self):
        corr = np.zeros(20)
        corr[5] = 0.8
        corr[7] = 0.9
        peaks = find_correlation_peaks(corr, 0.5, min_separation=5)
        assert list(peaks) == [7]

    def test_separated_peaks_both_kept(self):
        corr = np.zeros(30)
        corr[5] = 0.8
        corr[20] = 0.9
        peaks = find_correlation_peaks(corr, 0.5, min_separation=5)
        assert list(peaks) == [5, 20]

    def test_plateau_edge_peak(self):
        corr = np.array([0.9, 0.8, 0.1])
        assert 0 in find_correlation_peaks(corr, 0.5)

    def test_invalid_separation(self):
        with pytest.raises(ValueError):
            find_correlation_peaks(np.ones(4), 0.5, min_separation=0)


class TestDetectSequence:
    def test_finds_embedded_template(self):
        rng = make_rng(0)
        template = np.exp(2j * np.pi * rng.random(48))
        x = np.concatenate([
            0.01 * (rng.standard_normal(100) + 1j * rng.standard_normal(100)),
            template,
            0.01 * (rng.standard_normal(60) + 1j * rng.standard_normal(60)),
        ])
        idx, scores = detect_sequence(x, template)
        assert 100 in idx
        assert scores[list(idx).index(100)] > 0.9

    def test_finds_repeats(self):
        rng = make_rng(1)
        template = np.exp(2j * np.pi * rng.random(32))
        x = np.concatenate([template, template,
                            0.01 * rng.standard_normal(32).astype(complex)])
        idx, _ = detect_sequence(x, template, threshold=0.8)
        assert 0 in idx and 32 in idx

    def test_no_detection_in_noise(self):
        rng = make_rng(2)
        template = np.exp(2j * np.pi * rng.random(64))
        noise = rng.standard_normal(512) + 1j * rng.standard_normal(512)
        idx, _ = detect_sequence(noise, template, threshold=0.8)
        assert idx.size == 0
