"""RNG helpers: reproducibility across the experiment harness."""

import numpy as np
import pytest

from repro.utils import child_rngs, make_rng


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(42).standard_normal(16)
        b = make_rng(42).standard_normal(16)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = make_rng(1).standard_normal(16)
        b = make_rng(2).standard_normal(16)
        assert not np.array_equal(a, b)

    def test_passthrough_generator(self):
        gen = np.random.default_rng(7)
        assert make_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestChildRngs:
    def test_children_are_reproducible(self):
        kids_a = child_rngs(5, 4)
        kids_b = child_rngs(5, 4)
        for a, b in zip(kids_a, kids_b):
            assert np.array_equal(a.standard_normal(8), b.standard_normal(8))

    def test_children_are_independent(self):
        kids = child_rngs(5, 3)
        draws = [k.standard_normal(32) for k in kids]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_count_zero(self):
        assert child_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            child_rngs(0, -1)

    def test_count_matches(self):
        assert len(child_rngs(9, 17)) == 17
