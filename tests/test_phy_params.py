"""OFDM numerology invariants."""

import pytest

from repro.phy import LTE_10MHZ, WIFI_20MHZ, WIFI_20MHZ_LONG_CP, OfdmParams


class TestWifi20:
    def test_paper_numbers(self):
        # §4.3: 20 MHz, 56 used subcarriers, 400 ns CP.
        assert WIFI_20MHZ.bandwidth_hz == 20e6
        assert WIFI_20MHZ.num_used_subcarriers == 56
        assert WIFI_20MHZ.cp_duration_s == pytest.approx(400e-9)

    def test_data_pilot_split(self):
        assert WIFI_20MHZ.num_data_subcarriers == 52
        assert len(WIFI_20MHZ.pilot_subcarriers) == 4

    def test_symbol_duration_short_gi(self):
        # 64 + 8 samples at 20 Msps = 3.6 us.
        assert WIFI_20MHZ.symbol_duration_s == pytest.approx(3.6e-6)

    def test_subcarrier_spacing(self):
        assert WIFI_20MHZ.subcarrier_spacing_hz == pytest.approx(312.5e3)

    def test_dc_is_null(self):
        assert 0 not in WIFI_20MHZ.used_subcarriers()

    def test_long_cp_is_800ns(self):
        assert WIFI_20MHZ_LONG_CP.cp_duration_s == pytest.approx(800e-9)


class TestLte:
    def test_cp_matches_paper(self):
        # §3.1: LTE CP is 4.69 us.
        assert LTE_10MHZ.cp_duration_s == pytest.approx(4.69e-6, rel=1e-2)

    def test_subcarrier_spacing_15khz(self):
        assert LTE_10MHZ.subcarrier_spacing_hz == pytest.approx(15e3)

    def test_cp_ratio_wifi_vs_lte(self):
        # The paper's headline contrast: LTE tolerates ~12x more delay.
        ratio = LTE_10MHZ.cp_duration_s / WIFI_20MHZ.cp_duration_s
        assert ratio > 10.0


class TestValidation:
    def test_rejects_overlapping_pilots(self):
        with pytest.raises(ValueError):
            OfdmParams("bad", 20e6, 64, 8, (1, 2), (2, 3))

    def test_rejects_out_of_range_subcarrier(self):
        with pytest.raises(ValueError):
            OfdmParams("bad", 20e6, 64, 8, (40,), ())

    def test_rejects_cp_longer_than_fft(self):
        with pytest.raises(ValueError):
            OfdmParams("bad", 20e6, 64, 64, (1,), ())

    def test_subcarrier_freqs(self):
        freqs = WIFI_20MHZ.subcarrier_freqs_hz([1, -1])
        assert freqs[0] == pytest.approx(312.5e3)
        assert freqs[1] == pytest.approx(-312.5e3)
