"""Probe baselines: the store, the verdicts and the committed gate.

``PROBE_BASELINE.json`` at the repo root freezes the canonical
link-health sweep; CI re-derives it and fails on drift.  These tests
prove both directions of that gate: the clean run passes against the
committed file, and a deliberate residual-SI perturbation trips a
``fail`` verdict with a per-metric diagnosis.
"""

import json
from pathlib import Path

import pytest

from repro.probes import (
    CANONICAL_CONFIG,
    DriftVerdict,
    ProbeBaseline,
    canonical_summary,
    compare_to_baseline,
    metric_tolerance,
)
from repro.probes.baseline import main as baseline_main

REPO_BASELINE = Path(__file__).resolve().parent.parent \
    / "PROBE_BASELINE.json"


class TestStore:
    def test_save_load_roundtrip(self, tmp_path):
        baseline = ProbeBaseline.from_summary(
            {"a.evm_rms_db": -24.0, "latency.cp_ns": 400.0},
            config={"seed": 1})
        path = tmp_path / "base.json"
        baseline.save(path)
        loaded = ProbeBaseline.load(path)
        assert loaded.metrics == baseline.metrics
        assert loaded.config == {"seed": 1}
        assert loaded.version == baseline.version

    def test_file_is_sorted_and_versioned(self, tmp_path):
        path = tmp_path / "base.json"
        ProbeBaseline.from_summary({"z": 1.0, "a": 2.0}).save(path)
        data = json.loads(path.read_text())
        assert data["version"] == 1
        assert list(data["metrics"]) == ["a", "z"]

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text(json.dumps({"version": 99, "metrics": {}}))
        with pytest.raises(ValueError, match="version 99"):
            ProbeBaseline.load(path)


class TestTolerances:
    def test_longest_suffix_wins(self):
        assert metric_tolerance("post-cnf.evm_rms_db", -24.0) == (1.5, 4.0)
        assert metric_tolerance("latency.margin_ns", 287.0) == (0.5, 5.0)

    def test_unmatched_metric_falls_back_to_relative(self):
        warn, fail = metric_tolerance("something.novel", 100.0)
        assert warn == pytest.approx(5.0)
        assert fail == pytest.approx(20.0)


class TestCompare:
    BASE = {"x.evm_rms_db": -24.0, "x.cancellation_depth_db": 12.0}

    def test_identical_passes(self):
        report = compare_to_baseline(dict(self.BASE), self.BASE)
        assert report.status == "pass" and report.ok
        assert not report.failures and not report.warnings

    def test_drift_inside_warn_band_warns(self):
        current = dict(self.BASE, **{"x.evm_rms_db": -22.0})  # +2.0 dB
        report = compare_to_baseline(current, self.BASE)
        assert report.status == "warn" and report.ok
        assert report.warnings[0].metric == "x.evm_rms_db"

    def test_drift_beyond_fail_band_fails_with_diagnosis(self):
        current = dict(self.BASE, **{"x.evm_rms_db": -14.0})  # +10.0 dB
        report = compare_to_baseline(current, self.BASE)
        assert report.status == "fail" and not report.ok
        text = str(report)
        assert "[FAIL] x.evm_rms_db" in text
        assert "drift +10.0000" in text

    def test_missing_metric_fails(self):
        current = {"x.evm_rms_db": -24.0}
        report = compare_to_baseline(current, self.BASE)
        assert any(v.status == "fail" and "missing" in v.note
                   for v in report.verdicts)

    def test_new_metric_warns(self):
        current = dict(self.BASE, **{"x.papr_db": 9.0})
        report = compare_to_baseline(current, self.BASE)
        assert report.status == "warn"
        assert any("absent from baseline" in v.note
                   for v in report.verdicts)

    def test_verdict_is_frozen(self):
        verdict = compare_to_baseline(dict(self.BASE), self.BASE).verdicts[0]
        assert isinstance(verdict, DriftVerdict)
        with pytest.raises(AttributeError):
            verdict.status = "fail"


class TestCommittedGate:
    """The expensive end-to-end checks against the committed file."""

    def test_committed_baseline_matches_canonical_run(self):
        baseline = ProbeBaseline.load(REPO_BASELINE)
        assert baseline.config == CANONICAL_CONFIG
        summary, _ = canonical_summary(config=baseline.config)
        report = compare_to_baseline(summary, baseline)
        assert report.ok, f"committed baseline drifted:\n{report}"

    def test_deliberate_residual_si_trips_the_gate(self):
        baseline = ProbeBaseline.load(REPO_BASELINE)
        summary, _ = canonical_summary(config=baseline.config,
                                       fault="residual-si")
        report = compare_to_baseline(summary, baseline)
        assert report.status == "fail"
        failed = {v.metric for v in report.failures}
        assert any("evm_rms_db" in name for name in failed)

    def test_cli_gate_exit_codes(self, tmp_path, capsys):
        path = tmp_path / "gate.json"
        assert baseline_main(["--write", str(path)]) == 0
        assert baseline_main(["--check", str(path)]) == 0
        assert baseline_main(["--check", str(path),
                              "--fault", "residual-si"]) == 1
        out = capsys.readouterr().out
        assert "[FAIL]" in out and "drift gate: FAIL" in out
