"""The closed full-duplex loop (Fig. 3 + Fig. 7, live)."""

import numpy as np
import pytest

from repro.cancellation import CancellationPipeline
from repro.cancellation.pipeline import bandlimited_gaussian
from repro.core import FullDuplexRelaySession
from repro.utils import make_rng


@pytest.fixture(scope="module")
def tuned_pipe():
    pipe = CancellationPipeline(rng=1)
    pipe.tune()
    return pipe


@pytest.fixture(scope="module")
def session(tuned_pipe):
    return FullDuplexRelaySession(tuned_pipe, amplification_db=78.0, rng=2)


def _source(pipe, rng, n=10000, power_dbm=-60.0):
    return bandlimited_gaussian(n, power_dbm, pipe.occupied_fraction, rng)


class TestClosedLoop:
    def test_requires_tuned_pipeline(self):
        pipe = CancellationPipeline(rng=9)
        with pytest.raises(ValueError):
            FullDuplexRelaySession(pipe, amplification_db=70.0)

    def test_isolation_measured(self, session):
        iso = session.measured_isolation_db(rng=3)
        assert iso > 85.0

    def test_stable_below_isolation(self, session, tuned_pipe):
        rng = make_rng(4)
        res = session.run(_source(tuned_pipe, rng), rng=rng)
        assert res.stable
        assert res.peak_tx_dbm < 29.0

    def test_source_heard_while_transmitting(self, session, tuned_pipe):
        # The whole point of full duplex: the cleaned receive stream IS
        # the source, while the relay simultaneously transmits an
        # amplified copy of it.
        rng = make_rng(5)
        src = _source(tuned_pipe, rng)
        res = session.run(src, rng=rng)
        tail = slice(2000, None)
        corr = abs(np.vdot(res.cleaned[tail], src[tail])) / (
            np.linalg.norm(res.cleaned[tail]) * np.linalg.norm(src[tail]))
        assert corr > 0.98
        # And the transmitted stream really is at amplified power.
        tx_dbm = 10 * np.log10(np.mean(np.abs(res.transmitted[tail]) ** 2))
        assert tx_dbm == pytest.approx(-60.0 + 78.0, abs=3.0)

    def test_residual_si_near_floor(self, session, tuned_pipe):
        rng = make_rng(6)
        res = session.run(_source(tuned_pipe, rng), rng=rng)
        assert res.residual_si_dbm < -70.0

    def test_rings_beyond_isolation(self, session, tuned_pipe):
        rng = make_rng(7)
        session_hot = FullDuplexRelaySession(tuned_pipe,
                                             amplification_db=105.0, rng=2)
        res = session_hot.run(_source(tuned_pipe, rng), rng=rng)
        assert not res.stable
        assert res.peak_tx_dbm == pytest.approx(30.0, abs=0.5)

    def test_forward_filter_taps_applied(self, tuned_pipe):
        # A forward gain of 0.5 shows up as -6 dB on the output.
        rng = make_rng(8)
        base = FullDuplexRelaySession(tuned_pipe, amplification_db=70.0,
                                      rng=2)
        halved = FullDuplexRelaySession(tuned_pipe, amplification_db=70.0,
                                        forward_filter_taps=[0.5], rng=2)
        src = _source(tuned_pipe, rng, n=6000)
        out_base = base.run(src, rng=make_rng(9))
        out_half = halved.run(src, rng=make_rng(9))
        tail = slice(2000, None)
        ratio = 10 * np.log10(
            np.mean(np.abs(out_half.transmitted[tail]) ** 2)
            / np.mean(np.abs(out_base.transmitted[tail]) ** 2))
        assert ratio == pytest.approx(-6.0, abs=1.0)
