"""The chaos harness: seeded kills/hangs/raises/corruption, survived.

The acceptance contract: a chaos-ridden sweep completes without
raising, quarantines exactly the poisoned tasks, and every
non-quarantined result is bit-identical to a clean serial run — with
all recovery transitions visible in ``exec.recovery.*`` telemetry and
the whole circus deterministic across reruns of the same seed.
"""

import numpy as np
import pytest

from repro.exec import (
    ChaosError,
    ChaosPolicy,
    ResultCache,
    RetryPolicy,
    Task,
    TaskFailure,
    run_sweep,
    task_fn,
)
from repro.exec import chaos as chaos_mod
from repro.exec import shm as shm_mod
from repro.exec.manifest import SweepManifest
from repro.telemetry.collector import TelemetryCollector, use_collector


@task_fn("chaos-test.draw", version="1")
def _draw(n, rng=None):
    return {"v": rng.standard_normal(n)}


def _tasks(n=6, size=4):
    return [Task("chaos-test.draw", {"n": size}, seed=1000 + i)
            for i in range(n)]


def _clean_results(tasks):
    return run_sweep(tasks, jobs=1, cache=False).results


def _assert_identical(chaotic, clean, skip=()):
    for index, (a, b) in enumerate(zip(chaotic, clean)):
        if index in skip:
            assert isinstance(a, TaskFailure)
        else:
            assert np.array_equal(a["v"], b["v"]), f"task {index} differs"


def _policy(**overrides):
    base = dict(max_retries=4, backoff_base_s=0.001, backoff_max_s=0.01,
                timeout_grace_s=0.5, pool_break_budget=3)
    base.update(overrides)
    return RetryPolicy(**base)


class TestChaosPolicy:
    def test_plan_deterministic_per_seed(self):
        policy = ChaosPolicy(seed=5, error_rate=0.4, kill_rate=0.2)
        again = ChaosPolicy(seed=5, error_rate=0.4, kill_rate=0.2)
        for index in range(20):
            assert policy.plan(index, 0) == again.plan(index, 0)

    def test_injection_stops_after_budgeted_attempts(self):
        policy = ChaosPolicy(seed=5, error_rate=1.0,
                             max_injected_attempts=2)
        assert policy.plan(0, 0) == "error"
        assert policy.plan(0, 1) == "error"
        assert policy.plan(0, 2) is None

    def test_poison_fires_every_attempt(self):
        policy = ChaosPolicy(seed=5, poison=(3,))
        for attempt in range(5):
            assert policy.plan(3, attempt) == "poison"

    def test_parse_specs(self):
        bare = ChaosPolicy.parse("42")
        assert bare.seed == 42 and bare.error_rate == 0.2
        full = ChaosPolicy.parse("seed=7,error=0.3,kill=0.1,poison=2:5")
        assert full.seed == 7 and full.poison == (2, 5)
        with pytest.raises(ValueError):
            ChaosPolicy.parse("bogus=1")

    def test_maybe_inject_raises_in_parent(self):
        with pytest.raises(ChaosError):
            chaos_mod.maybe_inject(ChaosPolicy(seed=0, error_rate=1.0),
                                   0, 0)
        # Kill degrades to a raise outside a process worker.
        with pytest.raises(chaos_mod.ChaosKill):
            chaos_mod.maybe_inject(ChaosPolicy(seed=0, kill_rate=1.0),
                                   0, 0)


class TestInjectedErrors:
    def test_serial_sweep_survives_error_storm(self):
        tasks = _tasks(8)
        chaos = ChaosPolicy(seed=3, error_rate=0.5)
        assert chaos.afflicted("error", 8)       # storm actually fires
        out = run_sweep(tasks, jobs=1, cache=False, retry_policy=_policy(),
                        chaos=chaos)
        assert out.ok and out.stats.retries >= 1
        _assert_identical(out.results, _clean_results(tasks))

    def test_thread_sweep_survives_error_storm(self):
        tasks = _tasks(8)
        chaos = ChaosPolicy(seed=3, error_rate=0.5)
        out = run_sweep(tasks, jobs=3, backend="thread", chunk_size=2,
                        cache=False, retry_policy=_policy(), chaos=chaos)
        assert out.ok
        _assert_identical(out.results, _clean_results(tasks))

    def test_same_seed_same_outcome(self):
        tasks = _tasks(8)
        chaos = ChaosPolicy(seed=11, error_rate=0.4, poison=(6,))
        runs = [run_sweep(tasks, jobs=2, backend="thread", chunk_size=2,
                          cache=False, retry_policy=_policy(), chaos=chaos)
                for _ in range(2)]
        assert ([f.index for f in runs[0].failures]
                == [f.index for f in runs[1].failures] == [6])
        assert runs[0].stats.retries == runs[1].stats.retries
        _assert_identical(runs[0].results, runs[1].results, skip=(6,))


class TestQuarantine:
    def test_exactly_poisoned_tasks_quarantined(self):
        tasks = _tasks(6)
        chaos = ChaosPolicy(seed=0, poison=(1, 4))
        out = run_sweep(tasks, jobs=2, backend="thread", chunk_size=2,
                        cache=False, retry_policy=_policy(max_retries=1),
                        chaos=chaos)
        assert [f.index for f in out.failures] == [1, 4]
        assert out.stats.quarantined == 2
        _assert_identical(out.results, _clean_results(tasks), skip=(1, 4))

    def test_quarantine_visible_in_telemetry(self):
        tasks = _tasks(4)
        chaos = ChaosPolicy(seed=0, poison=(2,))
        tel = TelemetryCollector()
        with use_collector(tel):
            run_sweep(tasks, jobs=1, cache=False,
                      retry_policy=_policy(max_retries=1), chaos=chaos)
        counts = tel.metrics.counter_values("exec.recovery.quarantined")
        assert sum(counts.values()) == 1
        actions = [e["labels"]["action"] for e in tel.events
                   if e["name"] == "exec.recovery.transition"]
        assert "quarantine" in actions and "retry" in actions


class TestWorkerKills:
    def test_process_sweep_survives_kill_storm(self):
        tasks = _tasks(8)
        chaos = ChaosPolicy(seed=1, kill_rate=0.4)
        assert chaos.afflicted("kill", 8)
        tel = TelemetryCollector()
        with use_collector(tel):
            out = run_sweep(tasks, jobs=2, backend="process", chunk_size=2,
                            cache=False, retry_policy=_policy(),
                            chaos=chaos)
        assert out.ok
        assert out.stats.worker_crashes >= 1
        assert out.stats.respawns + (1 if out.stats.degraded_to else 0) >= 1
        _assert_identical(out.results, _clean_results(tasks))
        names = {e["name"] for e in tel.events}
        assert "exec.recovery.transition" in names

    def test_chunk_splitting_isolates_culprit(self):
        tasks = _tasks(8)
        chaos = ChaosPolicy(seed=1, kill_rate=0.2)
        killed = chaos.afflicted("kill", 8)
        assert killed                       # seed chosen so someone dies
        out = run_sweep(tasks, jobs=2, backend="process", chunk_size=4,
                        cache=False, retry_policy=_policy(), chaos=chaos)
        assert out.ok and out.stats.chunk_splits >= 1
        _assert_identical(out.results, _clean_results(tasks))

    def test_pool_break_budget_degrades_backend(self):
        tasks = _tasks(4)
        # Every task kills its worker twice: the process pool can never
        # finish a chunk, so the ladder must demote to threads, where
        # the kill degrades to a charged raise and retries succeed.
        chaos = ChaosPolicy(seed=0, kill_rate=1.0, max_injected_attempts=2)
        tel = TelemetryCollector()
        with use_collector(tel):
            out = run_sweep(tasks, jobs=2, backend="process", chunk_size=1,
                            cache=False,
                            retry_policy=_policy(max_retries=6,
                                                 pool_break_budget=2),
                            chaos=chaos)
        assert out.ok and out.stats.degraded_to in ("thread", "serial")
        _assert_identical(out.results, _clean_results(tasks))
        degrades = [e["labels"] for e in tel.events
                    if e["name"] == "exec.recovery.transition"
                    and e["labels"]["action"] == "degrade"]
        assert degrades and degrades[0]["from"] == "process"


class TestHangsAndTimeouts:
    def test_process_hang_reclaimed_by_deadline(self):
        tasks = _tasks(6)
        chaos = ChaosPolicy(seed=2, hang_rate=0.3, hang_s=10.0)
        assert chaos.afflicted("hang", 6)
        out = run_sweep(tasks, jobs=2, backend="process", chunk_size=1,
                        cache=False,
                        retry_policy=_policy(task_timeout_s=0.5),
                        chaos=chaos)
        assert out.ok and out.stats.timeouts >= 1
        _assert_identical(out.results, _clean_results(tasks))

    def test_thread_hang_abandoned_by_deadline(self):
        tasks = _tasks(4)
        chaos = ChaosPolicy(seed=9, hang_rate=0.35, hang_s=2.0)
        hung = chaos.afflicted("hang", 4)
        assert hung
        out = run_sweep(tasks, jobs=2, backend="thread", chunk_size=1,
                        cache=False,
                        retry_policy=_policy(task_timeout_s=0.3,
                                             timeout_grace_s=0.2),
                        chaos=chaos)
        assert out.ok and out.stats.timeouts >= len(hung)
        _assert_identical(out.results, _clean_results(tasks))


class TestStorageChaos:
    def test_corrupt_cache_entries_recomputed(self, tmp_path):
        cache_dir = tmp_path / "cache"
        tasks = _tasks(5)
        first = run_sweep(tasks, jobs=1, cache=ResultCache(cache_dir))
        torn = chaos_mod.corrupt_cache_entries(cache_dir, seed=0, rate=1.0)
        assert len(torn) == 5
        cache = ResultCache(cache_dir)
        again = run_sweep(tasks, jobs=1, cache=cache)
        assert again.stats.executed == 5      # every entry was evicted
        assert cache.stats.corrupt == 5
        _assert_identical(again.results, first.results)

    def test_garbage_cache_entries_recomputed(self, tmp_path):
        cache_dir = tmp_path / "cache"
        tasks = _tasks(3)
        run_sweep(tasks, jobs=1, cache=ResultCache(cache_dir))
        chaos_mod.corrupt_cache_entries(cache_dir, seed=0, rate=1.0,
                                        mode="garbage")
        cache = ResultCache(cache_dir)
        out = run_sweep(tasks, jobs=1, cache=cache)
        assert out.stats.executed == 3 and cache.stats.corrupt == 3

    def test_truncated_manifest_resumes_valid_prefix(self, tmp_path):
        manifest = tmp_path / "sweep.manifest"
        cache = ResultCache(tmp_path / "cache")
        tasks = _tasks(6)
        first = run_sweep(tasks, jobs=1, cache=cache,
                          checkpoint=manifest)
        assert first.stats.executed == 6
        removed = chaos_mod.truncate_manifest(manifest)
        assert removed > 0
        tel = TelemetryCollector()
        with use_collector(tel):
            again = run_sweep(tasks, jobs=1, cache=cache,
                              checkpoint=manifest)
        # The torn final line loses one completion record; its result
        # is still in the cache, so nothing re-executes.
        assert again.stats.resumed == 5
        assert again.stats.executed == 0 and again.stats.cache_hits == 1
        counts = tel.metrics.counter_values("exec.manifest.truncated")
        assert sum(counts.values()) == 1
        _assert_identical(again.results, first.results)

    def test_orphaned_segment_reaped_on_next_sweep(self, tmp_path):
        if not shm_mod.enabled() or not shm_mod.SHM_DIR:
            pytest.skip("no /dev/shm")
        name = chaos_mod.plant_orphan_segment(age_s=3600.0)
        try:
            out = run_sweep(_tasks(2), jobs=1, cache=False)
            assert out.stats.orphans_reclaimed >= 1
            import os
            assert not os.path.exists(os.path.join(shm_mod.SHM_DIR, name))
        finally:
            import os
            try:
                os.unlink(os.path.join(shm_mod.SHM_DIR, name))
            except OSError:
                pass


class TestFullCircus:
    def test_everything_at_once(self, tmp_path):
        """Kills + hangs + raises + poison + torn storage, one sweep."""
        tasks = _tasks(10)
        clean = _clean_results(tasks)
        chaos = ChaosPolicy(seed=4, error_rate=0.3, kill_rate=0.15,
                            hang_rate=0.1, hang_s=10.0, poison=(7,))
        cache = ResultCache(tmp_path / "cache")
        tel = TelemetryCollector()
        with use_collector(tel):
            out = run_sweep(tasks, jobs=2, backend="process", chunk_size=2,
                            cache=cache,
                            checkpoint=tmp_path / "sweep.manifest",
                            retry_policy=_policy(max_retries=5,
                                                 task_timeout_s=0.6),
                            chaos=chaos)
        assert [f.index for f in out.failures] == [7]
        _assert_identical(out.results, clean, skip=(7,))
        assert cache.stats.stores == 9       # the poison task never lands
        # Rerun resumes everything that survived, retries the poison.
        again = run_sweep(tasks, jobs=1, cache=cache,
                          checkpoint=tmp_path / "sweep.manifest")
        assert again.stats.resumed == 9 and again.stats.executed == 1
        _assert_identical(again.results, clean)
