"""The 2x2 MIMO cancellation architecture (Fig. 8)."""

import numpy as np
import pytest

from repro.cancellation import (
    MimoCancellationPipeline,
    MimoSelfInterference,
)
from repro.cancellation.pipeline import bandlimited_gaussian
from repro.utils import make_rng


@pytest.fixture(scope="module")
def tuned():
    pipe = MimoCancellationPipeline(rng=1)
    pipe.tune()
    return pipe


class TestMimoSelfInterference:
    def test_square_matrix_enforced(self):
        si = MimoSelfInterference.typical(k=2, rng=make_rng(0))
        with pytest.raises(ValueError):
            MimoSelfInterference([si.channels[0]])

    def test_crosstalk_weaker_than_direct(self):
        si = MimoSelfInterference.typical(k=2, crosstalk_extra_db=15.0,
                                          rng=make_rng(1))
        direct = np.abs(si.channels[0][0].gains[0])
        cross = np.abs(si.channels[0][1].gains[0])
        assert cross < direct

    def test_apply_shape(self):
        si = MimoSelfInterference.typical(k=2, rng=make_rng(2))
        out = si.apply(np.ones((2, 256), dtype=complex), 160e6)
        assert out.shape == (2, 256)

    def test_stream_count_checked(self):
        si = MimoSelfInterference.typical(k=2, rng=make_rng(3))
        with pytest.raises(ValueError):
            si.apply(np.ones((3, 64), dtype=complex), 160e6)


class TestMimoCancellation:
    def test_paper_figure_per_chain(self, tuned):
        # §3.3 / §4.3: the 2x2 prototype's cancellation, all four paths.
        report = tuned.measure()
        assert report.worst_chain_db() > 103.0
        assert report.per_chain_total_db.max() <= 111.0

    def test_across_seeds(self):
        for seed in (2, 3):
            pipe = MimoCancellationPipeline(rng=seed)
            pipe.tune()
            assert pipe.measure().worst_chain_db() > 102.0

    def test_crosstalk_is_cancelled_too(self, tuned):
        # Transmit on chain 1 only: chain 0's RX sees pure cross-talk,
        # and cancellation must still push it toward the floor.
        rng = make_rng(9)
        n = 32768
        tx = np.zeros((2, n), dtype=complex)
        tx[1] = bandlimited_gaussian(n, 20.0, tuned.occupied_fraction, rng)
        rx = tuned.rx_with_si(tx, rng=rng)
        cleaned = tuned.cancel(rx, tx)
        residual_dbm = 10 * np.log10(np.mean(np.abs(cleaned[0, 512:]) ** 2))
        assert residual_dbm < -80.0

    def test_cancel_requires_tuning(self):
        pipe = MimoCancellationPipeline(rng=7)
        with pytest.raises(RuntimeError):
            pipe.cancel(np.ones((2, 64), dtype=complex),
                        np.ones((2, 64), dtype=complex))

    def test_report_renders(self, tuned):
        assert "rx0" in str(tuned.measure())
