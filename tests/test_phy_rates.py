"""MCS table and SNR -> rate mapping."""

import numpy as np
import pytest

from repro.phy import (
    MCS_TABLE,
    highest_mcs_for_snr,
    mimo_phy_rate_mbps,
    phy_rate_mbps,
    shannon_rate_mbps,
)
from repro.phy.rates import effective_snr_db, snr_required_for_rate


class TestMcsTable:
    def test_rates_increase(self):
        rates = [e.rate_mbps for e in MCS_TABLE]
        assert all(a < b for a, b in zip(rates, rates[1:]))

    def test_thresholds_increase(self):
        thresholds = [e.min_snr_db for e in MCS_TABLE]
        assert all(a < b for a, b in zip(thresholds, thresholds[1:]))

    def test_mcs7_rate(self):
        # HT-20 SGI MCS7 single stream = 72.2 Mbps.
        assert MCS_TABLE[7].rate_mbps == pytest.approx(72.2, rel=1e-2)

    def test_highest_256qam_needs_28db_plus(self):
        # The §3.3 argument: max SNR needed is ~28 dB for the top rates.
        assert MCS_TABLE[8].min_snr_db >= 28.0


class TestRateMapping:
    def test_dead_below_mcs0(self):
        assert phy_rate_mbps(-1.0) == 0.0

    def test_monotone_in_snr(self):
        snrs = np.linspace(-5, 40, 46)
        rates = [phy_rate_mbps(s) for s in snrs]
        assert all(a <= b for a, b in zip(rates, rates[1:]))

    def test_selects_highest_eligible(self):
        entry = highest_mcs_for_snr(21.0)
        assert entry.index == 6

    def test_mimo_sums_streams(self):
        two = mimo_phy_rate_mbps([25.0, 25.0])
        one = phy_rate_mbps(25.0)
        assert two == pytest.approx(2 * one)

    def test_mimo_dead_stream_contributes_nothing(self):
        assert mimo_phy_rate_mbps([25.0, -10.0]) == phy_rate_mbps(25.0)

    def test_snr_required_inverse(self):
        for entry in MCS_TABLE:
            assert snr_required_for_rate(entry.rate_mbps) <= entry.min_snr_db


class TestShannon:
    def test_concavity_diminishing_returns(self):
        # §5.2's argument: +6 dB from 64- to 256-QAM buys only ~33%.
        low = shannon_rate_mbps(5.0)
        mid = shannon_rate_mbps(17.0)
        high = shannon_rate_mbps(23.0)
        gain_low = mid / low
        gain_high = high / mid
        assert gain_low > gain_high

    def test_mcs_tracks_capacity_shape(self):
        snrs = np.arange(3.0, 28.0, 2.0)
        mcs_rates = np.array([phy_rate_mbps(s) for s in snrs])
        cap_rates = shannon_rate_mbps(snrs)
        # Correlated upward staircase under the capacity curve.
        assert np.corrcoef(mcs_rates, cap_rates)[0, 1] > 0.97
        assert np.all(mcs_rates <= cap_rates * 1.05)


class TestEffectiveSnr:
    def test_flat_snrs_pass_through(self):
        assert effective_snr_db(np.full(56, 15.0)) == pytest.approx(15.0,
                                                                    abs=0.1)
    def test_weak_tones_drag_down(self):
        snrs = np.full(56, 20.0)
        snrs[:8] = 0.0
        eff = effective_snr_db(snrs)
        # Well below the arithmetic mean (17.1 dB) but above the floor.
        assert 5.0 < eff < 15.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            effective_snr_db(np.array([]))

    def test_monotone_in_any_tone(self):
        base = np.full(56, 12.0)
        better = base.copy()
        better[7] = 20.0
        assert effective_snr_db(better) > effective_snr_db(base)
