"""The multi-client network simulation (§6 end to end)."""

import numpy as np
import pytest

from repro.core import SampleLevelMeshRouter
from repro.netsim import Testbed, paper_scenarios
from repro.netsim.network import NetworkSimulation
from repro.phy import Transmitter, TxConfig
from repro.utils import awgn_like, make_rng


@pytest.fixture(scope="module")
def network():
    testbed = Testbed(paper_scenarios()[0], seed=3)
    positions = {
        "near": np.array([3.2, 1.8]),
        "edge": np.array([1.5, 6.3]),
    }
    return NetworkSimulation(testbed, positions, seed=3, mcs_index=1)


class TestNetworkSimulation:
    def test_edge_client_served_via_relay(self, network):
        rng = make_rng(0)
        bits = rng.integers(0, 2, 160)
        outcome = network.send_downlink("edge", bits, rng)
        assert outcome.relayed, outcome.controller_reason
        assert outcome.decoded
        assert outcome.bit_exact

    def test_controller_names_the_right_client(self, network):
        rng = make_rng(1)
        for client in network.clients():
            outcome = network.send_downlink(client,
                                            rng.integers(0, 2, 120), rng)
            assert outcome.client_id == client
            assert outcome.relayed

    def test_foreign_packet_not_relayed(self, network):
        rng = make_rng(2)
        outcome = network.send_downlink("edge", rng.integers(0, 2, 120),
                                        rng, foreign=True)
        assert not outcome.relayed
        assert "signature" in outcome.controller_reason

    def test_foreign_edge_packet_fails_without_relay(self, network):
        # The same dead-spot packet that succeeds when relayed fails
        # when the relay correctly leaves a foreign packet alone.
        rng = make_rng(3)
        outcome = network.send_downlink("edge", rng.integers(0, 2, 160),
                                        rng, foreign=True)
        assert not outcome.decoded

    def test_stale_state_blocks_relaying(self, network):
        rng = make_rng(4)
        outcome = network.send_downlink("edge", rng.integers(0, 2, 120),
                                        rng, now_s=60.0)
        assert not outcome.relayed
        assert "stale" in outcome.controller_reason

    def test_round_serves_all_clients(self, network):
        rng = make_rng(5)
        payloads = {c: rng.integers(0, 2, 120) for c in network.clients()}
        outcomes = network.run_round(payloads, rng)
        assert set(outcomes) == set(network.clients())
        assert all(o.bit_exact for o in outcomes.values())


class TestSampleLevelMeshRouter:
    def test_decode_and_forward_roundtrip(self):
        rng = make_rng(6)
        router = SampleLevelMeshRouter(mcs_index=0)
        bits = rng.integers(0, 2, 200)
        wave = Transmitter(TxConfig(mcs_index=3)).transmit(bits)[0]
        wave = np.concatenate([np.zeros(80, dtype=complex), wave])
        wave = wave + awgn_like(wave, 10.0 ** (-25.0 / 10.0), rng)
        forwarded, result = router.forward_packet(wave)
        assert result.success
        assert forwarded is not None
        # The retransmission decodes bit-exactly at a second receiver.
        from repro.phy import Receiver

        second_hop = np.concatenate([np.zeros(60, dtype=complex),
                                     forwarded / 10.0])
        second_hop += awgn_like(second_hop, 10.0 ** (-25.0 / 10.0), rng)
        relayed = Receiver().receive(second_hop)
        assert relayed.success
        assert np.array_equal(relayed.payload_bits, bits)

    def test_failed_decode_forwards_nothing(self):
        rng = make_rng(7)
        router = SampleLevelMeshRouter()
        noise = awgn_like(np.zeros(3000), 1.0, rng)
        forwarded, result = router.forward_packet(noise)
        assert forwarded is None
        assert not result.success

    def test_two_slot_cost(self):
        # The DF router needs its own slot: the forwarded waveform is a
        # fresh full PPDU, roughly doubling airtime vs the FF relay's
        # zero extra slots.
        rng = make_rng(8)
        router = SampleLevelMeshRouter(mcs_index=1)
        bits = rng.integers(0, 2, 200)
        wave = Transmitter(TxConfig(mcs_index=1)).transmit(bits)[0]
        padded = np.concatenate([np.zeros(80, dtype=complex), wave])
        padded = padded + awgn_like(padded, 1e-3, rng)
        forwarded, _ = router.forward_packet(padded)
        assert forwarded is not None
        total_airtime = wave.size + forwarded.size
        assert total_airtime >= 2 * wave.size * 0.9


class TestUplink:
    @pytest.fixture(scope="class")
    def uplink_net(self):
        testbed = Testbed(paper_scenarios()[0], seed=3)
        positions = {
            "mid": np.array([6.0, 4.2]),
            "other": np.array([3.2, 1.8]),
        }
        return NetworkSimulation(testbed, positions, seed=3, mcs_index=0)

    def test_uplink_relayed_and_decoded(self, uplink_net):
        rng = make_rng(100)
        outcome = uplink_net.send_uplink("mid", rng.integers(0, 2, 120), rng)
        assert outcome.relayed, outcome.controller_reason
        assert outcome.bit_exact

    def test_fingerprint_names_the_transmitter(self, uplink_net):
        rng = make_rng(101)
        for client in uplink_net.clients():
            outcome = uplink_net.send_uplink(client,
                                             rng.integers(0, 2, 100), rng)
            assert outcome.client_id == client
            assert outcome.relayed

    def test_stale_state_blocks_uplink_relaying(self, uplink_net):
        rng = make_rng(102)
        outcome = uplink_net.send_uplink("mid", rng.integers(0, 2, 100),
                                         rng, now_s=60.0)
        assert not outcome.relayed
        assert "stale" in outcome.controller_reason

    def test_uplink_limited_by_first_hop(self, uplink_net):
        # Physics check: the uplink's relayed copy is bounded by the
        # weaker client->relay hop.  A deeply buried client cannot be
        # rescued on the uplink as easily as on the downlink.
        testbed = Testbed(paper_scenarios()[0], seed=3)
        net = NetworkSimulation(testbed,
                                {"edge": np.array([1.5, 6.3])},
                                seed=3, mcs_index=0)
        rng = make_rng(103)
        down = net.send_downlink("edge", rng.integers(0, 2, 120), rng)
        up = net.send_uplink("edge", rng.integers(0, 2, 120), rng)
        assert down.bit_exact
        assert not up.bit_exact  # weak first hop caps the relayed SNR


class TestWrongFilterHarm:
    """§6's justification for conservatism: "A false positive (defined
    as mistaking one client for another) could in some cases worsen the
    SNR by applying the wrong filter"."""

    def test_wrong_filter_can_be_destructive(self):
        from repro.core import FastForwardRelay, RelayConfig
        from repro.phy.params import WIFI_20MHZ
        from repro.phy.rates import effective_snr_db

        rng = make_rng(42)
        used = WIFI_20MHZ.used_subcarriers()
        n = len(used)
        worse_count = 0
        trials = 30
        for _ in range(trials):
            scale = 3e-4
            h_sd_a = scale * (rng.standard_normal(n) + 1j * rng.standard_normal(n))
            h_sd_b = scale * (rng.standard_normal(n) + 1j * rng.standard_normal(n))
            h_sr = 1e-3 * (rng.standard_normal(n) + 1j * rng.standard_normal(n))
            h_rd = 1e-3 * (rng.standard_normal(n) + 1j * rng.standard_normal(n))
            # The relay arms client B's filter but the packet is for A.
            wrong = FastForwardRelay(RelayConfig(use_decomposition=False))
            wrong.configure_siso_link(h_sd_b, h_sr, h_rd)
            wrong._h_sd = h_sd_a
            snr_wrong = effective_snr_db(wrong.destination_snr_db())
            direct = effective_snr_db(
                10 * np.log10(np.abs(h_sd_a) ** 2 * 100.0 / 1e-9))
            worse_count += snr_wrong < direct
        # With a random (wrong) filter the relayed copy adds with
        # arbitrary phases: it must hurt a nontrivial share of packets.
        assert worse_count >= 2

    def test_right_filter_never_hurts(self):
        from repro.core import FastForwardRelay, RelayConfig
        from repro.phy.params import WIFI_20MHZ
        from repro.phy.rates import effective_snr_db

        rng = make_rng(43)
        used = WIFI_20MHZ.used_subcarriers()
        n = len(used)
        for _ in range(20):
            scale = 3e-4
            h_sd = scale * (rng.standard_normal(n) + 1j * rng.standard_normal(n))
            h_sr = 1e-3 * (rng.standard_normal(n) + 1j * rng.standard_normal(n))
            h_rd = 1e-3 * (rng.standard_normal(n) + 1j * rng.standard_normal(n))
            relay = FastForwardRelay(RelayConfig(use_decomposition=False))
            relay.configure_siso_link(h_sd, h_sr, h_rd)
            snr = effective_snr_db(relay.destination_snr_db())
            direct = effective_snr_db(
                10 * np.log10(np.abs(h_sd) ** 2 * 100.0 / 1e-9))
            assert snr >= direct - 0.5
