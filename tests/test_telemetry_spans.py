"""Spans, collectors, the ambient-collector machinery."""

import threading

import pytest

from repro.telemetry import (
    NULL_SPAN,
    NullCollector,
    TelemetryCollector,
    current_collector,
    set_collector,
    use_collector,
)


class TestSpans:
    def test_span_records_on_exit(self):
        tel = TelemetryCollector()
        with tel.span("work", stage="cnf"):
            pass
        (rec,) = tel.spans
        assert rec["name"] == "work"
        assert rec["labels"] == {"stage": "cnf"}
        assert rec["dur_ns"] >= 0
        assert rec["ts_ns"] >= 0
        assert rec["depth"] == 0

    def test_nesting_depth(self):
        tel = TelemetryCollector()
        with tel.span("outer"):
            with tel.span("inner"):
                pass
            with tel.span("sibling"):
                pass
        by_name = {r["name"]: r for r in tel.spans}
        assert by_name["outer"]["depth"] == 0
        assert by_name["inner"]["depth"] == 1
        assert by_name["sibling"]["depth"] == 1

    def test_inner_span_contained_in_outer(self):
        tel = TelemetryCollector()
        with tel.span("outer"):
            with tel.span("inner"):
                pass
        inner, outer = tel.spans
        assert inner["ts_ns"] >= outer["ts_ns"]
        assert inner["ts_ns"] + inner["dur_ns"] \
            <= outer["ts_ns"] + outer["dur_ns"]

    def test_depth_recovers_after_exception(self):
        tel = TelemetryCollector()
        with pytest.raises(RuntimeError):
            with tel.span("fails"):
                raise RuntimeError("boom")
        with tel.span("after"):
            pass
        assert {r["name"]: r["depth"] for r in tel.spans} == \
            {"fails": 0, "after": 0}

    def test_ids_unique_and_roots_have_no_parent(self):
        tel = TelemetryCollector()
        with tel.span("a"):
            pass
        with tel.span("b"):
            pass
        ids = [r["id"] for r in tel.spans]
        assert len(set(ids)) == len(ids)
        assert all(r["parent"] is None for r in tel.spans)

    def test_parent_links_follow_nesting(self):
        tel = TelemetryCollector()
        with tel.span("outer"):
            with tel.span("inner"):
                with tel.span("leaf"):
                    pass
            with tel.span("sibling"):
                pass
        by_name = {r["name"]: r for r in tel.spans}
        assert by_name["outer"]["parent"] is None
        assert by_name["inner"]["parent"] == by_name["outer"]["id"]
        assert by_name["leaf"]["parent"] == by_name["inner"]["id"]
        assert by_name["sibling"]["parent"] == by_name["outer"]["id"]

    def test_parent_stack_recovers_after_exception(self):
        tel = TelemetryCollector()
        with tel.span("outer"):
            with pytest.raises(RuntimeError):
                with tel.span("fails"):
                    raise RuntimeError("boom")
            with tel.span("after"):
                pass
        by_name = {r["name"]: r for r in tel.spans}
        assert by_name["fails"]["parent"] == by_name["outer"]["id"]
        assert by_name["after"]["parent"] == by_name["outer"]["id"]

    def test_parent_stacks_are_per_thread(self):
        tel = TelemetryCollector()
        done = threading.Event()

        def worker():
            with tel.span("thread-span"):
                pass
            done.set()

        with tel.span("main-span"):
            t = threading.Thread(target=worker)
            t.start()
            done.wait(5)
            t.join()
        by_name = {r["name"]: r for r in tel.spans}
        # The other thread's span must NOT parent under main's open span.
        assert by_name["thread-span"]["parent"] is None
        assert by_name["main-span"]["parent"] is None

    def test_legacy_records_without_parent_still_merge(self):
        # Old JSONL exports carry no id/parent keys; merge must accept
        # them unchanged (the obs tree builder falls back to intervals).
        w = TelemetryCollector(origin="shard-0")
        with w.span("exec.shard", shard=0):
            pass
        payload = w.payload()
        for rec in payload["spans"]:
            rec.pop("id", None)
            rec.pop("parent", None)
        parent = TelemetryCollector(origin="main")
        parent.merge(payload)
        (span,) = parent.spans
        assert span["name"] == "exec.shard"
        assert "parent" not in span

    def test_events_sequence(self):
        tel = TelemetryCollector()
        tel.event("first", k=1)
        tel.event("second")
        assert [e["seq"] for e in tel.events] == [0, 1]
        assert tel.events[0]["labels"] == {"k": 1}


class TestNullCollector:
    def test_all_paths_are_noops(self):
        null = NullCollector()
        assert not null.enabled
        null.counter("c", x=1).inc(5)
        null.gauge("g").set(2)
        null.histogram("h", unit="ns").observe(3.0)
        null.event("e", a=1)
        with null.span("s", b=2):
            pass
        assert null.spans == []
        assert null.events == []
        assert null.deterministic_snapshot()["counters"] == ()

    def test_span_returns_shared_singleton(self):
        null = NullCollector()
        assert null.span("a") is NULL_SPAN
        assert null.span("b", x=1) is NULL_SPAN


class TestAmbientCollector:
    def test_default_is_null(self):
        assert isinstance(current_collector(), NullCollector)

    def test_use_collector_installs_and_restores(self):
        tel = TelemetryCollector()
        with use_collector(tel) as installed:
            assert installed is tel
            assert current_collector() is tel
        assert isinstance(current_collector(), NullCollector)

    def test_use_collector_nests(self):
        a, b = TelemetryCollector(), TelemetryCollector()
        with use_collector(a):
            with use_collector(b):
                assert current_collector() is b
            assert current_collector() is a

    def test_set_collector_process_default(self):
        tel = TelemetryCollector()
        previous = set_collector(tel)
        try:
            assert current_collector() is tel
        finally:
            set_collector(previous if not isinstance(previous, NullCollector)
                          else None)
        assert isinstance(current_collector(), NullCollector)

    def test_thread_local_isolation(self):
        tel = TelemetryCollector()
        seen = {}

        def probe():
            seen["other"] = current_collector()

        with use_collector(tel):
            t = threading.Thread(target=probe)
            t.start()
            t.join()
        assert isinstance(seen["other"], NullCollector)


class TestPayloadMerge:
    def test_payload_round_trips_through_merge(self):
        w = TelemetryCollector(origin="shard-3")
        w.counter("n", fn="f").inc(2)
        with w.span("exec.shard", shard=3):
            pass
        w.event("e", k="v")

        parent = TelemetryCollector(origin="main")
        parent.merge(w.payload())
        assert parent.counter("n", fn="f").value == 2
        (span,) = parent.spans
        assert span["origin"] == "shard-3"
        (event,) = parent.events
        assert event["origin"] == "shard-3"
        assert event["seq"] == 0

    def test_merge_none_is_noop(self):
        tel = TelemetryCollector()
        tel.merge(None)
        assert tel.events == []

    def test_merge_rejects_future_version(self):
        tel = TelemetryCollector()
        with pytest.raises(ValueError):
            tel.merge({"version": 99})

    def test_deterministic_snapshot_excludes_time_and_spans(self):
        tel = TelemetryCollector()
        tel.counter("kept").inc()
        tel.histogram("wall", unit="ns").observe(5.0)
        tel.gauge("elapsed", unit="s").set(1.25)
        with tel.span("span"):
            pass
        tel.event("e", a=1)
        snap = tel.deterministic_snapshot()
        assert snap["counters"] == (("kept", (), 1),)
        assert snap["histograms"] == ()
        assert snap["gauges"] == ()
        assert snap["events"] == (("e", (("a", 1),)),)
        assert "spans" not in snap
