"""Batched relay frame processing (`process_batch`) — bit-identity."""

import numpy as np
import pytest

from repro.channel import PropagationModel, fig1_home
from repro.core import FastForwardRelay
from repro.netsim.experiments import _block_rows, siso_gains_experiment
from repro.phy.params import WIFI_20MHZ
from repro.utils import make_rng


@pytest.fixture(scope="module")
def configured_relay():
    plan, ap, relay_pos = fig1_home()
    pm = PropagationModel(plan, rms_delay_spread_s=30e-9)
    used = WIFI_20MHZ.used_subcarriers()
    client = np.array([1.5, 6.3])

    def draw(a, b, r):
        return pm.siso_channel(a, b, WIFI_20MHZ.sample_period_s,
                               num_taps=4, rng=r).frequency_response(used, 64)

    rngs = [make_rng(i) for i in (1, 2, 3)]
    h_sd = draw(ap, client, rngs[0])
    h_sr = draw(ap, relay_pos, rngs[1])
    h_rd = draw(relay_pos, client, rngs[2])
    return FastForwardRelay().configure_siso_link(h_sd, h_sr, h_rd)


def _frames(rng, lengths):
    return [rng.normal(size=n) + 1j * rng.normal(size=n) for n in lengths]


class TestProcessBatch:
    def test_matches_serial_process(self, configured_relay):
        rng = make_rng(11)
        frames = _frames(rng, [900, 900, 1500, 900, 2100])
        serial = [configured_relay.process(f) for f in frames]
        batched = configured_relay.process_batch(frames)
        assert len(batched) == len(frames)
        for got, want in zip(batched, serial):
            assert np.array_equal(got, want)

    def test_matches_with_cfo(self, configured_relay):
        rng = make_rng(12)
        frames = _frames(rng, [1200, 1200, 800])
        serial = [configured_relay.process(
            f, sample_rate_hz=WIFI_20MHZ.bandwidth_hz, cfo_hz=25e3)
            for f in frames]
        batched = configured_relay.process_batch(
            frames, sample_rate_hz=WIFI_20MHZ.bandwidth_hz, cfo_hz=25e3)
        for got, want in zip(batched, serial):
            assert np.array_equal(got, want)

    def test_serial_after_batch_unchanged(self, configured_relay):
        # Batch processing must not corrupt the memoised chain state.
        rng = make_rng(13)
        frames = _frames(rng, [1000, 1000])
        before = configured_relay.process(frames[0])
        configured_relay.process_batch(frames)
        after = configured_relay.process(frames[0])
        assert np.array_equal(before, after)

    def test_empty_batch(self, configured_relay):
        assert configured_relay.process_batch([]) == []

    def test_rejects_non_1d_frames(self, configured_relay):
        with pytest.raises(ValueError):
            configured_relay.process_batch([np.zeros((2, 100),
                                                     dtype=complex)])


class TestClientBlocks:
    def test_blocked_experiment_bit_identical(self):
        base = siso_gains_experiment(num_clients=6, seed=3)
        blocked = siso_gains_experiment(num_clients=6, seed=3,
                                        block_size=4)
        for key in ("ap_only", "half_duplex", "fastforward"):
            assert np.array_equal(base[key], blocked[key])

    def test_env_block_size(self, monkeypatch):
        base = siso_gains_experiment(num_clients=4, seed=5)
        monkeypatch.setenv("REPRO_BLOCK", "3")
        blocked = siso_gains_experiment(num_clients=4, seed=5)
        for key in ("ap_only", "half_duplex", "fastforward"):
            assert np.array_equal(base[key], blocked[key])

    def test_block_rows_flattens_preserving_order(self):
        rows = _block_rows([[1, 2], [3], 4, [5, 6]])
        assert rows == [1, 2, 3, 4, 5, 6]
