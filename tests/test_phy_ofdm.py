"""OFDM modulation/demodulation and CP behaviour."""

import numpy as np
import pytest

from repro.phy import OfdmDemodulator, OfdmModulator, QPSK, WIFI_20MHZ
from repro.utils import make_rng, signal_power


@pytest.fixture
def mod():
    return OfdmModulator(WIFI_20MHZ)


@pytest.fixture
def demod():
    return OfdmDemodulator(WIFI_20MHZ)


def _random_symbols(rng, count=1):
    bits = rng.integers(0, 2, 2 * count * WIFI_20MHZ.num_data_subcarriers)
    return QPSK.modulate(bits)


class TestModulate:
    def test_symbol_length(self, mod):
        rng = make_rng(0)
        sym = mod.modulate_symbol(_random_symbols(rng))
        assert sym.size == WIFI_20MHZ.symbol_len

    def test_unit_power(self, mod):
        rng = make_rng(1)
        wave = mod.modulate(_random_symbols(rng, 20))
        assert signal_power(wave) == pytest.approx(1.0, rel=0.15)

    def test_cp_is_cyclic(self, mod):
        rng = make_rng(2)
        sym = mod.modulate_symbol(_random_symbols(rng))
        cp = sym[: WIFI_20MHZ.cp_len]
        tail = sym[-WIFI_20MHZ.cp_len:]
        assert np.allclose(cp, tail)

    def test_wrong_count_rejected(self, mod):
        with pytest.raises(ValueError):
            mod.modulate_symbol(np.ones(51, dtype=complex))

    def test_pilot_polarity_rotates(self, mod):
        p0 = mod.pilot_values(0)
        p1 = mod.pilot_values(1)
        # Same base pattern, possibly flipped overall sign across symbols.
        assert np.allclose(np.abs(p0), np.abs(p1))


class TestRoundtrip:
    def test_noiseless_roundtrip(self, mod, demod):
        rng = make_rng(3)
        data = _random_symbols(rng, 4)
        wave = mod.modulate(data)
        got = demod.demodulate(wave).ravel()
        assert np.allclose(got, data, atol=1e-9)

    def test_multipath_within_cp_no_isi(self, mod, demod):
        # The paper's Fig. 4 property: a reflection inside the CP only
        # scales/rotates each subcarrier, it does not corrupt symbols.
        rng = make_rng(4)
        data = _random_symbols(rng, 6)
        wave = mod.modulate(data)
        echo = 0.5 * np.roll(wave, 5)  # 5 samples < 8-sample CP
        received = wave + echo
        got = demod.demodulate(received)
        sent = data.reshape(6, -1)
        # Equalise with the known per-subcarrier channel.
        idx = np.asarray(WIFI_20MHZ.data_subcarriers, dtype=float)
        h = 1.0 + 0.5 * np.exp(-2j * np.pi * idx * 5 / 64)
        for i in range(6):
            assert np.allclose(got[i] / h, sent[i], atol=1e-6)

    def test_multipath_beyond_cp_causes_isi(self, mod, demod):
        rng = make_rng(5)
        data = _random_symbols(rng, 6)
        wave = mod.modulate(data)
        echo = 0.8 * np.roll(wave, 20)  # 20 samples > 8-sample CP
        got = demod.demodulate(wave + echo)
        sent = data.reshape(6, -1)
        idx = np.asarray(WIFI_20MHZ.data_subcarriers, dtype=float)
        h = 1.0 + 0.8 * np.exp(-2j * np.pi * idx * 20 / 64)
        err = np.abs(got[3] / h - sent[3]).max()
        assert err > 0.05  # residual ISI survives equalisation

    def test_demodulate_counts_whole_symbols(self, demod, mod):
        rng = make_rng(6)
        wave = mod.modulate(_random_symbols(rng, 3))
        with pytest.raises(ValueError):
            demod.demodulate(wave, num_symbols=4)


class TestGridInterface:
    def test_grid_roundtrip(self, mod, demod):
        rng = make_rng(7)
        grid = np.zeros(64, dtype=complex)
        used = [k % 64 for k in WIFI_20MHZ.used_subcarriers()]
        grid[used] = np.exp(2j * np.pi * rng.random(len(used)))
        sym = mod.modulate_grid(grid)
        back = demod.demodulate_symbol(sym)
        assert np.allclose(back, grid, atol=1e-9)

    def test_grid_size_check(self, mod):
        with pytest.raises(ValueError):
            mod.modulate_grid(np.ones(32, dtype=complex))
