"""Association control plane: candidate table, policies, backups."""

import numpy as np
import pytest

from repro.fleet import (
    District,
    DistrictConfig,
    HashedLoadBalancingPolicy,
    POLICIES,
    StrongestRssPolicy,
    ThroughputPredictivePolicy,
    build_candidate_table,
    make_policy,
)
from repro.fleet.association import stable_client_hash


@pytest.fixture(scope="module")
def district():
    return District(DistrictConfig(rows=3, cols=3, clients_per_home=4,
                                   seed=11))


@pytest.fixture(scope="module")
def table(district):
    return build_candidate_table(district)


class TestCandidateTable:
    def test_shapes_align(self, district, table):
        assert table.direct_rate_mbps.shape == (district.num_clients,)
        assert len(table.candidates) == district.num_clients
        for c in range(district.num_clients):
            n = len(table.candidates[c])
            assert len(table.access_snr_db[c]) == n
            assert len(table.ff_rate_mbps[c]) == n

    def test_relaying_never_hurts(self, table):
        # Combined rate sums direct + relayed copies in linear SNR, so
        # it can never fall below the direct-only rate.
        for c, rates in enumerate(table.ff_rate_mbps):
            for rate in rates:
                assert rate >= table.direct_rate_mbps[c] - 1e-9

    def test_rate_for_falls_back_to_direct(self, district, table):
        foreign = district.num_relays + 5
        assert table.rate_for(0, foreign) == \
            pytest.approx(float(table.direct_rate_mbps[0]))

    def test_deterministic(self, district):
        again = build_candidate_table(district)
        assert again.candidates == \
            build_candidate_table(district).candidates
        assert np.array_equal(again.direct_rate_mbps,
                              build_candidate_table(
                                  district).direct_rate_mbps)


class TestStableHash:
    def test_process_stable_values(self):
        # Frozen reference values: builtin hash() is per-process salted
        # and must never replace this derivation.
        assert stable_client_hash(0) == stable_client_hash(0)
        assert stable_client_hash(0) != stable_client_hash(1)
        assert stable_client_hash(3, salt=1) != stable_client_hash(3)


class TestPolicies:
    def test_registry_and_factory(self):
        assert set(POLICIES) == {"strongest-rss", "hashed-lb",
                                 "throughput-predictive"}
        assert isinstance(make_policy("strongest-rss"), StrongestRssPolicy)
        with pytest.raises(ValueError, match="unknown association policy"):
            make_policy("round-robin")

    def test_cli_choices_stay_in_sync(self):
        from repro.cli import FLEET_POLICIES

        assert sorted(FLEET_POLICIES) == sorted(POLICIES)

    @pytest.mark.parametrize("name", sorted(POLICIES))
    def test_plan_invariants(self, name, district, table):
        plan = make_policy(name).assign(district, table)
        assert plan.policy == name
        assert len(plan.clients) == district.num_clients
        assert int(plan.relay_load.sum()) == district.num_clients
        for p in plan.clients:
            assert p.primary in table.candidates[p.client]
            assert p.backup != p.primary
            if p.backup >= 0:
                assert p.backup in table.candidates[p.client]
                assert p.backup_rate_mbps >= p.direct_rate_mbps - 1e-9

    @pytest.mark.parametrize("name", sorted(POLICIES))
    def test_plan_deterministic(self, name, district, table):
        a = make_policy(name).assign(district, table)
        b = make_policy(name).assign(district, table)
        assert a.clients == b.clients
        assert np.array_equal(a.relay_load, b.relay_load)

    def test_strongest_rss_picks_best_access(self, district, table):
        plan = StrongestRssPolicy().assign(district, table)
        for p in plan.clients:
            cands = table.candidates[p.client]
            access = table.access_snr_db[p.client]
            assert access[cands.index(p.primary)] == max(access)

    def test_hashed_lb_respects_capacity(self, district, table):
        plan = HashedLoadBalancingPolicy(capacity=5).assign(district, table)
        # Capacity can only be exceeded when every candidate of a
        # client is full; with capacity 5 >= mean load (4) the spill
        # rule keeps everyone under it here.
        assert int(plan.relay_load.max()) <= 5

    def test_hashed_lb_salt_changes_assignment(self, district, table):
        # A wide RSS margin makes every candidate equal-cost, so the
        # hash (and therefore the salt) decides the bucket.
        a = HashedLoadBalancingPolicy(salt=0, rss_margin_db=60.0).assign(
            district, table)
        b = HashedLoadBalancingPolicy(salt=99, rss_margin_db=60.0).assign(
            district, table)
        assert any(pa.primary != pb.primary
                   for pa, pb in zip(a.clients, b.clients))

    def test_hashed_lb_balances_better_than_rss(self, district, table):
        rss = StrongestRssPolicy().assign(district, table)
        lb = HashedLoadBalancingPolicy().assign(district, table)
        assert int(lb.relay_load.max()) <= int(rss.relay_load.max())

    def test_throughput_predictive_discounts_load(self, district, table):
        plan = ThroughputPredictivePolicy().assign(district, table)
        # Greedy rate/(1+load) cannot pile everyone on one relay.
        assert int(plan.relay_load.max()) < district.num_clients

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            HashedLoadBalancingPolicy(capacity=0)

    def test_clients_of(self, district, table):
        plan = StrongestRssPolicy().assign(district, table)
        for relay in range(district.num_relays):
            members = plan.clients_of(relay)
            assert len(members) == int(plan.relay_load[relay])
            for c in members:
                assert plan.clients[c].primary == relay
