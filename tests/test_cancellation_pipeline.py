"""The full cancellation chain: the §3.3 108-110 dB result."""

import numpy as np
import pytest

from repro.cancellation import CancellationPipeline
from repro.utils import make_rng


@pytest.fixture(scope="module")
def tuned_pipeline():
    pipe = CancellationPipeline(rng=1)
    pipe.tune()
    return pipe


class TestMeasurement:
    def test_total_cancellation_matches_paper(self, tuned_pipeline):
        # §3.3: "consistently achieves between 108-110dB of cancellation".
        report = tuned_pipeline.measure()
        assert 106.0 <= report.total_db <= 111.0

    def test_residual_at_noise_floor(self, tuned_pipeline):
        report = tuned_pipeline.measure()
        assert report.residual_power_dbm == pytest.approx(-90.0, abs=3.0)

    def test_both_stages_contribute(self, tuned_pipeline):
        report = tuned_pipeline.measure()
        assert report.analog_db > 25.0
        assert report.digital_db > 30.0

    def test_report_renders(self, tuned_pipeline):
        text = str(tuned_pipeline.measure())
        assert "dB total" in text

    def test_across_seeds(self):
        totals = []
        for seed in (2, 3, 4):
            pipe = CancellationPipeline(rng=seed)
            pipe.tune()
            totals.append(pipe.measure().total_db)
        assert min(totals) > 104.0


class TestOnlineTuning:
    def test_online_converges_like_offline(self):
        pipe = CancellationPipeline(rng=7)
        pipe.tune(online=True, iterations=6)
        report = pipe.measure()
        assert report.total_db > 104.0


class TestCancelApi:
    def test_requires_tuning(self):
        pipe = CancellationPipeline(rng=5)
        with pytest.raises(RuntimeError):
            pipe.cancel(np.ones(256, dtype=complex), np.ones(256, dtype=complex))

    def test_external_signal_survives_cancellation(self, tuned_pipeline):
        # The point of the exercise: after removing the SI, the incoming
        # source signal is left intact.
        pipe = tuned_pipeline
        rng = make_rng(9)
        n = 32768
        tx = pipe.make_traffic(n, 20.0, rng=rng)
        external = pipe.make_traffic(n, -60.0, rng=rng)
        rx = pipe.rx_with_si(tx, external_signal=external, rng=rng)
        cleaned = pipe.cancel(rx, tx)
        skip = pipe.digital.num_taps
        out_power = np.mean(np.abs(cleaned[skip:]) ** 2)
        ext_power = np.mean(np.abs(external[skip:]) ** 2)
        # Residual = external signal + noise floor (+ small leftovers).
        assert 10 * np.log10(out_power) == pytest.approx(
            10 * np.log10(ext_power), abs=2.0)

    def test_oversampling_validated(self):
        with pytest.raises(ValueError):
            CancellationPipeline(oversample=0)

    def test_converter_delay_samples(self, tuned_pipeline):
        # 50 ns at 160 Msps = 8 samples.
        assert tuned_pipeline.converter_delay_samples == 8
