"""Baseline schemes: blind repeater and half-duplex mesh router."""

import numpy as np
import pytest

from repro.core import (
    AmplifyForwardRelay,
    FastForwardRelay,
    HalfDuplexMeshRouter,
    half_duplex_throughput_mbps,
)
from repro.utils import make_rng


class TestAmplifyForward:
    def test_configuration_is_blind(self):
        af = AmplifyForwardRelay()
        assert not af.config.use_cnf
        assert not af.config.noise_safe

    def test_amplifies_to_cancellation_limit(self):
        rng = make_rng(0)
        h = 1e-4 * (rng.standard_normal(8) + 1j * rng.standard_normal(8))
        af = AmplifyForwardRelay().configure_siso_link(h, h, h)
        assert af.amplification_db == pytest.approx(
            af.config.cancellation_db - af.config.loop_margin_db)

    def test_hurts_strong_clients(self):
        # §5.5: blind amplification drowns good direct links in noise.
        rng = make_rng(1)
        strong = 3e-3 * np.exp(2j * np.pi * rng.random(8))  # ~20 dB direct
        weak_relay_paths = 1e-4 * np.exp(2j * np.pi * rng.random(8))
        af = AmplifyForwardRelay().configure_siso_link(
            strong, weak_relay_paths, weak_relay_paths)
        from repro.phy.rates import effective_snr_db

        direct_snr = effective_snr_db(
            10 * np.log10(np.abs(strong) ** 2 * 100.0 / 1e-9))
        with_af = effective_snr_db(af.destination_snr_db())
        assert with_af < direct_snr - 3.0

    def test_is_a_fastforward_subclass(self):
        assert issubclass(AmplifyForwardRelay, FastForwardRelay)


class TestHalfDuplex:
    def test_harmonic_composition(self):
        # Two 60 Mbps hops time-share to 30 Mbps.
        assert half_duplex_throughput_mbps(0.0, 60.0, 60.0) == pytest.approx(30.0)

    def test_smart_ap_prefers_direct(self):
        assert half_duplex_throughput_mbps(50.0, 60.0, 60.0) == 50.0

    def test_relay_rescues_dead_spot(self):
        assert half_duplex_throughput_mbps(0.0, 40.0, 20.0) == pytest.approx(
            1.0 / (1.0 / 40.0 + 1.0 / 20.0))

    def test_dead_hop_means_direct_only(self):
        assert half_duplex_throughput_mbps(10.0, 0.0, 60.0) == 10.0
        assert half_duplex_throughput_mbps(10.0, 60.0, 0.0) == 10.0

    def test_never_worse_than_direct(self):
        rng = make_rng(2)
        for _ in range(100):
            d, r1, r2 = rng.uniform(0, 120, 3)
            assert half_duplex_throughput_mbps(d, r1, r2) >= d

    def test_two_hop_bounds(self):
        rng = make_rng(3)
        for _ in range(100):
            r1, r2 = rng.uniform(1, 120, 2)
            two_hop = half_duplex_throughput_mbps(0.0, r1, r2)
            # Strictly below the bottleneck hop; equal hops halve.
            assert two_hop < min(r1, r2)
            assert two_hop >= min(r1, r2) / 2.0 - 1e-9

    def test_router_object_wraps_function(self):
        router = HalfDuplexMeshRouter()
        assert router.throughput_mbps(10.0, 60.0, 60.0) == \
            half_duplex_throughput_mbps(10.0, 60.0, 60.0)

    def test_antenna_validation(self):
        with pytest.raises(ValueError):
            HalfDuplexMeshRouter(num_antennas=0)
