"""Quantised channel feedback (§4.2)."""

import numpy as np
import pytest

from repro.ident import (
    encode_channel_feedback,
    feedback_quantization_ablation,
    quantize_channel,
)
from repro.utils import make_rng


def _h(rng, n=56):
    return rng.standard_normal(n) + 1j * rng.standard_normal(n)


class TestEncodeDecode:
    def test_phase_error_bounded_by_bits(self):
        rng = make_rng(0)
        h = _h(rng)
        for bits in (2, 4, 6):
            q = quantize_channel(h, phase_bits=bits)
            err = np.angle(q * np.conj(h))
            assert np.abs(err).max() <= np.pi / (2 ** bits) + 1e-9

    def test_magnitude_within_step(self):
        rng = make_rng(1)
        h = _h(rng)
        q = quantize_channel(h, phase_bits=8, magnitude_bits=5)
        ratio_db = 20 * np.log10(np.abs(q) / np.abs(h))
        step = 30.0 / 2 ** 5
        # Tones inside the 30 dB window reconstruct within one step.
        inside = 20 * np.log10(np.abs(h) / np.abs(h).max()) > -29.0
        assert np.abs(ratio_db[inside]).max() <= step + 1e-6

    def test_total_bits_accounting(self):
        rng = make_rng(2)
        report = encode_channel_feedback(_h(rng), phase_bits=4,
                                         magnitude_bits=3)
        assert report.total_bits == 56 * 7

    def test_more_bits_better(self):
        rng = make_rng(3)
        h = _h(rng)
        coarse = np.mean(np.abs(quantize_channel(h, phase_bits=1) - h) ** 2)
        fine = np.mean(np.abs(quantize_channel(h, phase_bits=6) - h) ** 2)
        assert fine < coarse

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            encode_channel_feedback(np.ones(4, dtype=complex), phase_bits=0)

    def test_zero_channel_safe(self):
        q = quantize_channel(np.zeros(8, dtype=complex))
        assert np.all(np.isfinite(q))


class TestAblation:
    def test_gain_monotone_in_bits(self):
        data = feedback_quantization_ablation(phase_bits_sweep=(1, 4),
                                              num_clients=8, seed=4)
        assert data[1] <= data[4] + 0.2
        assert data[4] <= data["unquantized"] + 0.3

    def test_four_bits_nearly_lossless(self):
        data = feedback_quantization_ablation(phase_bits_sweep=(4,),
                                              num_clients=8, seed=4)
        assert abs(data[4] - data["unquantized"]) < 0.5
