"""Batched PHY fast path vs per-packet references — bit-identity.

The batched paths (`OfdmModulator.modulate`, `demodulate_symbols`,
`ViterbiDecoder.decode`/`decode_batch`, the MMSE multi-RHS solve,
`Receiver.receive_batch`) are optimisations, not approximations: every
test here asserts ``array_equal`` (exact bits), never ``allclose``.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy import Receiver, Transmitter, TxConfig, WIFI_20MHZ
from repro.phy.coding.scrambler import Scrambler
from repro.phy.coding.viterbi import ViterbiDecoder
from repro.phy.frame import crc32
from repro.phy.ofdm import OfdmDemodulator, OfdmModulator
from repro.phy.transceiver import MimoReceiver
from repro.utils import awgn_like, make_rng


class TestViterbiBatched:
    @given(seed=st.integers(0, 2**32 - 1), n_info=st.integers(1, 80),
           terminated=st.booleans())
    @settings(max_examples=30, deadline=None)
    def test_decode_matches_reference(self, seed, n_info, terminated):
        rng = np.random.default_rng(seed)
        llrs = rng.normal(size=2 * (n_info + 6))
        dec = ViterbiDecoder()
        fast = dec.decode(llrs, terminated=terminated)
        ref = dec.decode_reference(llrs, terminated=terminated)
        assert np.array_equal(fast, ref)

    @given(seed=st.integers(0, 2**32 - 1),
           lengths=st.lists(st.integers(1, 60), min_size=1, max_size=6),
           terminated=st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_decode_batch_matches_per_packet(self, seed, lengths,
                                             terminated):
        rng = np.random.default_rng(seed)
        llr_list = [rng.normal(size=2 * (n + 6)) for n in lengths]
        dec = ViterbiDecoder()
        batch = dec.decode_batch(llr_list, terminated=terminated)
        assert len(batch) == len(llr_list)
        for out, llrs in zip(batch, llr_list):
            assert np.array_equal(out,
                                  dec.decode(llrs, terminated=terminated))

    def test_decode_batch_mixed_lengths_grouped(self):
        # Equal-length packets share one stacked trellis pass; different
        # lengths fall into different groups — order must be preserved.
        rng = np.random.default_rng(7)
        lengths = [10, 40, 10, 25, 40, 10]
        llr_list = [rng.normal(size=2 * (n + 6)) for n in lengths]
        dec = ViterbiDecoder()
        batch = dec.decode_batch(llr_list)
        for out, llrs in zip(batch, llr_list):
            assert np.array_equal(out, dec.decode(llrs))


class TestOfdmBatched:
    @given(seed=st.integers(0, 2**32 - 1), n_syms=st.integers(1, 6),
           start=st.integers(0, 200))
    @settings(max_examples=25, deadline=None)
    def test_modulate_matches_per_symbol(self, seed, n_syms, start):
        rng = np.random.default_rng(seed)
        mod = OfdmModulator(WIFI_20MHZ)
        n_data = WIFI_20MHZ.num_data_subcarriers
        syms = rng.normal(size=n_syms * n_data) \
            + 1j * rng.normal(size=n_syms * n_data)
        batched = mod.modulate(syms, start_symbol_index=start)
        per_symbol = np.concatenate([
            mod.modulate_symbol(syms[i * n_data:(i + 1) * n_data],
                                symbol_index=start + i)
            for i in range(n_syms)])
        assert np.array_equal(batched, per_symbol)

    @given(seed=st.integers(0, 2**32 - 1), n_syms=st.integers(1, 6),
           extra=st.integers(0, 79))
    @settings(max_examples=25, deadline=None)
    def test_demodulate_symbols_matches_per_symbol(self, seed, n_syms,
                                                   extra):
        rng = np.random.default_rng(seed)
        demod = OfdmDemodulator(WIFI_20MHZ)
        sym_len = WIFI_20MHZ.symbol_len
        n = n_syms * sym_len + extra
        samples = rng.normal(size=n) + 1j * rng.normal(size=n)
        batched = demod.demodulate_symbols(samples, n_syms)
        for i in range(n_syms):
            one = demod.demodulate_symbol(
                samples[i * sym_len:(i + 1) * sym_len])
            assert np.array_equal(batched[i], one)

    def test_pilot_values_many_matches_scalar(self):
        mod = OfdmModulator(WIFI_20MHZ)
        indices = np.arange(0, 300, 7)
        many = mod.pilot_values_many(indices)
        for row, idx in zip(many, indices):
            assert np.array_equal(row, mod.pilot_values(int(idx)))


class TestMimoEqualizerBatched:
    @given(seed=st.integers(0, 2**32 - 1), n_syms=st.integers(1, 5),
           shape=st.sampled_from([(2, 2), (3, 2), (2, 1), (4, 3)]))
    @settings(max_examples=20, deadline=None)
    def test_matches_reference_loop(self, seed, n_syms, shape):
        num_rx, num_streams = shape
        rng = np.random.default_rng(seed)
        rx = MimoReceiver(num_streams=num_streams)
        p = WIFI_20MHZ
        n = n_syms * p.symbol_len
        body = rng.normal(size=(num_rx, n)) \
            + 1j * rng.normal(size=(num_rx, n))
        n_used = p.num_used_subcarriers
        h_used = rng.normal(size=(n_used, num_rx, num_streams)) \
            + 1j * rng.normal(size=(n_used, num_rx, num_streams))
        noise_var = float(10.0 ** rng.uniform(-4, 0))
        fast = rx._equalized_streams(body, h_used, noise_var, n_syms)
        ref = rx._equalized_streams_reference(body, h_used, noise_var,
                                              n_syms)
        assert np.array_equal(fast, ref)


def _noisy_wave(tx, rng, num_bits, snr_db, prefix=130):
    bits = rng.integers(0, 2, num_bits)
    wave = tx.transmit(bits)[0]
    wave = np.concatenate([np.zeros(prefix, dtype=complex), wave,
                           np.zeros(40, dtype=complex)])
    return bits, wave + awgn_like(wave, 10.0 ** (-snr_db / 10.0), rng)


def _assert_same_result(got, want):
    assert got.success == want.success
    assert got.failure_reason == want.failure_reason
    if want.payload_bits is None:
        assert got.payload_bits is None
    else:
        assert np.array_equal(got.payload_bits, want.payload_bits)
    # NaN-aware: failed detections report the SNR as nan on both paths.
    assert np.array_equal(np.asarray(got.snr_estimate_db, dtype=float),
                          np.asarray(want.snr_estimate_db, dtype=float),
                          equal_nan=True)


class TestReceiveBatch:
    @given(seed=st.integers(0, 2**32 - 1),
           mcs_list=st.lists(st.sampled_from([0, 2, 4, 7]),
                             min_size=1, max_size=3),
           snr_db=st.sampled_from([8.0, 18.0, 30.0]))
    @settings(max_examples=8, deadline=None)
    def test_matches_per_packet_receive(self, seed, mcs_list, snr_db):
        rng = make_rng(seed)
        waves = []
        for mcs in mcs_list:
            tx = Transmitter(TxConfig(mcs_index=mcs))
            _, wave = _noisy_wave(tx, rng, 160, snr_db)
            waves.append(wave)
        rx = Receiver()
        batched = rx.receive_batch(waves)
        for got, wave in zip(batched, waves):
            _assert_same_result(got, rx.receive(wave))

    def test_handles_undetectable_and_truncated_streams(self):
        rng = make_rng(99)
        tx = Transmitter(TxConfig(mcs_index=2))
        _, good = _noisy_wave(tx, rng, 200, 30.0)
        garbage = (rng.normal(size=600) + 1j * rng.normal(size=600)) * 0.01
        truncated = good[: good.size // 3]
        streams = [good, garbage, truncated, good]
        rx = Receiver()
        batched = rx.receive_batch(streams)
        assert len(batched) == len(streams)
        for got, wave in zip(batched, streams):
            _assert_same_result(got, rx.receive(wave))

    def test_empty_batch(self):
        assert Receiver().receive_batch([]) == []


class TestCodingReferences:
    """The tuned helpers vs straightforward bit-level references."""

    @given(seed=st.integers(0, 2**32 - 1), n_bits=st.integers(0, 120))
    @settings(max_examples=30, deadline=None)
    def test_crc32_matches_bitwise_reference(self, seed, n_bits):
        bits = np.random.default_rng(seed).integers(0, 2, n_bits)
        reg = 0xFFFFFFFF
        for b in bits:
            reg ^= int(b) << 31
            reg = ((reg << 1) ^ 0x04C11DB7) & 0xFFFFFFFF \
                if reg & 0x80000000 else (reg << 1) & 0xFFFFFFFF
        reg ^= 0xFFFFFFFF
        want = np.array([(reg >> (31 - i)) & 1 for i in range(32)],
                        dtype=int)
        assert np.array_equal(crc32(bits), want)

    @given(seed=st.integers(1, 0x7F), length=st.integers(0, 400))
    @settings(max_examples=30, deadline=None)
    def test_scrambler_sequence_matches_lfsr(self, seed, length):
        state = seed
        want = np.empty(length, dtype=int)
        for i in range(length):
            out = ((state >> 6) ^ (state >> 3)) & 1
            state = ((state << 1) | out) & 0x7F
            want[i] = out
        assert np.array_equal(Scrambler(seed=seed).sequence(length), want)
