"""The WiFi-vs-LTE CP headroom story (§1, §3.1, §3.2).

The paper designs for the worst case — WiFi's 400 ns CP — and argues
the techniques then transfer to LTE (4.69 us CP) for free: even the
buffered non-causal cancellation of prior work fits inside LTE's CP.
"""

import numpy as np

from repro.channel import PropagationModel, fig1_home
from repro.core import FastForwardRelay, LatencyBudget, RelayConfig
from repro.phy.params import LTE_10MHZ, WIFI_20MHZ
from repro.phy.rates import effective_snr_db
from repro.utils import make_rng


def _triple(params, seed=0):
    plan, ap, relay_pos = fig1_home()
    pm = PropagationModel(plan, frequency_hz=params.carrier_hz,
                          rms_delay_spread_s=30e-9)
    client = np.array([1.5, 6.3])
    used = params.used_subcarriers()
    rngs = [make_rng(seed + i) for i in range(3)]
    draw = lambda a, b, r: pm.siso_channel(
        a, b, params.sample_period_s, num_taps=3,
        rng=r).frequency_response(used, params.fft_size)
    return (draw(ap, client, rngs[0]), draw(ap, relay_pos, rngs[1]),
            draw(relay_pos, client, rngs[2]))


class TestLteHeadroom:
    def test_buffered_relay_fits_lte_not_wifi(self):
        buffered = LatencyBudget().non_causal_digital(350e-9)
        assert not buffered.fits_cp(WIFI_20MHZ)
        assert buffered.fits_cp(LTE_10MHZ)

    def test_buffered_relay_keeps_gain_on_lte(self):
        # A relay built with prior-work (buffered) cancellation: its
        # ~463 ns latency destroys the WiFi gain but leaves LTE intact.
        buffered = LatencyBudget().non_causal_digital(350e-9)

        def snr_with(params):
            h = _triple(params, seed=3)
            cfg = RelayConfig(params=params, latency=buffered,
                              use_decomposition=False)
            relay = FastForwardRelay(cfg).configure_siso_link(*h)
            return (effective_snr_db(relay.destination_snr_db()),
                    effective_snr_db(10 * np.log10(
                          np.abs(h[0]) ** 2 * 100.0 / 1e-9 + 1e-30)))

        wifi_relay, wifi_direct = snr_with(WIFI_20MHZ)
        lte_relay, lte_direct = snr_with(LTE_10MHZ)
        assert lte_relay > lte_direct + 10.0         # full constructive gain
        # The blown WiFi CP caps the relayed copy at the ISI ceiling
        # (~5 dB here); LTE keeps an order of magnitude more.
        assert (wifi_relay - wifi_direct) < (lte_relay - lte_direct) - 8.0

    def test_fast_relay_works_on_both(self):
        fast = LatencyBudget()
        for params in (WIFI_20MHZ, LTE_10MHZ):
            h = _triple(params, seed=4)
            cfg = RelayConfig(params=params, latency=fast,
                              use_decomposition=False)
            relay = FastForwardRelay(cfg).configure_siso_link(*h)
            direct = effective_snr_db(10 * np.log10(
                np.abs(h[0]) ** 2 * 100.0 / 1e-9 + 1e-30))
            boosted = effective_snr_db(relay.destination_snr_db())
            assert boosted > direct + 5.0, params.name

    def test_lte_tolerates_long_multipath(self):
        # A 2 us delay spread (impossible for WiFi's CP) sits comfortably
        # inside LTE's 4.69 us CP.
        cfg = RelayConfig(params=LTE_10MHZ, channel_delay_spread_s=2e-6)
        h = _triple(LTE_10MHZ, seed=5)
        relay = FastForwardRelay(cfg)
        relay.config.use_decomposition = False
        relay.configure_siso_link(*h)
        assert relay._isi_fraction(0.0) == 1.0

        wifi_cfg = RelayConfig(params=WIFI_20MHZ, channel_delay_spread_s=2e-6)
        hw = _triple(WIFI_20MHZ, seed=5)
        wifi_relay = FastForwardRelay(wifi_cfg)
        wifi_relay.config.use_decomposition = False
        wifi_relay.configure_siso_link(*hw)
        assert wifi_relay._isi_fraction(0.0) < 1.0
