"""Sample-level link harness and the ablation runners."""

import numpy as np
import pytest

from repro.channel import PropagationModel, fig1_home
from repro.core import RelayConfig
from repro.netsim import SampleLevelLink
from repro.netsim.ablations import (
    causality_ablation,
    decomposition_ablation,
    oversample_ablation,
    stale_channel_ablation,
)
from repro.phy.params import WIFI_20MHZ
from repro.utils import make_rng


@pytest.fixture(scope="module")
def edge_link():
    plan, ap, relay_pos = fig1_home()
    pm = PropagationModel(plan, rms_delay_spread_s=30e-9)
    client = np.array([1.5, 6.3])

    def chan(a, b, seed):
        return pm.siso_channel(a, b, WIFI_20MHZ.sample_period_s,
                               num_taps=3, rng=make_rng(seed))

    return SampleLevelLink(chan(ap, client, 11), chan(ap, relay_pos, 12),
                           chan(relay_pos, client, 13), mcs_index=1)


class TestSampleLevelLink:
    def test_direct_link_fails_at_edge(self, edge_link):
        rng = make_rng(0)
        result = edge_link.run(rng.integers(0, 2, 200), rng)
        assert not result.success

    def test_relay_rescues(self, edge_link):
        rng = make_rng(1)
        relay = edge_link.build_relay()
        result = edge_link.run(rng.integers(0, 2, 200), rng, relay=relay)
        assert result.success, result.failure_reason
        assert result.bit_errors == 0

    def test_slow_relay_degrades(self, edge_link):
        rng = make_rng(2)
        relay = edge_link.build_relay()
        fast = edge_link.run(rng.integers(0, 2, 200), make_rng(20),
                             relay=relay)
        slow = edge_link.run(rng.integers(0, 2, 200), make_rng(20),
                             relay=relay, extra_relay_delay_s=600e-9)
        # Past the CP the combination suffers ISI: either decoding fails
        # outright or the measured SNR collapses.
        assert (not slow.success) or (
            slow.snr_estimate_db < fast.snr_estimate_db - 2.0)

    def test_per_with_and_without_relay(self, edge_link):
        rng = make_rng(3)
        relay = edge_link.build_relay()
        per_direct = edge_link.packet_error_rate(5, rng)
        per_relay = edge_link.packet_error_rate(5, rng, relay=relay)
        assert per_relay < per_direct

    def test_custom_relay_config(self, edge_link):
        relay = edge_link.build_relay(RelayConfig(cancellation_db=100.0))
        assert relay.config.cancellation_db == 100.0


class TestAblations:
    def test_decomposition_ordering(self):
        data = decomposition_ablation(num_clients=8, seed=5)
        assert data["ideal"] >= data["digital+analog"] - 0.2
        assert data["digital+analog"] > data["no_cnf"] - 0.5

    def test_causality_tradeoff(self):
        data = causality_ablation(seed=5)
        assert data["causal"]["fits_wifi_cp"]
        assert not data["non_causal"]["fits_wifi_cp"]
        assert (data["causal"]["latency_ns"]
                < data["non_causal"]["latency_ns"] - 300.0)

    def test_oversampling_cliff(self):
        data = oversample_ablation(factors=(1, 8), seed=5)
        assert data[1] < data[8] - 4.0

    def test_staleness_decay(self):
        data = stale_channel_ablation(ages=(0, 8), num_clients=8, seed=5)
        assert data["snr_loss_db"][0] == 0.0
        assert data["snr_loss_db"][-1] > 0.0


class TestChannelEvolve:
    def test_rho_one_is_identity(self):
        from repro.channel import MultipathChannel

        chan = MultipathChannel(np.array([1.0, 0.3j]))
        evolved = chan.evolve(1.0, make_rng(0))
        assert np.allclose(evolved.taps, chan.taps)

    def test_rho_zero_is_fresh_draw(self):
        from repro.channel import MultipathChannel

        chan = MultipathChannel(np.array([1.0 + 0j]))
        draws = [chan.evolve(0.0, make_rng(s)).taps[0] for s in range(200)]
        # Mean power preserved, realisations decorrelated from original.
        assert np.mean(np.abs(draws) ** 2) == pytest.approx(1.0, rel=0.2)
        corr = np.mean(draws)  # should not cluster at the original 1.0
        assert abs(corr) < 0.3

    def test_power_profile_preserved(self):
        from repro.channel import MultipathChannel

        rng = make_rng(1)
        chan = MultipathChannel(np.array([1.0, 0.5, 0.1], dtype=complex))
        powers = np.mean([np.abs(chan.evolve(0.7, rng).taps) ** 2
                          for _ in range(2000)], axis=0)
        assert np.allclose(powers, np.abs(chan.taps) ** 2, rtol=0.15)

    def test_mimo_evolve_shape_and_delay(self):
        from repro.channel import MimoLink
        from repro.channel.multipath import exponential_pdp

        link = MimoLink.draw(2, 2, exponential_pdp(3, 30e-9, 50e-9),
                             rng=make_rng(2))
        link = MimoLink(link.taps, extra_delay_samples=4)
        evolved = link.evolve(0.9, make_rng(3))
        assert evolved.taps.shape == link.taps.shape
        assert evolved.extra_delay_samples == 4

    def test_invalid_rho(self):
        from repro.channel import MultipathChannel

        with pytest.raises(ValueError):
            MultipathChannel(np.array([1.0])).evolve(1.5, make_rng(0))
