"""The §4.2 channel-acquisition flow, over the air.

No genie channels: the AP sounds with a real packet, the client
estimates its channel with the stock receiver and feeds back a
*quantised* report, the relay measures its own links from real
preambles — and the constructive filter built from those estimates is
evaluated against the true channels.
"""

import numpy as np
import pytest

from repro.channel import PropagationModel, fig1_home
from repro.core import FastForwardRelay, RelayConfig
from repro.ident import encode_channel_feedback
from repro.phy import Preamble, Receiver, Transmitter, TxConfig, WIFI_20MHZ
from repro.phy.channel_est import estimate_channel_ls
from repro.phy.rates import effective_snr_db
from repro.utils import awgn_like, make_rng


@pytest.fixture(scope="module")
def scene():
    plan, ap, relay_pos = fig1_home()
    pm = PropagationModel(plan, rms_delay_spread_s=30e-9)
    client = np.array([6.2, 4.6])

    def chan(a, b, seed):
        return pm.siso_channel(a, b, WIFI_20MHZ.sample_period_s,
                               num_taps=3, rng=make_rng(seed))

    return {
        "sd": chan(ap, client, 21),
        "sr": chan(ap, relay_pos, 22),
        "rd": chan(relay_pos, client, 23),
    }


def _sound_link(chan, rng, tx_scale=10.0, noise_power=1e-9):
    """Transmit a real packet over ``chan``; return the receiver's
    channel estimate (with whatever timing ramp detection leaves)."""
    tx = Transmitter(TxConfig(mcs_index=0))
    wave = tx.transmit(rng.integers(0, 2, 64))[0] * tx_scale
    rx = chan.apply_trimmed(wave)
    rx = np.concatenate([np.zeros(90, dtype=complex), rx])
    rx = rx + awgn_like(rx, noise_power, rng)
    result = Receiver(detection_threshold=0.6).receive(rx)
    assert result.success, result.failure_reason
    return result.channel / tx_scale


def _relay_measures(chan, rng, tx_scale=10.0, noise_power=1e-9):
    """The relay estimates a link from a raw preamble (no decoding)."""
    pre = Preamble(WIFI_20MHZ)
    wave = np.concatenate([pre.stf(), pre.ltf()]) * tx_scale
    rx = chan.apply_trimmed(wave)
    rx = rx + awgn_like(rx, noise_power, rng)
    est = estimate_channel_ls(rx[pre.stf_samples:], WIFI_20MHZ)
    return est / tx_scale


class TestSoundingFlow:
    def test_estimated_channels_drive_the_relay(self, scene):
        rng = make_rng(0)
        used = WIFI_20MHZ.used_subcarriers()

        # 1. the client estimates AP->client from a sounding packet and
        #    feeds it back QUANTISED (the compressed report).
        h_sd_est = _sound_link(scene["sd"], rng)
        report = encode_channel_feedback(h_sd_est, phase_bits=4,
                                         magnitude_bits=3)
        h_sd_fed_back = report.decode()

        # 2. the relay measures its own two links from real preambles.
        h_sr_est = _relay_measures(scene["sr"], rng)
        h_rd_est = _relay_measures(scene["rd"], rng)

        # 3. every estimate carries its estimator's own timing ramp;
        #    canonicalise them to a common (peak-at-zero) reference
        #    before cross-channel phase alignment.
        from repro.phy.channel_est import canonicalize_channel_timing

        h_sd_fed_back = canonicalize_channel_timing(h_sd_fed_back)
        h_sr_est = canonicalize_channel_timing(h_sr_est)
        h_rd_est = canonicalize_channel_timing(h_rd_est)

        # 4. configure the relay from estimates; evaluate on truth.
        relay = FastForwardRelay(RelayConfig())
        relay.configure_siso_link(h_sd_fed_back, h_sr_est, h_rd_est)
        truth = [scene[k].frequency_response(used, 64)
                 for k in ("sd", "sr", "rd")]
        relay._h_sd, relay._h_sr, relay._h_rd = truth
        snr_est_driven = effective_snr_db(relay.destination_snr_db())

        # Genie reference: the relay configured from the true channels.
        genie = FastForwardRelay(RelayConfig())
        genie.configure_siso_link(*truth)
        snr_genie = effective_snr_db(genie.destination_snr_db())

        direct = effective_snr_db(10 * np.log10(
            np.abs(truth[0]) ** 2 * 100.0 / 1e-9 + 1e-30))

        # The estimate-driven relay must deliver most of the genie gain
        # (residual losses: CSI quantisation, estimation noise, and the
        # per-channel peak-anchoring ambiguity of the common reference).
        assert snr_est_driven > direct + 1.0
        assert snr_est_driven > snr_genie - 2.5

    def test_feedback_report_size_is_practical(self, scene):
        rng = make_rng(1)
        h_sd_est = _sound_link(scene["sd"], rng)
        report = encode_channel_feedback(h_sd_est, phase_bits=4,
                                         magnitude_bits=3)
        # 56 tones * 7 bits = 392 bits: one small control frame.
        assert report.total_bits <= 400

    def test_relay_preamble_estimates_accurate(self, scene):
        rng = make_rng(2)
        used = WIFI_20MHZ.used_subcarriers()
        est = _relay_measures(scene["sr"], rng)
        truth = scene["sr"].frequency_response(used, 64)
        # Compare magnitudes (timing ramps cancel in the CNF product
        # only when consistent; magnitude accuracy is what we check).
        err = np.abs(np.abs(est) - np.abs(truth)) / np.abs(truth).max()
        assert err.max() < 0.2
