"""Shared-memory dispatch, chunk autotuning and exec.dispatch telemetry."""

import numpy as np
import pytest

from repro.exec import (
    AUTO_CHUNK_TARGET_S,
    ShmArena,
    ShmSlice,
    Task,
    run_sweep,
    task_fn,
)
from repro.exec import shm as shm_mod
from repro.exec.executor import _auto_chunk_size
from repro.telemetry.collector import TelemetryCollector, use_collector
from repro.telemetry.validate import KNOWN_METRIC_PREFIXES


@task_fn("shm-test.norm", version="1")
def _norm_task(vec, scale, rng):
    return float(np.dot(vec, vec)) * scale + rng.standard_normal()


@task_fn("shm-test.mutate", version="1")
def _mutate_task(vec, rng):
    vec[0] = 0.0
    return float(vec[0])


def _tasks(n=8, size=2000):
    vec = np.arange(size, dtype=float)
    return [Task("shm-test.norm", {"vec": vec, "scale": i}, seed=i)
            for i in range(n)]


class TestArena:
    def test_pack_hydrate_roundtrip(self):
        rng = np.random.default_rng(0)
        tree = {"a": rng.normal(size=300),
                "nested": ({"b": rng.normal(size=(20, 30))}, 5),
                "small": np.arange(3, dtype=float),
                "other": "text"}
        arena, packed = shm_mod.pack([tree])
        assert arena is not None
        try:
            out = packed[0]
            assert isinstance(out["a"], ShmSlice)
            assert isinstance(out["nested"][0]["b"], ShmSlice)
            # Below the size floor — stays a plain pickled array.
            assert isinstance(out["small"], np.ndarray)
            assert out["other"] == "text"
            hydrated = shm_mod.hydrate(out)
            assert np.array_equal(hydrated["a"], tree["a"])
            assert np.array_equal(hydrated["nested"][0]["b"],
                                  tree["nested"][0]["b"])
            assert not hydrated["a"].flags.writeable
        finally:
            shm_mod.detach_all()
            arena.dispose()

    def test_identical_arrays_share_one_slice(self):
        vec = np.arange(1000, dtype=float)
        arena, packed = shm_mod.pack([{"v": vec}, {"v": vec}, {"v": vec}])
        try:
            slices = {p["v"] for p in packed}
            assert len(slices) == 1
            assert arena.num_arrays == 1
            assert arena.nbytes == vec.nbytes
        finally:
            arena.dispose()

    def test_nothing_to_pack(self):
        arena, packed = shm_mod.pack([{"x": 1}, {"y": "s"}])
        assert arena is None
        assert packed == [{"x": 1}, {"y": "s"}]

    def test_dispose_is_idempotent(self):
        arena = ShmArena([np.arange(100, dtype=float)])
        arena.dispose()
        arena.dispose()

    def test_min_bytes_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "10000")
        arena, _ = shm_mod.pack([{"v": np.arange(1000, dtype=float)}])
        assert arena is None
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "8")
        arena, packed = shm_mod.pack([{"v": np.arange(4, dtype=float)}])
        try:
            assert isinstance(packed[0]["v"], ShmSlice)
        finally:
            arena.dispose()

    def test_enabled_env_gate(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHM", raising=False)
        assert shm_mod.enabled()
        monkeypatch.setenv("REPRO_SHM", "0")
        assert not shm_mod.enabled()


class TestProcessDispatch:
    def test_results_bit_identical_to_serial(self):
        tasks = _tasks()
        serial = run_sweep(tasks, jobs=1, backend="serial", cache=False)
        par = run_sweep(tasks, jobs=2, backend="process", cache=False)
        assert list(serial) == list(par)
        assert par.stats.shm_bytes > 0

    def test_shm_disabled_still_identical(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "0")
        tasks = _tasks()
        serial = run_sweep(tasks, jobs=1, backend="serial", cache=False)
        par = run_sweep(tasks, jobs=2, backend="process", cache=False)
        assert list(serial) == list(par)
        assert par.stats.shm_bytes == 0

    def test_read_only_view_rejects_mutation(self):
        vec = np.arange(1000, dtype=float)
        tasks = [Task("shm-test.mutate", {"vec": vec}, seed=0),
                 Task("shm-test.mutate", {"vec": vec}, seed=1)]
        with pytest.raises(Exception):
            run_sweep(tasks, jobs=2, backend="process", cache=False,
                      chunk_size=1)
        # The parent's copy is untouched — no shard wrote through.
        assert np.array_equal(vec, np.arange(1000, dtype=float))


class TestAutoChunk:
    def test_auto_chunk_size_targets_budget(self):
        per_task = AUTO_CHUNK_TARGET_S / 10
        assert _auto_chunk_size(per_task, 100, 2) == 10
        # Slow tasks: one per chunk.
        assert _auto_chunk_size(10.0, 100, 2) == 1
        # Fast tasks: clamped so both workers get work.
        assert _auto_chunk_size(1e-9, 100, 2) == 50

    def test_auto_results_identical(self):
        tasks = _tasks(10)
        serial = run_sweep(tasks, jobs=1, backend="serial", cache=False)
        auto = run_sweep(tasks, jobs=2, backend="thread", cache=False,
                         chunk_size="auto")
        assert list(serial) == list(auto)
        assert auto.stats.chunk_size is not None
        assert auto.stats.chunks >= 2  # probe + at least one pool chunk


class TestDispatchTelemetry:
    def test_overhead_recorded_per_shard(self):
        tasks = _tasks()
        col = TelemetryCollector(origin="test")
        with use_collector(col):
            run_sweep(tasks, jobs=2, backend="process", cache=False,
                      chunk_size=4)
        payload = col.payload()
        hists = {h["name"]: h for h in payload["histograms"]}
        gauges = {g["name"]: g for g in payload["gauges"]}
        unpack = [h for h in payload["histograms"]
                  if h["name"] == "exec.dispatch.unpack_ns"]
        # One unpack observation per shard, labelled with its shard id.
        assert sorted(h["labels"]["shard"] for h in unpack) == [0, 1]
        assert all(h["unit"] == "ns" for h in unpack)
        assert hists["exec.dispatch.pack_ns"]["unit"] == "ns"
        assert hists["exec.dispatch.payload_bytes"]["count"] == 2
        assert gauges["exec.dispatch.shm_bytes"]["value"] > 0
        assert gauges["exec.dispatch.chunk_size"]["value"] == 4
        assert gauges["exec.dispatch.shm_arrays"]["value"] == 1

    def test_excluded_from_deterministic_snapshot(self):
        tasks = _tasks()
        serial_col = TelemetryCollector(origin="a")
        with use_collector(serial_col):
            run_sweep(tasks, jobs=1, backend="serial", cache=False)
        par_col = TelemetryCollector(origin="b")
        with use_collector(par_col):
            run_sweep(tasks, jobs=2, backend="process", cache=False)
        assert serial_col.deterministic_snapshot() == \
            par_col.deterministic_snapshot()

    def test_dispatch_prefix_registered(self):
        assert "exec.dispatch." in KNOWN_METRIC_PREFIXES


class TestOrphanReaping:
    def test_segment_names_carry_pid(self):
        import os

        name = shm_mod._segment_name()
        assert name.startswith("repro-shm-")
        assert int(name.split("-")[2]) == os.getpid()

    def test_age_gate_spares_young_segments(self):
        from repro.exec.chaos import plant_orphan_segment

        import os

        young = plant_orphan_segment(age_s=0.0)
        old = plant_orphan_segment(age_s=3600.0)
        try:
            reaped = shm_mod.reap_orphans(max_age_s=60.0)
            assert reaped >= 1
            assert os.path.exists(os.path.join(shm_mod.SHM_DIR, young))
            assert not os.path.exists(os.path.join(shm_mod.SHM_DIR, old))
        finally:
            for name in (young, old):
                try:
                    os.unlink(os.path.join(shm_mod.SHM_DIR, name))
                except OSError:
                    pass

    def test_live_owner_never_reaped(self):
        from repro.exec.chaos import plant_orphan_segment

        import os

        # Attributed to *this* process: alive, so never reclaimed no
        # matter how old the file looks.
        name = plant_orphan_segment(pid=os.getpid(), age_s=3600.0)
        try:
            shm_mod.reap_orphans(max_age_s=0.0)
            assert os.path.exists(os.path.join(shm_mod.SHM_DIR, name))
        finally:
            os.unlink(os.path.join(shm_mod.SHM_DIR, name))

    def test_foreign_names_untouched(self, tmp_path):
        # Unparseable segment names are never unlinked.
        import os

        path = os.path.join(shm_mod.SHM_DIR, "repro-shm-notapid-x")
        with open(path, "wb") as fh:
            fh.write(b"\x00")
        stamp = 0.0
        os.utime(path, (stamp, stamp))
        try:
            shm_mod.reap_orphans(max_age_s=0.0)
            assert os.path.exists(path)
        finally:
            os.unlink(path)

    def test_killed_run_reaped_by_next_sweep(self, tmp_path):
        """SIGKILL a sweep mid-dispatch; the next run sweeps its litter."""
        import os
        import signal
        import subprocess
        import sys
        import time

        marker = tmp_path / "segment-name"
        # The child creates an arena, reports the segment name, then
        # hangs until it is SIGKILLed — its atexit hooks never run.
        # It also unregisters the segment from its resource tracker:
        # the tracker is a separate process that survives the SIGKILL
        # and would otherwise unlink the "leak" at a random moment,
        # racing this test (a genuinely hard-killed run — OOM killer,
        # node loss — takes its tracker with it).
        child = subprocess.Popen(
            [sys.executable, "-c", (
                "import sys, time\n"
                "import numpy as np\n"
                "from multiprocessing import resource_tracker\n"
                "from repro.exec.shm import ShmArena\n"
                "arena = ShmArena([np.arange(512.0)])\n"
                "resource_tracker.unregister(arena._shm._name,"
                " 'shared_memory')\n"
                f"open({str(marker)!r}, 'w').write(arena.name)\n"
                "time.sleep(60)\n")],
            env={**os.environ,
                 "PYTHONPATH": os.environ.get("PYTHONPATH", "src")})
        try:
            deadline = time.monotonic() + 20
            while not marker.exists() and time.monotonic() < deadline:
                time.sleep(0.05)
            assert marker.exists(), "child never created its arena"
            name = marker.read_text().strip()
            path = os.path.join(shm_mod.SHM_DIR, name)
            assert os.path.exists(path)
        finally:
            child.send_signal(signal.SIGKILL)
            child.wait()
        # The kill left the segment behind (no atexit ran) ...
        assert os.path.exists(path)
        # ... and the next sweep's start-of-run reaper reclaims it once
        # it is old enough.
        stamp = time.time() - 3600.0
        os.utime(path, (stamp, stamp))
        out = run_sweep([Task("shm-test.norm",
                              {"vec": np.arange(8.0), "scale": 1},
                              seed=0)], jobs=1, cache=False)
        assert out.stats.orphans_reclaimed >= 1
        assert not os.path.exists(path)
