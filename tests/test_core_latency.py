"""Latency budget and ISI penalty (§3.2, §5.4)."""

import pytest

from repro.core import LatencyBudget, isi_effective_snr, isi_useful_fraction
from repro.phy.params import LTE_10MHZ, WIFI_20MHZ


class TestBudget:
    def test_prototype_total_under_125ns(self):
        # §4.3: "overall extra delay introduced by baseband process is
        # less than 100ns" plus small analog terms.
        budget = LatencyBudget()
        assert budget.total_s() <= 125e-9

    def test_causal_digital_cancellation_is_free(self):
        assert LatencyBudget().digital_cancellation_s == 0.0

    def test_fits_wifi_cp(self):
        assert LatencyBudget().fits_cp(WIFI_20MHZ)

    def test_non_causal_baseline_blows_wifi_cp(self):
        # Prior work's ~350 ns buffered cancellation cannot fit within
        # 400 ns once anything else is added (§3.3).
        buffered = LatencyBudget().non_causal_digital(350e-9)
        assert not buffered.fits_cp(WIFI_20MHZ)

    def test_non_causal_fits_lte_cp(self):
        # LTE's 4.69 us CP is forgiving — the motivation for saying the
        # techniques "will work for LTE too".
        buffered = LatencyBudget().non_causal_digital(350e-9)
        assert buffered.fits_cp(LTE_10MHZ)

    def test_extra_buffering_knob(self):
        base = LatencyBudget()
        slower = base.with_extra_buffering(300e-9)
        assert slower.total_s() == pytest.approx(base.total_s() + 300e-9)
        assert not slower.fits_cp(WIFI_20MHZ)

    def test_propagation_slack_consumes_budget(self):
        budget = LatencyBudget()
        slack = WIFI_20MHZ.cp_duration_s - budget.total_s()
        assert budget.fits_cp(WIFI_20MHZ, propagation_slack_s=slack * 0.9)
        assert not budget.fits_cp(WIFI_20MHZ, propagation_slack_s=slack * 1.1)


class TestUsefulFraction:
    def test_inside_cp_is_lossless(self):
        assert isi_useful_fraction(0.0) == 1.0
        assert isi_useful_fraction(-5e-9) == 1.0

    def test_full_window_excess_loses_all(self):
        excess = WIFI_20MHZ.fft_size * WIFI_20MHZ.sample_period_s
        assert isi_useful_fraction(excess) == 0.0

    def test_monotone_decreasing(self):
        fractions = [isi_useful_fraction(e * 1e-9) for e in (0, 50, 150, 400)]
        assert all(a >= b for a, b in zip(fractions, fractions[1:]))

    def test_small_excess_small_loss(self):
        # 50 ns excess = 1 sample of 64: ~3% power loss.
        rho = isi_useful_fraction(50e-9)
        assert rho == pytest.approx(((64 - 1) / 64) ** 2)


class TestEffectiveSnr:
    def test_no_excess_coherent_combining(self):
        snr = isi_effective_snr(1.0, 1.0, 0.01, 0.0, coherent=True)
        assert snr == pytest.approx(400.0)  # (1+1)^2 / 0.01

    def test_late_copy_becomes_interference(self):
        early = isi_effective_snr(1.0, 10.0, 0.01, 0.0)
        late = isi_effective_snr(1.0, 10.0, 0.01, 200e-9)
        assert late < early / 3.0

    def test_interference_limited_ceiling(self):
        # With a huge relayed signal past the CP, SINR is set by the
        # useful/interference ratio, independent of power.
        a = isi_effective_snr(0.0, 1e3, 1e-9, 150e-9)
        b = isi_effective_snr(0.0, 1e6, 1e-9, 150e-9)
        assert a == pytest.approx(b, rel=0.01)

    def test_coherence_lost_past_cp(self):
        coh = isi_effective_snr(1.0, 1.0, 1e-3, 100e-9, coherent=True)
        non = isi_effective_snr(1.0, 1.0, 1e-3, 100e-9, coherent=False)
        assert coh == pytest.approx(non)

    def test_noise_must_be_positive(self):
        with pytest.raises(ValueError):
            isi_effective_snr(1.0, 1.0, 0.0, 0.0)
