"""The two-stream MIMO receive chain."""

import numpy as np
import pytest

from repro.channel import MimoLink
from repro.channel.multipath import exponential_pdp
from repro.phy import MimoReceiver, Transmitter, TxConfig, WIFI_20MHZ
from repro.utils import awgn_like, make_rng


def _mimo_roundtrip(rng, mcs=2, snr_db=28.0, channel=None, num_bits=600,
                    prefix=100):
    cfg = TxConfig(mcs_index=mcs, num_streams=2)
    bits = rng.integers(0, 2, num_bits)
    waves = Transmitter(cfg).transmit(bits)
    if channel is None:
        h = (rng.standard_normal((2, 2)) + 1j * rng.standard_normal((2, 2)))
        rx = h @ waves
    else:
        rx = channel.apply(waves)[:, : waves.shape[1]]
    rx = np.concatenate([np.zeros((2, prefix), dtype=complex), rx,
                         np.zeros((2, 40), dtype=complex)], axis=1)
    rx = rx + awgn_like(rx, 10.0 ** (-snr_db / 10.0), rng)
    return bits, MimoReceiver().receive(rx)


class TestMimoRoundtrip:
    @pytest.mark.parametrize("mcs", [0, 2, 4])
    def test_decodes_flat_channel(self, mcs):
        rng = make_rng(30 + mcs)
        bits, result = _mimo_roundtrip(rng, mcs=mcs)
        assert result.success, result.failure_reason
        assert np.array_equal(result.payload_bits, bits)

    def test_multipath_within_cp(self):
        rng = make_rng(40)
        pdp = exponential_pdp(3, 30e-9, WIFI_20MHZ.sample_period_s)
        link = MimoLink.draw(2, 2, pdp, rng=rng)
        bits, result = _mimo_roundtrip(rng, mcs=1, channel=link,
                                       snr_db=30.0)
        assert result.success, result.failure_reason
        assert np.array_equal(result.payload_bits, bits)

    def test_channel_estimate_shape(self):
        rng = make_rng(41)
        _, result = _mimo_roundtrip(rng, mcs=0)
        assert result.channel.shape == (56, 2, 2)

    def test_rank_one_channel_fails(self):
        rng = make_rng(42)
        keyhole = np.outer(rng.standard_normal(2) + 1j * rng.standard_normal(2),
                           rng.standard_normal(2) + 1j * rng.standard_normal(2))

        class _Flat:
            def apply(self, waves):
                return keyhole @ waves

        bits, result = _mimo_roundtrip(rng, mcs=4, channel=_Flat(),
                                       snr_db=30.0)
        # Two streams cannot be separated through a rank-1 channel.
        assert not result.success

    def test_fails_cleanly_at_low_snr(self):
        rng = make_rng(43)
        _, result = _mimo_roundtrip(rng, mcs=6, snr_db=8.0)
        assert not result.success
        assert result.failure_reason != ""

    def test_noise_estimate_tracks_truth(self):
        rng = make_rng(44)
        _, result = _mimo_roundtrip(rng, mcs=0, snr_db=25.0)
        assert result.success
        # The noise estimate from the LTF bodies (relative to the
        # channel-scaled preamble) should be within a few dB of truth.
        assert 17.0 < result.snr_estimate_db < 40.0

    def test_stream_validation(self):
        with pytest.raises(ValueError):
            MimoReceiver(num_streams=0)
