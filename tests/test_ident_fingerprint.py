"""Uplink STF channel fingerprinting (§6.1, Fig. 21)."""

import numpy as np
import pytest

from repro.ident import (
    AGGRESSIVE_THRESHOLD,
    ChannelFingerprinter,
    PASSIVE_THRESHOLD,
)
from repro.phy.params import WIFI_20MHZ
from repro.phy.preamble import stf_time_symbol
from repro.utils import make_rng


def _enrolled(rng, num_clients=4, threshold=AGGRESSIVE_THRESHOLD):
    finger = ChannelFingerprinter(WIFI_20MHZ, threshold=threshold)
    used = WIFI_20MHZ.used_subcarriers()
    channels = {}
    for c in range(num_clients):
        h = (rng.standard_normal(len(used))
             + 1j * rng.standard_normal(len(used)))
        h /= np.sqrt(np.mean(np.abs(h) ** 2))
        channels[c] = h
        finger.enroll(c, h, used)
    return finger, channels


class TestEnrollment:
    def test_channel_size_validated(self):
        finger = ChannelFingerprinter(WIFI_20MHZ)
        with pytest.raises(ValueError):
            finger.enroll(0, np.ones(10, dtype=complex))

    def test_identify_requires_enrollment(self):
        finger = ChannelFingerprinter(WIFI_20MHZ)
        with pytest.raises(RuntimeError):
            finger.identify(stf_time_symbol(WIFI_20MHZ))


class TestIdentification:
    def test_clean_measurement_identified(self):
        rng = make_rng(0)
        finger, channels = _enrolled(rng)
        for c in channels:
            decision = finger.identify(_stf_through_channel(channels[c]))
            assert decision.client_id == c

    def test_phase_rotation_ignored(self):
        rng = make_rng(1)
        finger, channels = _enrolled(rng)
        stf_rx = _stf_through_channel(channels[2]) * np.exp(1j * 2.2)
        decision = finger.identify(stf_rx)
        assert decision.client_id == 2

    def test_gain_scaling_ignored(self):
        rng = make_rng(2)
        finger, channels = _enrolled(rng)
        decision = finger.identify(0.01 * _stf_through_channel(channels[1]))
        assert decision.client_id == 1

    def test_unknown_channel_rejected(self):
        rng = make_rng(3)
        finger, channels = _enrolled(rng)
        stranger = (rng.standard_normal(56) + 1j * rng.standard_normal(56))
        decision = finger.identify(_stf_through_channel(stranger))
        # With the aggressive threshold a stranger should be rejected,
        # not mistaken for an enrolled client (false-negative over
        # false-positive, §6).
        assert decision.client_id is None

    def test_aggressive_stricter_than_passive(self):
        assert AGGRESSIVE_THRESHOLD < PASSIVE_THRESHOLD

    def test_decision_reports_margin(self):
        rng = make_rng(4)
        finger, channels = _enrolled(rng)
        decision = finger.identify(_stf_through_channel(channels[0]))
        assert decision.distance <= decision.runner_up_distance


def _stf_through_channel(h_used):
    """One STF period transformed by a per-tone channel."""
    params = WIFI_20MHZ
    stf = stf_time_symbol(params)
    # Apply the channel on the STF's occupied tones via a 16-point FFT
    # equivalence: build from full-grid filtering for accuracy.
    from repro.phy.preamble import stf_tone_indices

    used = list(params.used_subcarriers())
    tones = stf_tone_indices(params)
    n = params.fft_size
    # Construct the STF's full-grid spectrum, apply channel, return one
    # period (the STF spectrum lives on every 4th tone).
    grid = np.fft.fft(np.tile(stf, 4))  # spectrum on the 64-grid
    h_full = np.ones(n, dtype=complex)
    for tone in tones:
        h_full[tone % n] = h_used[used.index(tone)]
    filtered = np.fft.ifft(grid * h_full)
    return filtered[:16]


class TestErrorRates:
    def test_fig21_style_rates(self):
        # Aggressive threshold: ~zero false positives, a few percent
        # false negatives under noise + drift.
        rng = make_rng(5)
        finger, channels = _enrolled(rng)
        fp = fn = total = 0
        for c, h in channels.items():
            for _ in range(60):
                noisy = h + 0.15 * (rng.standard_normal(56)
                                    + 1j * rng.standard_normal(56))
                decision = finger.identify(_stf_through_channel(noisy))
                total += 1
                if decision.client_id is None:
                    fn += 1
                elif decision.client_id != c:
                    fp += 1
        assert fp / total < 0.02
        assert fn / total < 0.5
