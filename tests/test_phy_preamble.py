"""Preamble structure: STF periodicity, LTF repetition, HT-LTF slots."""

import numpy as np
import pytest

from repro.phy import Preamble, WIFI_20MHZ, ltf_frequency_symbol, stf_time_symbol


class TestStf:
    def test_period_length(self):
        assert stf_time_symbol(WIFI_20MHZ).size == 16

    def test_field_is_periodic(self):
        pre = Preamble(WIFI_20MHZ)
        stf = pre.stf()
        assert stf.size == 160
        assert np.allclose(stf[:16], stf[16:32])
        assert np.allclose(stf[:16], stf[144:])

    def test_nonzero_power(self):
        stf = stf_time_symbol(WIFI_20MHZ)
        assert np.mean(np.abs(stf) ** 2) > 0.1


class TestLtf:
    def test_ltf_grid_is_bpsk_on_used_tones(self):
        grid = ltf_frequency_symbol(WIFI_20MHZ)
        used = [k % 64 for k in WIFI_20MHZ.used_subcarriers()]
        values = grid[used]
        assert np.allclose(np.abs(values), 1.0)
        unused = [k for k in range(64) if k not in used]
        assert np.allclose(grid[unused], 0.0)

    def test_field_repeats_body(self):
        pre = Preamble(WIFI_20MHZ)
        ltf = pre.ltf()
        n = WIFI_20MHZ.fft_size
        cp = 2 * WIFI_20MHZ.cp_len
        assert ltf.size == cp + 2 * n
        assert np.allclose(ltf[cp : cp + n], ltf[cp + n :])

    def test_double_cp_is_cyclic(self):
        pre = Preamble(WIFI_20MHZ)
        ltf = pre.ltf()
        cp = 2 * WIFI_20MHZ.cp_len
        assert np.allclose(ltf[:cp], ltf[-cp:])


class TestHtLtf:
    def test_one_slot_per_stream(self):
        pre = Preamble(WIFI_20MHZ, num_streams=2)
        slot0 = pre.ht_ltf(0)
        slot1 = pre.ht_ltf(1)
        sym = WIFI_20MHZ.symbol_len
        assert slot0.size == 2 * sym
        # Stream 0 silent in slot 1 and vice versa.
        assert np.allclose(slot0[sym:], 0.0)
        assert np.allclose(slot1[:sym], 0.0)

    def test_stream_index_range(self):
        pre = Preamble(WIFI_20MHZ, num_streams=2)
        with pytest.raises(ValueError):
            pre.ht_ltf(2)

    def test_total_length_accounting(self):
        pre = Preamble(WIFI_20MHZ, num_streams=2)
        assert pre.total_samples == (pre.stf_samples + pre.ltf_samples
                                     + pre.ht_ltf_samples)

    def test_per_stream_waveforms_shape(self):
        pre = Preamble(WIFI_20MHZ, num_streams=2)
        waves = pre.per_stream_waveforms()
        assert waves.shape == (2, pre.total_samples)
        # Legacy fields ride on stream 0 only.
        legacy_len = pre.stf_samples + pre.ltf_samples
        assert np.allclose(waves[1, :legacy_len], 0.0)
