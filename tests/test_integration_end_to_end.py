"""Sample-level integration: real PPDUs through the full system.

These tests wire the actual pieces together — transmitter waveforms,
multipath channels, the relay's sample-level processing, the cancellation
pipeline, and the stock receiver — and verify the paper's end-to-end
claims on real IQ streams rather than link-budget math.
"""

import numpy as np
import pytest

from repro.cancellation import CancellationPipeline
from repro.channel import fig1_home, PropagationModel
from repro.core import FastForwardRelay, RelayConfig
from repro.ident import SignatureBook, SignatureDetector
from repro.phy import Receiver, Transmitter, TxConfig, WIFI_20MHZ
from repro.utils import add_signals, awgn_like, make_rng


@pytest.fixture(scope="module")
def edge_scene():
    """An edge client in the Fig. 1 home, with drawn channels."""
    plan, ap, relay_pos = fig1_home()
    pm = PropagationModel(plan, rms_delay_spread_s=30e-9)
    client = np.array([1.5, 6.3])
    used = WIFI_20MHZ.used_subcarriers()

    def chan(a, b, seed):
        return pm.siso_channel(a, b, WIFI_20MHZ.sample_period_s,
                               num_taps=3, rng=make_rng(seed))

    return {
        "sd": chan(ap, client, 11),
        "sr": chan(ap, relay_pos, 12),
        "rd": chan(relay_pos, client, 13),
        "used": used,
    }


def _fresh_relay(scene):
    relay = FastForwardRelay(RelayConfig())
    relay.configure_siso_link(
        scene["sd"].frequency_response(scene["used"], 64),
        scene["sr"].frequency_response(scene["used"], 64),
        scene["rd"].frequency_response(scene["used"], 64))
    return relay


class TestConstructiveRelayEndToEnd:
    def _run(self, scene, rng, with_relay, mcs=0, payload=240):
        tx = Transmitter(TxConfig(mcs_index=mcs, tx_power_dbm=20.0))
        bits = rng.integers(0, 2, payload)
        wave = tx.transmit(bits)[0] * 10.0  # 20 dBm in sqrt-mW units
        direct = scene["sd"].apply_trimmed(wave)
        parts = [direct]
        if with_relay:
            relay = _fresh_relay(scene)
            at_relay = scene["sr"].apply_trimmed(wave)
            relayed = relay.process(at_relay)
            # Processing latency -> whole-sample delay at 20 Msps.
            lat = int(round(relay.latency_s() / WIFI_20MHZ.sample_period_s))
            relayed = np.concatenate([np.zeros(lat, dtype=complex), relayed])
            parts.append(scene["rd"].apply_trimmed(relayed))
        combined = add_signals(*parts)
        combined = np.concatenate([np.zeros(120, dtype=complex), combined])
        noise = awgn_like(combined, 1e-9, rng)  # -90 dBm floor
        result = Receiver(detection_threshold=0.7).receive(combined + noise)
        return bits, result

    def test_edge_client_fails_without_relay(self, edge_scene):
        rng = make_rng(0)
        _, result = self._run(edge_scene, rng, with_relay=False, mcs=1)
        assert not result.success

    def test_edge_client_decodes_with_relay(self, edge_scene):
        rng = make_rng(1)
        bits, result = self._run(edge_scene, rng, with_relay=True, mcs=1)
        assert result.success, result.failure_reason
        assert np.array_equal(result.payload_bits, bits)

    def test_relay_raises_measured_snr(self, edge_scene):
        rng = make_rng(2)
        _, without = self._run(edge_scene, rng, with_relay=False, mcs=0)
        _, with_relay = self._run(edge_scene, rng, with_relay=True, mcs=0)
        if without.success and with_relay.success:
            assert with_relay.snr_estimate_db > without.snr_estimate_db + 3.0
        else:
            assert with_relay.success

    def test_receiver_is_oblivious(self, edge_scene):
        # The client runs a bone-stock receiver; the relayed energy just
        # appears inside its channel estimate.
        rng = make_rng(3)
        bits, result = self._run(edge_scene, rng, with_relay=True, mcs=0)
        assert result.success
        assert result.channel is not None  # plain LS estimate, no extras


class TestRelayThroughCancellation:
    def test_relay_rx_cleaned_while_transmitting(self):
        # The relay receives the AP while its own transmission leaks in;
        # after cancellation the AP's packet is decodable at the relay.
        rng = make_rng(4)
        pipe = CancellationPipeline(rng=5)
        pipe.tune()
        fs = pipe.sample_rate_hz
        os_factor = pipe.oversample

        tx_cfg = TxConfig(mcs_index=0)
        bits = rng.integers(0, 2, 120)
        wave20 = Transmitter(tx_cfg).transmit(bits)[0]
        # Upsample the 20 Msps PPDU to the cancellation rate.
        spec = np.fft.fft(wave20)
        up = np.zeros(wave20.size * os_factor, dtype=complex)
        half = wave20.size // 2
        up[:half] = spec[:half] * os_factor
        up[-half:] = spec[-half:] * os_factor
        incoming = np.fft.ifft(up) * 10 ** (-55.0 / 20.0)  # -55 dBm-ish

        relay_tx = pipe.make_traffic(incoming.size, 10.0, rng=rng)
        rx = pipe.rx_with_si(relay_tx, external_signal=incoming, rng=rng)
        cleaned = pipe.cancel(rx, relay_tx)

        # Downsample back to 20 Msps and decode.
        spec = np.fft.fft(cleaned)
        down = np.concatenate([spec[:half], spec[-half:]]) / os_factor
        stream20 = np.fft.ifft(down)
        result = Receiver(detection_threshold=0.6).receive(
            np.concatenate([np.zeros(50, dtype=complex), stream20]))
        assert result.success, result.failure_reason
        assert np.array_equal(result.payload_bits, bits)

    def test_without_cancellation_packet_is_lost(self):
        rng = make_rng(6)
        pipe = CancellationPipeline(rng=7)
        pipe.tune()
        incoming = pipe.make_traffic(32768, -55.0, rng=rng)
        relay_tx = pipe.make_traffic(32768, 10.0, rng=rng)
        rx = pipe.rx_with_si(relay_tx, external_signal=incoming, rng=rng)
        # Raw RX is dominated by self-interference, tens of dB above the
        # incoming signal.
        si_to_signal = 10 * np.log10(np.mean(np.abs(rx) ** 2)
                                     / np.mean(np.abs(incoming) ** 2))
        assert si_to_signal > 20.0


class TestSignatureToFilterPath:
    def test_downlink_identification_flow(self, edge_scene):
        # AP prepends Bob's signature; the relay identifies it in-stream
        # and would arm Bob's CNF filter before the preamble ends.
        rng = make_rng(8)
        book = SignatureBook(seed=3)
        for c in ("alice", "bob"):
            book.signature(c)
        tx = Transmitter(TxConfig(mcs_index=0))
        wave = tx.transmit(rng.integers(0, 2, 64),
                           signature=book.prepend_field("bob"))[0]
        at_relay = edge_scene["sr"].apply_trimmed(wave) * 1e3  # strong link
        at_relay += awgn_like(at_relay, 1e-9, rng)
        detector = SignatureDetector(book, threshold=0.5)
        hit = detector.identify(at_relay, ["alice", "bob"])
        assert hit is not None
        client, start, _ = hit
        assert client == "bob"
        # Identification completes before the preamble starts.
        assert start + 2 * book.length <= 161
