"""Packet detection and CFO estimation."""

import numpy as np
import pytest

from repro.phy import PacketDetector, Preamble, WIFI_20MHZ, apply_cfo, estimate_cfo
from repro.phy.sync import fine_cfo_from_ltf, locate_ltf
from repro.utils import awgn_like, make_rng


def _packet_with_noise(rng, prefix=200, cfo_hz=0.0, snr_db=20.0):
    pre = Preamble(WIFI_20MHZ)
    wave = np.concatenate([pre.stf(), pre.ltf()])
    if cfo_hz:
        wave = apply_cfo(wave, cfo_hz, WIFI_20MHZ.bandwidth_hz)
    sig = np.concatenate([np.zeros(prefix, dtype=complex), wave,
                          np.zeros(100, dtype=complex)])
    noise_power = 10.0 ** (-snr_db / 10.0)
    return sig + awgn_like(sig, noise_power, rng)


class TestApplyCfo:
    def test_zero_cfo_is_identity(self):
        x = np.ones(16, dtype=complex)
        assert np.allclose(apply_cfo(x, 0.0, 20e6), x)

    def test_rotation_rate(self):
        x = np.ones(21, dtype=complex)
        out = apply_cfo(x, 1e6, 20e6)  # 1/20 cycle per sample
        assert np.angle(out[20] / out[0]) == pytest.approx(0.0, abs=1e-9)
        assert np.angle(out[10] / out[0]) == pytest.approx(np.pi, abs=1e-9)


class TestEstimateCfo:
    @pytest.mark.parametrize("cfo", [-200e3, -40e3, 0.0, 55e3, 300e3])
    def test_recovers_cfo_from_stf(self, cfo):
        rng = make_rng(0)
        pre = Preamble(WIFI_20MHZ)
        stf = apply_cfo(pre.stf(), cfo, 20e6)
        stf = stf + awgn_like(stf, 1e-3, rng)
        est = estimate_cfo(stf, 16, 20e6, num_repeats=10)
        assert est == pytest.approx(cfo, abs=2e3)

    def test_range_limit(self):
        # Lag-16 estimation is unambiguous only within +-625 kHz.
        pre = Preamble(WIFI_20MHZ)
        stf = apply_cfo(pre.stf(), 700e3, 20e6)
        est = estimate_cfo(stf, 16, 20e6)
        assert est != pytest.approx(700e3, abs=10e3)  # aliases

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            estimate_cfo(np.ones(10, dtype=complex), 16, 20e6)


class TestPacketDetector:
    def test_detects_clean_packet(self):
        rng = make_rng(1)
        sig = _packet_with_noise(rng, prefix=300)
        det = PacketDetector(WIFI_20MHZ).detect(sig)
        assert det is not None
        assert abs(det.start - 300) <= 16

    def test_no_false_alarm_on_noise(self):
        rng = make_rng(2)
        noise = awgn_like(np.zeros(2000), 1.0, rng)
        assert PacketDetector(WIFI_20MHZ).detect(noise) is None

    def test_detects_at_low_snr(self):
        rng = make_rng(3)
        sig = _packet_with_noise(rng, prefix=250, snr_db=8.0)
        det = PacketDetector(WIFI_20MHZ, threshold=0.6).detect(sig)
        assert det is not None
        assert abs(det.start - 250) <= 24

    def test_reports_coarse_cfo(self):
        rng = make_rng(4)
        sig = _packet_with_noise(rng, prefix=200, cfo_hz=100e3)
        det = PacketDetector(WIFI_20MHZ).detect(sig)
        assert det is not None
        assert det.coarse_cfo_hz == pytest.approx(100e3, abs=10e3)


class TestFineCfo:
    def test_ltf_refines_estimate(self):
        rng = make_rng(5)
        pre = Preamble(WIFI_20MHZ)
        wave = np.concatenate([pre.stf(), pre.ltf()])
        cfo = 23e3
        wave = apply_cfo(wave, cfo, 20e6)
        wave = wave + awgn_like(wave, 1e-3, rng)
        est = fine_cfo_from_ltf(wave, WIFI_20MHZ, locate_ltf(WIFI_20MHZ, 0))
        assert est == pytest.approx(cfo, abs=500.0)

    def test_truncated_ltf_rejected(self):
        with pytest.raises(ValueError):
            fine_cfo_from_ltf(np.ones(100, dtype=complex), WIFI_20MHZ, 0)
