"""The sharded executor: ordering, backends, chunking, cache wiring."""

import threading
import time

import numpy as np
import pytest

from repro.exec import ResultCache, Task, run_sweep, task_fn


@task_fn("test.exec.square", version="1")
def _square(x):
    return {"sq": x * x}


@task_fn("test.exec.draw", version="1")
def _draw(n, rng=None):
    return {"v": rng.standard_normal(n)}


@task_fn("test.exec.slow", version="1")
def _slow(x, delay=0.02):
    time.sleep(delay)
    return {"x": x, "thread": threading.current_thread().name}


@task_fn("test.exec.boom", version="1")
def _boom(x):
    if x == 3:
        raise RuntimeError("task 3 exploded")
    return {"x": x}


def _squares(n):
    return [Task("test.exec.square", {"x": i}) for i in range(n)]


class TestOrderingAndBackends:
    def test_results_in_task_order(self):
        out = run_sweep(_squares(17), jobs=4, backend="thread")
        assert [r["sq"] for r in out.results] == [i * i for i in range(17)]

    def test_serial_equals_thread_equals_chunked(self):
        tasks = [Task("test.exec.draw", {"n": 6}, seed=100 + i)
                 for i in range(11)]
        serial = run_sweep(tasks, jobs=1)
        threaded = run_sweep(tasks, jobs=4, backend="thread")
        chunky = run_sweep(tasks, jobs=3, backend="thread", chunk_size=2)
        for a, b in zip(serial.results, threaded.results):
            assert np.array_equal(a["v"], b["v"])
        for a, b in zip(serial.results, chunky.results):
            assert np.array_equal(a["v"], b["v"])

    def test_process_backend_matches_serial(self):
        tasks = [Task("test.exec.draw", {"n": 4}, seed=i) for i in range(4)]
        serial = run_sweep(tasks, jobs=1)
        procs = run_sweep(tasks, jobs=2, backend="process")
        for a, b in zip(serial.results, procs.results):
            assert np.array_equal(a["v"], b["v"])

    def test_threads_actually_used(self):
        out = run_sweep([Task("test.exec.slow", {"x": i}) for i in range(8)],
                        jobs=4, backend="thread", chunk_size=1)
        threads = {r["thread"] for r in out.results}
        assert len(threads) > 1

    def test_empty_sweep(self):
        out = run_sweep([])
        assert out.results == [] and out.stats.total == 0

    def test_invalid_backend_and_jobs(self):
        with pytest.raises(ValueError):
            run_sweep(_squares(2), backend="mpi")
        with pytest.raises(ValueError):
            run_sweep(_squares(2), jobs=0)

    def test_stats_accounting(self):
        out = run_sweep(_squares(10), jobs=2, backend="thread", chunk_size=3)
        assert out.stats.total == 10
        assert out.stats.executed == 10
        assert out.stats.chunks == 4
        assert "10 tasks" in out.stats.summary()


class TestErrors:
    def test_task_error_propagates(self):
        tasks = [Task("test.exec.boom", {"x": i}) for i in range(5)]
        with pytest.raises(RuntimeError, match="task 3 exploded"):
            run_sweep(tasks, jobs=1)
        with pytest.raises(RuntimeError, match="task 3 exploded"):
            run_sweep(tasks, jobs=2, backend="thread", chunk_size=1)

    def test_completed_work_cached_despite_error(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        tasks = [Task("test.exec.boom", {"x": i}) for i in range(3)]
        with pytest.raises(RuntimeError):
            run_sweep(tasks + [Task("test.exec.boom", {"x": 3})],
                      jobs=1, cache=cache)
        # The three good tasks were stored before the failure surfaced.
        assert cache.stats.stores == 3


class TestCacheWiring:
    def test_second_run_all_hits(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        tasks = [Task("test.exec.draw", {"n": 5}, seed=i) for i in range(6)]
        cold = run_sweep(tasks, cache=cache)
        warm = run_sweep(tasks, cache=cache)
        assert cold.stats.executed == 6 and cold.stats.cache_hits == 0
        assert warm.stats.executed == 0 and warm.stats.cache_hits == 6
        for a, b in zip(cold.results, warm.results):
            assert np.array_equal(a["v"], b["v"])
            assert a["v"].dtype == b["v"].dtype

    def test_param_change_misses(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        run_sweep([Task("test.exec.draw", {"n": 5}, seed=1)], cache=cache)
        out = run_sweep([Task("test.exec.draw", {"n": 6}, seed=1)],
                        cache=cache)
        assert out.stats.executed == 1

    def test_cache_path_accepted(self, tmp_path):
        out = run_sweep(_squares(3), cache=tmp_path / "c2")
        assert out.stats.cache is not None
        assert (tmp_path / "c2").is_dir()

    def test_cache_false_disables(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "envcache"))
        out = run_sweep(_squares(3), cache=False)
        assert out.stats.cache is None


class TestEnvDefaults:
    def test_repro_jobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        out = run_sweep(_squares(6))
        assert out.stats.jobs == 3
        assert out.stats.backend == "thread"

    def test_repro_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "2")
        monkeypatch.setenv("REPRO_BACKEND", "serial")
        out = run_sweep(_squares(6))
        assert out.stats.backend == "serial"

    def test_repro_cache_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "envcache"))
        out = run_sweep(_squares(3))
        assert out.stats.cache is not None
        assert (tmp_path / "envcache").is_dir()

    def test_bad_env_values(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "0")
        with pytest.raises(ValueError):
            run_sweep(_squares(2))
        monkeypatch.setenv("REPRO_JOBS", "1")
        monkeypatch.setenv("REPRO_BACKEND", "gpu")
        with pytest.raises(ValueError):
            run_sweep(_squares(2))
