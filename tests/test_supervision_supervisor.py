"""The degradation ladder: re-tune -> gain backoff -> fallback -> recover."""

import numpy as np
import pytest

from repro.supervision import (
    RelayHealthMonitor,
    RelaySupervisor,
    SupervisorEventKind as K,
    SupervisorPolicy,
    SupervisorState as S,
)


def _policy(**overrides):
    base = dict(retune_backoff_s=0.05, retune_backoff_max_s=0.4,
                retune_retry_budget=2, gain_step_db=6.0,
                max_gain_backoff_db=12.0, escalation_hold_s=0.1,
                recovery_hold_s=0.2, fallback_sounding_age_s=0.5)
    base.update(overrides)
    return SupervisorPolicy(**base)


def _supervisor(retune=None, **policy_overrides):
    return RelaySupervisor(monitor=RelayHealthMonitor(alpha=1.0),
                           policy=_policy(**policy_overrides),
                           retune=retune)


class TestHealthyOperation:
    def test_stays_active_and_silent(self):
        sup = _supervisor()
        for t in range(10):
            sup.monitor.observe(residual_si_db=-50.0, clip_fraction=0.0)
            assert sup.step(t * 0.05) is S.ACTIVE
        assert sup.events == []
        assert sup.relaying


class TestRetuneRung:
    def test_successful_retune_recovers_immediately(self):
        calls = []
        sup = _supervisor(retune=lambda t: calls.append(t) or True)
        sup.monitor.observe(residual_si_db=-10.0)
        assert sup.step(0.0) is S.ACTIVE     # retuned within the step
        assert len(calls) == 1
        kinds = sup.event_kinds()
        assert kinds == (K.FAULT_DETECTED, K.RETUNE_STARTED,
                         K.RETUNE_SUCCEEDED)

    def test_failed_retunes_back_off_exponentially(self):
        times = []
        sup = _supervisor(retune=lambda t: times.append(t) or False,
                          retune_retry_budget=3)
        t = 0.0
        while len(times) < 3 and t < 2.0:
            sup.monitor.observe(residual_si_db=-10.0)
            sup.step(t)
            t += 0.01
        gaps = np.diff(times)
        assert gaps[1] >= 2 * gaps[0] - 0.011   # doubling backoff

    def test_exhausted_budget_escalates(self):
        sup = _supervisor(retune=lambda t: False, retune_retry_budget=1,
                          escalation_hold_s=0.0)
        for i in range(30):
            sup.monitor.observe(residual_si_db=-10.0)
            sup.step(i * 0.1)
        kinds = set(sup.event_kinds())
        assert K.RETUNE_FAILED in kinds
        assert K.GAIN_REDUCED in kinds

    def test_no_retune_callback_skips_rung(self):
        sup = _supervisor()
        sup.monitor.observe(residual_si_db=-10.0)
        sup.step(0.0)
        sup.step(1.0)
        assert sup.state is S.REDUCED_GAIN
        assert K.RETUNE_STARTED not in sup.event_kinds()


class TestGainAndFallbackRungs:
    def test_ladder_reaches_half_duplex(self):
        sup = _supervisor()
        for i in range(20):
            sup.monitor.observe(clip_fraction=0.3)
            sup.step(i * 0.2)
        assert sup.state is S.HALF_DUPLEX
        assert not sup.relaying
        kinds = sup.event_kinds()
        reduced = kinds.index(K.GAIN_REDUCED)
        fell = kinds.index(K.FALLBACK_HALF_DUPLEX)
        assert reduced < fell                      # gain rung first
        assert sup.gain_backoff_db == 12.0         # both rungs used

    def test_stale_sounding_mutes_immediately(self):
        sup = _supervisor()
        sup.monitor.observe(sounding_age_s=2.0)
        sup.step(0.0)
        assert sup.state is S.HALF_DUPLEX
        assert K.GAIN_REDUCED not in sup.event_kinds()

    def test_retune_still_possible_after_fallback(self):
        attempts = []
        sup = _supervisor(retune=lambda t: attempts.append(t) or
                          (len(attempts) >= 4),
                          retune_retry_budget=1, escalation_hold_s=0.0)
        t, i = 0.0, 0
        while sup.state is not S.HALF_DUPLEX and i < 50:
            sup.monitor.observe(residual_si_db=-10.0)
            sup.step(t)
            t += 0.1
            i += 1
        assert sup.state is S.HALF_DUPLEX
        # Keep stepping: the muted relay keeps retrying and comes back.
        while sup.state is S.HALF_DUPLEX and t < 20.0:
            sup.monitor.observe(residual_si_db=-10.0)
            sup.step(t)
            t += 0.1
        assert sup.state is S.ACTIVE


class TestRecovery:
    def test_recovers_after_hold(self):
        sup = _supervisor()
        for i in range(20):
            sup.monitor.observe(clip_fraction=0.3)
            sup.step(i * 0.2)
        assert sup.state is S.HALF_DUPLEX
        t = 4.0
        while sup.state is not S.ACTIVE and t < 8.0:
            sup.monitor.observe(clip_fraction=0.0)
            sup.step(t)
            t += 0.05
        assert sup.state is S.ACTIVE
        assert sup.gain_backoff_db == 0.0
        kinds = sup.event_kinds()
        assert kinds.index(K.GAIN_RESTORED) < kinds.index(K.RECOVERED)

    def test_short_clean_spell_does_not_recover(self):
        sup = _supervisor(recovery_hold_s=10.0)
        for i in range(20):
            sup.monitor.observe(clip_fraction=0.3)
            sup.step(i * 0.2)
        sup.monitor.observe(clip_fraction=0.0)
        sup.step(4.1)
        sup.step(4.2)
        assert sup.state is S.HALF_DUPLEX


class TestGuardBlock:
    def test_sanitises_and_logs(self):
        sup = _supervisor()
        block = np.ones(64, dtype=complex)
        block[3] = np.nan
        y = sup.guard_block(block, 0.01)
        assert np.isfinite(y).all()
        assert K.BLOCK_SANITISED in sup.event_kinds()

    def test_applies_gain_backoff(self):
        sup = _supervisor()
        sup.gain_backoff_db = 6.0
        sup.state = S.REDUCED_GAIN
        y = sup.guard_block(np.ones(16, dtype=complex), 0.01)
        assert np.allclose(np.abs(y), 10 ** (-6 / 20))

    def test_mutes_in_half_duplex(self):
        sup = _supervisor()
        for i in range(20):
            sup.monitor.observe(clip_fraction=0.3)
            sup.step(i * 0.2)
        y = sup.guard_block(np.ones(16, dtype=complex), 0.01)
        assert np.array_equal(y, np.zeros(16, dtype=complex))

    def test_advances_clock(self):
        sup = _supervisor()
        sup.guard_block(np.ones(8, dtype=complex), 0.25)
        assert sup.now_s == pytest.approx(0.25)


class TestEventLog:
    def test_events_are_ordered_and_typed(self):
        sup = _supervisor(retune=lambda t: True)
        sup.monitor.observe(residual_si_db=-10.0)
        sup.step(0.5)
        log = sup.event_log()
        assert "fault-detected" in log
        assert "retune-succeeded" in log
        times = [e.time_s for e in sup.events]
        assert times == sorted(times)


class TestSustainedStorm:
    def test_mute_then_reascend_under_fault_storm(self):
        """Sustained FaultSchedule storm: ladder hits half-duplex, then
        re-ascends once the storm clears — full descent and recovery
        visible in the event log."""
        from repro.faults import FaultSchedule

        storm = FaultSchedule(seed=2014).stream("supervisor-storm")
        sup = _supervisor(retune=lambda t: False, retune_retry_budget=1,
                          escalation_hold_s=0.0)
        t, step_s = 0.0, 0.05
        # ~3 s of storm: every observation degraded, magnitude jittered
        # by the seeded stream so the trajectory is reproducible.
        for _ in range(60):
            sup.monitor.observe(
                residual_si_db=-10.0 - 5.0 * storm.random(),
                clip_fraction=0.2 + 0.2 * storm.random())
            sup.step(t)
            t += step_s
        assert sup.state is S.HALF_DUPLEX
        assert not sup.relaying
        kinds = sup.event_kinds()
        # Full descent, every rung in order: fault -> retune attempt ->
        # retune gave up -> gain backoff -> half-duplex mute.
        for earlier, later in zip(
                (K.FAULT_DETECTED, K.RETUNE_FAILED, K.GAIN_REDUCED),
                (K.RETUNE_FAILED, K.GAIN_REDUCED, K.FALLBACK_HALF_DUPLEX)):
            assert kinds.index(earlier) < kinds.index(later)
        muted_at = len(sup.events)
        # Storm clears: clean observations past the recovery hold.
        while sup.state is not S.ACTIVE and t < 30.0:
            sup.monitor.observe(residual_si_db=-50.0, clip_fraction=0.0)
            sup.step(t)
            t += step_s
        assert sup.state is S.ACTIVE
        assert sup.relaying
        assert sup.gain_backoff_db == 0.0
        after = sup.event_kinds()[muted_at:]
        assert after.index(K.GAIN_RESTORED) < after.index(K.RECOVERED)

    def test_storm_trajectory_deterministic(self):
        """Same seed, same storm, same event-kind sequence."""
        from repro.faults import FaultSchedule

        def run(seed):
            storm = FaultSchedule(seed=seed).stream("supervisor-storm")
            sup = _supervisor(retune=lambda t: storm.random() < 0.2,
                              retune_retry_budget=2, escalation_hold_s=0.0)
            for i in range(80):
                sup.monitor.observe(
                    residual_si_db=-10.0 - 30.0 * storm.random(),
                    clip_fraction=0.3 * storm.random())
                sup.step(i * 0.05)
            return sup.event_kinds()

        assert run(7) == run(7)
        assert run(7) != run(8)
