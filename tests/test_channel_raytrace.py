"""Wall-aware propagation: the Fig. 1 SNR field calibration."""

import numpy as np
import pytest

from repro.channel import PropagationModel, fig1_home
from repro.phy.params import WIFI_20MHZ
from repro.utils import make_rng


@pytest.fixture(scope="module")
def home():
    plan, ap, relay = fig1_home()
    return PropagationModel(plan), ap, relay, plan


class TestLinkBudget:
    def test_loss_grows_with_distance(self, home):
        pm, ap, relay, plan = home
        near = pm.link_budget(ap, ap + np.array([1.0, 0.0]))
        far = pm.link_budget(ap, ap + np.array([6.0, 0.0]))
        assert far.total_loss_db > near.total_loss_db + 15.0

    def test_walls_add_loss(self, home):
        pm, ap, relay, plan = home
        through_wall = pm.link_budget(ap, (1.5, 6.0))
        open_path = pm.link_budget(ap, (1.5, 3.0))
        per_m = (through_wall.path_loss_db - open_path.path_loss_db)
        assert through_wall.wall_loss_db > 0
        assert open_path.wall_loss_db == 0

    def test_propagation_delay(self, home):
        pm, ap, relay, plan = home
        budget = pm.link_budget(ap, ap + np.array([3.0, 0.0]))
        assert budget.propagation_delay_s == pytest.approx(1e-8, rel=0.01)

    def test_snr_definition(self, home):
        pm, ap, relay, plan = home
        budget = pm.link_budget(ap, relay)
        assert budget.snr_db(20.0) == pytest.approx(
            20.0 - budget.total_loss_db + 90.0)


class TestFig1Calibration:
    """The SNR field must match the paper's Fig. 1 description."""

    def test_mid_home_snr_10_to_20(self, home):
        pm, ap, relay, plan = home
        grid = plan.grid(spacing_m=0.5)
        d = np.linalg.norm(grid - ap, axis=1)
        mid = [pm.link_budget(ap, g).snr_db(20.0)
               for g in grid[(d > 3.5) & (d < 5.5)]]
        assert 8.0 < np.median(mid) < 20.0

    def test_edge_snr_near_zero(self, home):
        pm, ap, relay, plan = home
        grid = plan.grid(spacing_m=0.5)
        d = np.linalg.norm(grid - ap, axis=1)
        edge = [pm.link_budget(ap, g).snr_db(20.0) for g in grid[d > 7.0]]
        assert -10.0 < np.median(edge) < 8.0

    def test_relay_has_usable_backhaul(self, home):
        pm, ap, relay, plan = home
        assert pm.link_budget(ap, relay).snr_db(20.0) > 15.0


class TestChannelDraws:
    def test_siso_gain_tracks_budget(self, home):
        pm, ap, relay, plan = home
        rng = make_rng(0)
        budget = pm.link_budget(ap, relay)
        gains = []
        for _ in range(300):
            chan = pm.siso_channel(ap, relay, WIFI_20MHZ.sample_period_s,
                                   rng=rng)
            gains.append(np.sum(np.abs(chan.taps) ** 2))
        mean_db = 10 * np.log10(np.mean(gains))
        assert mean_db == pytest.approx(-budget.total_loss_db, abs=2.0)

    def test_mimo_link_kind_follows_geometry(self, home):
        pm, ap, relay, plan = home
        # A through-wall link is pinhole; a same-room link is not.
        assert pm.is_pinhole(ap, (1.5, 6.0))
        assert not pm.is_pinhole(ap, (3.0, 1.5))

    def test_mimo_link_shapes(self, home):
        pm, ap, relay, plan = home
        rng = make_rng(1)
        link = pm.mimo_link(ap, relay, WIFI_20MHZ.sample_period_s,
                            num_rx=2, num_tx=2, rng=rng)
        h = link.frequency_response(WIFI_20MHZ.used_subcarriers(), 64)
        assert h.shape == (56, 2, 2)

    def test_pinhole_links_rank_deficient(self, home):
        from repro.phy.mimo import effective_rank

        pm, ap, relay, plan = home
        rng = make_rng(2)
        target = (1.5, 6.0)  # through-wall
        ranks = []
        for _ in range(30):
            link = pm.mimo_link(ap, target, WIFI_20MHZ.sample_period_s,
                                rng=rng)
            ranks.append(effective_rank(link.narrowband()))
        assert np.mean(ranks) < 1.5
