"""Span-tree reconstruction, folded stacks, critical path."""

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.tree import (
    build_span_trees,
    collapsed_stacks,
    critical_path,
    top_path_stages,
    write_collapsed,
)
from repro.telemetry import TelemetryCollector
from repro.telemetry.export import read_jsonl, write_jsonl


def _record_forest(tel):
    """Two roots: a > (b, c > d), and e."""
    with tel.span("a"):
        with tel.span("b"):
            pass
        with tel.span("c"):
            with tel.span("d"):
                pass
    with tel.span("e"):
        pass
    return tel.payload()


def _shape(roots):
    """Preorder (name, child-count) list — tree-equality fingerprint."""
    out = []

    def visit(node):
        out.append((node.name, len(node.children)))
        for child in node.children:
            visit(child)

    for root in roots:
        visit(root)
    return out


class TestExactBuild:
    def test_rebuilds_nesting_from_parent_links(self):
        payload = _record_forest(TelemetryCollector())
        roots = build_span_trees(payload)
        assert _shape(roots) == [("a", 2), ("b", 0), ("c", 1), ("d", 0),
                                 ("e", 0)]

    def test_accepts_live_collector(self):
        tel = TelemetryCollector()
        _record_forest(tel)
        assert _shape(build_span_trees(tel)) == \
            _shape(build_span_trees(tel.payload()))

    def test_lanes_split_by_origin(self):
        worker = TelemetryCollector(origin="shard-0")
        with worker.span("exec.shard", shard=0):
            pass
        main = TelemetryCollector(origin="main")
        with main.span("exec.sweep"):
            pass
        main.merge(worker.payload())
        roots = build_span_trees(main)
        assert sorted(r.name for r in roots) == ["exec.shard", "exec.sweep"]
        lanes = {r.lane() for r in roots}
        assert len(lanes) == 2

    def test_self_time_is_total_minus_children(self):
        payload = _record_forest(TelemetryCollector())
        roots = build_span_trees(payload)
        a = roots[0]
        assert a.name == "a"
        assert a.self_ns == max(
            a.dur_ns - sum(c.dur_ns for c in a.children), 0)


class TestLegacyFallback:
    @staticmethod
    def _strip(payload):
        for rec in payload["spans"]:
            rec.pop("id", None)
            rec.pop("parent", None)
        return payload

    def test_interval_inference_matches_exact_build(self):
        payload = _record_forest(TelemetryCollector())
        exact = _shape(build_span_trees(payload))
        legacy = _shape(build_span_trees(self._strip(payload)))
        assert legacy == exact

    def test_old_jsonl_round_trip_still_builds(self, tmp_path):
        payload = self._strip(_record_forest(TelemetryCollector()))
        path = tmp_path / "legacy.jsonl"
        write_jsonl(payload, path)
        roots = build_span_trees(read_jsonl(path))
        assert _shape(roots) == [("a", 2), ("b", 0), ("c", 1), ("d", 0),
                                 ("e", 0)]


class TestCollapsedStacks:
    def test_self_weights_sum_to_root_total(self):
        payload = _record_forest(TelemetryCollector())
        roots = build_span_trees(payload)
        stacks = collapsed_stacks(roots)
        assert sum(stacks.values()) == sum(r.dur_ns for r in roots)

    def test_paths_are_semicolon_joined(self):
        payload = _record_forest(TelemetryCollector())
        stacks = collapsed_stacks(build_span_trees(payload))
        assert "a;c;d" in stacks

    def test_jsonl_round_trip_is_lossless(self, tmp_path):
        payload = _record_forest(TelemetryCollector())
        direct = collapsed_stacks(build_span_trees(payload))
        path = tmp_path / "run.jsonl"
        write_jsonl(payload, path)
        round_tripped = collapsed_stacks(build_span_trees(read_jsonl(path)))
        assert round_tripped == direct

    def test_write_collapsed_format(self, tmp_path):
        stacks = {"a;b": 100, "a": 50}
        path = tmp_path / "folded.txt"
        assert write_collapsed(stacks, path) == 2
        assert path.read_text() == "a 50\na;b 100\n"

    def test_rejects_unknown_weight(self):
        with pytest.raises(ValueError):
            collapsed_stacks([], weight="bogus")


class TestCriticalPath:
    def test_follows_slowest_child(self):
        payload = _record_forest(TelemetryCollector())
        roots = build_span_trees(payload)
        path = critical_path(roots)
        assert path[0] is max(roots, key=lambda r: r.dur_ns)
        for parent, child in zip(path, path[1:]):
            assert child in parent.children
            assert child.dur_ns == max(c.dur_ns for c in parent.children)

    def test_empty_forest(self):
        assert critical_path([]) == []

    def test_top_stages_ranked_by_self_time(self):
        payload = _record_forest(TelemetryCollector())
        path = critical_path(build_span_trees(payload))
        stages = top_path_stages(path, n=3)
        assert len(stages) == min(3, len(path))
        selfs = [s for _, s, _ in stages]
        assert selfs == sorted(selfs, reverse=True)


class TestNestingProperty:
    """Reconstructed trees respect interval nesting per (pid, tid)."""

    @staticmethod
    def _drive(ops):
        """Replay open/close ops through a collector, return payload."""
        tel = TelemetryCollector()
        stack = []
        n = 0
        for op in ops:
            if op and len(stack) < 8:
                span = tel.span(f"s{n}")
                span.__enter__()
                stack.append(span)
                n += 1
            elif stack:
                stack.pop().__exit__(None, None, None)
        while stack:
            stack.pop().__exit__(None, None, None)
        return tel.payload()

    @given(ops=st.lists(st.booleans(), max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_children_contained_in_parents(self, ops):
        payload = self._drive(ops)
        roots = build_span_trees(payload)
        seen = 0
        for root in roots:
            for node in root.walk():
                seen += 1
                for child in node.children:
                    assert node.ts_ns <= child.ts_ns
                    assert child.end_ns <= node.end_ns
        assert seen == len(payload["spans"])

    @given(ops=st.lists(st.booleans(), max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_interval_fallback_matches_exact_links(self, ops):
        payload = self._drive(ops)
        exact = _shape(build_span_trees(payload))
        for rec in payload["spans"]:
            rec.pop("id", None)
            rec.pop("parent", None)
        assert _shape(build_span_trees(payload)) == exact
