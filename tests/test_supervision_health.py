"""Health metrics (EWMA) and the monitor's threshold verdicts."""

import math

import pytest

from repro.supervision import EwmaMetric, RelayHealthMonitor


class TestEwmaMetric:
    def test_starts_empty(self):
        assert EwmaMetric().value is None

    def test_first_sample_assigns(self):
        m = EwmaMetric(alpha=0.3)
        assert m.update(4.0) == 4.0

    def test_smooths_toward_samples(self):
        m = EwmaMetric(alpha=0.5)
        m.update(0.0)
        assert m.update(1.0) == pytest.approx(0.5)
        assert m.update(1.0) == pytest.approx(0.75)

    def test_infinite_sample_dominates_then_recovers(self):
        m = EwmaMetric(alpha=0.1)
        m.update(1.0)
        assert math.isinf(m.update(math.inf))
        # A later finite sample must pull the metric back to finite.
        assert m.update(2.0) == 2.0

    def test_reset_forgets(self):
        m = EwmaMetric()
        m.update(5.0)
        m.reset()
        assert m.value is None

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            EwmaMetric(alpha=0.0)


class TestRelayHealthMonitor:
    def test_clean_start_is_healthy(self):
        assert RelayHealthMonitor().healthy

    def test_residual_violation(self):
        mon = RelayHealthMonitor(max_residual_si_db=-20.0, alpha=1.0)
        mon.observe(residual_si_db=-10.0)
        assert "residual_si_db" in mon.violations()
        assert not mon.healthy

    def test_single_glitch_is_smoothed(self):
        mon = RelayHealthMonitor(max_clip_fraction=0.05, alpha=0.3)
        mon.observe(clip_fraction=0.0)
        mon.observe(clip_fraction=0.1)     # one bad block
        assert mon.healthy                 # EWMA still below threshold
        for _ in range(10):
            mon.observe(clip_fraction=0.1)  # sustained fault crosses
        assert "clip_fraction" in mon.violations()

    def test_guard_ok_feeds_trip_rate(self):
        mon = RelayHealthMonitor(max_guard_trip_rate=0.1, alpha=1.0)
        mon.observe(guard_ok=False)
        assert "guard_trip_rate" in mon.violations()
        mon.observe(guard_ok=True)
        assert mon.healthy

    def test_infinite_sounding_age(self):
        mon = RelayHealthMonitor()
        mon.observe(sounding_age_s=math.inf)
        assert "sounding_age_s" in mon.violations()

    def test_reset_metric_clears_one(self):
        mon = RelayHealthMonitor(alpha=1.0)
        mon.observe(residual_si_db=-5.0, clip_fraction=0.5)
        mon.reset_metric("residual_si_db")
        assert mon.violations() == ("clip_fraction",)

    def test_snapshot_lists_all_metrics(self):
        snap = RelayHealthMonitor().snapshot()
        assert set(snap) == set(RelayHealthMonitor.METRICS)
