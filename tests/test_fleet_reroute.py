"""Fast reroute: timelines, the policy contract, the client machine."""

import numpy as np
import pytest

from repro.fleet import (
    ClientRerouteMachine,
    FleetReroutePolicy,
    RelayFaultStorm,
    RelayTimeline,
    relay_outage_timeline,
)
from repro.fleet.reroute import relay_timeline_seed
from repro.ident.sounding import DEFAULT_SOUNDING_INTERVAL_S
from repro.supervision.supervisor import (
    SupervisorEvent,
    SupervisorEventKind,
    SupervisorState,
)

STEP = DEFAULT_SOUNDING_INTERVAL_S


def _timeline(num_steps, spans, serve=True):
    """Hand-built timeline with half-duplex outages at ``spans``.

    Events are written exactly as the supervisor emits them: the mute
    at the outage's first step, the recovery (tagged ``from:
    half-duplex``) at its end step.
    """
    relaying = np.full(num_steps, serve, dtype=bool)
    events = []
    for start, end in spans:
        relaying[start:end] = False
        events.append(SupervisorEvent(
            time_s=(start + 1) * STEP,
            kind=SupervisorEventKind.FALLBACK_HALF_DUPLEX,
            state=SupervisorState.HALF_DUPLEX))
        if end < num_steps:
            events.append(SupervisorEvent(
                time_s=(end + 1) * STEP,
                kind=SupervisorEventKind.RECOVERED,
                state=SupervisorState.ACTIVE,
                detail={"from": "half-duplex"}))
    return RelayTimeline(relaying=relaying, events=tuple(events))


class TestPolicy:
    def test_bound_is_detection_plus_resound(self):
        policy = FleetReroutePolicy(detection_intervals=2,
                                    resound_intervals=5)
        assert policy.max_reroute_intervals == 7

    @pytest.mark.parametrize("bad", [
        {"detection_intervals": 0}, {"resound_intervals": 0},
        {"failback_hold_intervals": 0},
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            FleetReroutePolicy(**bad)

    def test_client_phase_stable_and_in_range(self):
        policy = FleetReroutePolicy(resound_intervals=4)
        phases = [policy.client_phase(c) for c in range(64)]
        assert all(0 <= p < 4 for p in phases)
        assert phases == [policy.client_phase(c) for c in range(64)]
        assert len(set(phases)) > 1     # clients are de-synchronised

    def test_as_dict_round_trips(self):
        policy = FleetReroutePolicy(detection_intervals=2,
                                    resound_intervals=3,
                                    failback_hold_intervals=9)
        assert FleetReroutePolicy(**policy.as_dict()) == policy


class TestRelayTimeline:
    def test_outages_parse_typed_events(self):
        tl = _timeline(40, [(5, 12), (20, 28)])
        assert tl.outages(40) == ((5, 12), (20, 28))

    def test_open_outage_ends_at_horizon(self):
        tl = _timeline(40, [(30, 40)])
        assert tl.outages(40) == ((30, 40),)

    def test_gain_backoff_is_not_an_outage(self):
        # Degraded-but-relaying rungs must never trigger reroute.
        events = (
            SupervisorEvent(time_s=3 * STEP,
                            kind=SupervisorEventKind.GAIN_REDUCED,
                            state=SupervisorState.REDUCED_GAIN),
            SupervisorEvent(time_s=9 * STEP,
                            kind=SupervisorEventKind.GAIN_RESTORED,
                            state=SupervisorState.ACTIVE),
            SupervisorEvent(time_s=11 * STEP,
                            kind=SupervisorEventKind.RECOVERED,
                            state=SupervisorState.ACTIVE,
                            detail={"from": "reduced-gain"}),
        )
        tl = RelayTimeline(relaying=np.ones(20, dtype=bool), events=events)
        assert tl.outages(20) == ()

    def test_recovery_from_other_state_keeps_outage_open(self):
        # Only a RECOVERED tagged from half-duplex closes the span.
        events = (
            SupervisorEvent(time_s=6 * STEP,
                            kind=SupervisorEventKind.FALLBACK_HALF_DUPLEX,
                            state=SupervisorState.HALF_DUPLEX),
            SupervisorEvent(time_s=10 * STEP,
                            kind=SupervisorEventKind.RETUNE_FAILED,
                            state=SupervisorState.HALF_DUPLEX),
        )
        tl = RelayTimeline(relaying=np.zeros(20, dtype=bool), events=events)
        assert tl.outages(20) == ((5, 20),)


class TestStormTimelines:
    def test_calm_storm_never_mutes(self):
        tl = relay_outage_timeline(123, 120, RelayFaultStorm(rate=0.0))
        assert tl.relaying.all()
        assert tl.outages(120) == ()

    def test_deterministic_across_calls(self):
        storm = RelayFaultStorm(rate=0.4)
        a = relay_outage_timeline(77, 160, storm)
        b = relay_outage_timeline(77, 160, storm)
        assert np.array_equal(a.relaying, b.relaying)
        assert a.events == b.events

    def test_dict_storm_equals_dataclass_storm(self):
        storm = RelayFaultStorm(rate=0.4)
        a = relay_outage_timeline(77, 160, storm)
        b = relay_outage_timeline(77, 160, storm.as_dict())
        assert np.array_equal(a.relaying, b.relaying)

    def test_seed_changes_trajectory(self):
        storm = RelayFaultStorm(rate=0.4)
        a = relay_outage_timeline(1, 200, storm)
        b = relay_outage_timeline(2, 200, storm)
        assert not np.array_equal(a.relaying, b.relaying)

    def test_storm_produces_real_outages(self):
        storm = RelayFaultStorm(rate=0.5)
        spans = []
        for seed in range(8):
            spans.extend(
                relay_outage_timeline(seed, 240, storm).outages(240))
        assert spans      # a heavy storm must mute at least one relay

    def test_outage_spans_match_relaying_array(self):
        # The typed event log and the boolean service array are two
        # views of one trajectory and must agree exactly.
        storm = RelayFaultStorm(rate=0.5)
        for seed in range(8):
            tl = relay_outage_timeline(seed, 240, storm)
            for start, end in tl.outages(240):
                assert not tl.relaying[start:end].any()
                if end < 240:
                    assert tl.relaying[end]

    def test_timeline_seed_is_stable(self):
        assert relay_timeline_seed(3, 5) == 3 * 100_003 + 5
        assert relay_timeline_seed(3, 5) != relay_timeline_seed(3, 6)
        assert relay_timeline_seed(3, 5) != relay_timeline_seed(4, 5)


def _machine(policy, client=0, backup=1):
    return ClientRerouteMachine(policy, client, direct_rate=10.0,
                                primary_rate=90.0, backup_rate=60.0,
                                primary=0, backup=backup)


class TestClientRerouteMachine:
    POLICY = FleetReroutePolicy(detection_intervals=1, resound_intervals=4,
                                failback_hold_intervals=6)

    def test_healthy_primary_serves_throughout(self):
        trace = _machine(self.POLICY).run(_timeline(50, []),
                                          _timeline(50, []), 50)
        assert trace.reroutes == []
        assert (trace.serving == 0).all()
        assert trace.mean_mbps == pytest.approx(90.0)

    def test_reroute_within_bound_and_rescued(self):
        trace = _machine(self.POLICY).run(_timeline(60, [(10, 40)]),
                                          _timeline(60, []), 60)
        assert len(trace.reroutes) == 1
        ev = trace.reroutes[0]
        assert ev.mute_step == 10
        assert ev.rescued
        assert ev.switch_step >= 10 + self.POLICY.detection_intervals
        assert 1 <= ev.latency_intervals <= self.POLICY.max_reroute_intervals
        # Between mute and switch the client is direct-only; after the
        # switch the backup serves at its precomputed rate.
        assert (trace.serving[10:ev.switch_step] == -1).all()
        assert trace.serving[ev.switch_step] == 1
        assert trace.throughput_mbps[ev.switch_step] == pytest.approx(60.0)

    def test_switch_lands_on_client_sounding_tick(self):
        for client in range(8):
            m = _machine(self.POLICY, client=client)
            trace = m.run(_timeline(60, [(10, 40)]), _timeline(60, []), 60)
            tick = trace.reroutes[0].switch_step
            assert tick % self.POLICY.resound_intervals == m.phase

    def test_bound_holds_for_every_phase_and_start(self):
        for client in range(8):
            for start in range(5, 13):
                m = _machine(self.POLICY, client=client)
                trace = m.run(_timeline(80, [(start, 60)]),
                              _timeline(80, []), 80)
                assert len(trace.reroutes) == 1
                assert trace.reroutes[0].latency_intervals \
                    <= self.POLICY.max_reroute_intervals

    def test_muted_backup_serves_direct_and_counts_unrescued(self):
        trace = _machine(self.POLICY).run(
            _timeline(60, [(10, 40)]), _timeline(60, [], serve=False), 60)
        assert len(trace.reroutes) == 1
        ev = trace.reroutes[0]
        assert not ev.rescued
        assert trace.throughput_mbps[ev.switch_step] == pytest.approx(10.0)
        assert trace.serving[ev.switch_step] == -1

    def test_no_backup_means_no_reroute(self):
        trace = ClientRerouteMachine(
            self.POLICY, 0, direct_rate=10.0, primary_rate=90.0,
            backup_rate=0.0, primary=0, backup=-1,
        ).run(_timeline(60, [(10, 40)]), None, 60)
        assert trace.reroutes == []
        assert (trace.serving[10:40] == -1).all()
        assert trace.throughput_mbps[20] == pytest.approx(10.0)

    def test_failback_after_hysteresis(self):
        trace = _machine(self.POLICY).run(_timeline(80, [(10, 30)]),
                                          _timeline(80, []), 80)
        assert trace.failbacks == 1
        # The client must stay on the backup for the full hold window
        # after the primary recovers, then return at a sounding tick.
        first_back = int(np.argmax(trace.serving[30:] == 0)) + 30
        assert first_back >= 30 + self.POLICY.failback_hold_intervals
        assert (trace.serving[first_back:] == 0).all()

    def test_short_flap_does_not_fail_back(self):
        # Primary recovers for fewer intervals than the hold, then
        # mutes again: the client must ride out the flap on the backup
        # (no bounce, no second reroute event) and fail back exactly
        # once when the primary is finally stable.
        trace = _machine(self.POLICY).run(
            _timeline(80, [(10, 30), (33, 60)]), _timeline(80, []), 80)
        assert len(trace.reroutes) == 1
        assert (trace.serving[30:60] == 1).all()
        assert trace.failbacks == 1
        assert trace.serving[79] == 0

    def test_each_outage_gets_its_own_reroute(self):
        trace = _machine(self.POLICY).run(
            _timeline(120, [(10, 30), (60, 80)]), _timeline(120, []), 120)
        assert [ev.mute_step for ev in trace.reroutes] == [10, 60]
        assert trace.failbacks == 2
