"""The PHY running on LTE numerology (generality claim, §1).

"By general, we mean the fundamental technique should be applicable to
any OFDM based standard" — the framing, coding and synchronisation run
unchanged on the LTE-like grid (1024-pt FFT, 15 kHz spacing, 4.69 us
CP).
"""

import numpy as np
import pytest

from repro.channel.multipath import MultipathChannel
from repro.phy import Receiver, Transmitter, TxConfig
from repro.phy.params import LTE_10MHZ
from repro.utils import awgn_like, make_rng


def _roundtrip(rng, mcs=0, snr_db=25.0, channel=None, num_bits=800):
    cfg = TxConfig(params=LTE_10MHZ, mcs_index=mcs)
    bits = rng.integers(0, 2, num_bits)
    wave = Transmitter(cfg).transmit(bits)[0]
    if channel is not None:
        wave = channel.apply_trimmed(wave)
    wave = np.concatenate([np.zeros(400, dtype=complex), wave,
                           np.zeros(80, dtype=complex)])
    wave = wave + awgn_like(wave, 10.0 ** (-snr_db / 10.0), rng)
    return bits, Receiver(LTE_10MHZ).receive(wave)


class TestLtePhy:
    @pytest.mark.parametrize("mcs", [0, 3, 6])
    def test_roundtrip(self, mcs):
        rng = make_rng(50 + mcs)
        bits, result = _roundtrip(rng, mcs=mcs, snr_db=28.0)
        assert result.success, result.failure_reason
        assert np.array_equal(result.payload_bits, bits)

    def test_long_multipath_within_lte_cp(self):
        # 60 samples at 15.36 Msps ~ 3.9 us of delay spread: hopeless
        # for WiFi's 400 ns CP, fine for LTE's 4.69 us.
        rng = make_rng(60)
        taps = np.zeros(61, dtype=complex)
        taps[0] = 1.0
        taps[30] = 0.4j
        taps[60] = 0.2
        chan = MultipathChannel(taps)
        bits, result = _roundtrip(rng, mcs=1, snr_db=30.0, channel=chan)
        assert result.success, result.failure_reason
        assert np.array_equal(result.payload_bits, bits)

    def test_lte_cfo_tolerance(self):
        from repro.phy.sync import apply_cfo

        rng = make_rng(61)
        cfg = TxConfig(params=LTE_10MHZ, mcs_index=0)
        bits = rng.integers(0, 2, 500)
        wave = Transmitter(cfg).transmit(bits)[0]
        wave = np.concatenate([np.zeros(300, dtype=complex), wave])
        wave = apply_cfo(wave, 3e3, LTE_10MHZ.bandwidth_hz)
        wave = wave + awgn_like(wave, 10.0 ** (-26.0 / 10.0), rng)
        result = Receiver(LTE_10MHZ).receive(wave)
        assert result.success, result.failure_reason
        assert result.cfo_hz == pytest.approx(3e3, abs=300.0)


class TestUplinkReciprocity:
    def test_downlink_filter_serves_uplink(self):
        """§4.2: the constructive filter computed for AP->client works
        unchanged client->AP (reciprocity + commutativity)."""
        from repro.core.cnf_filter import siso_cnf_phase

        rng = make_rng(62)
        n = 56
        h_direct = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        h_ap_relay = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        h_relay_client = rng.standard_normal(n) + 1j * rng.standard_normal(n)

        # Downlink: source=AP, so (h_sd, h_sr, h_rd) as usual.
        f_down = siso_cnf_phase(h_direct, h_ap_relay, h_relay_client)
        # Uplink: source=client; by reciprocity the client->relay channel
        # equals relay->client, and relay->AP equals AP->relay.
        f_up = siso_cnf_phase(h_direct, h_relay_client, h_ap_relay)
        assert np.allclose(f_down, f_up)

        # And the combined uplink channel with the downlink filter is
        # exactly the combined downlink channel (commutativity).
        down = h_direct + h_relay_client * f_down * h_ap_relay
        up = h_direct + h_ap_relay * f_down * h_relay_client
        assert np.allclose(down, up)
