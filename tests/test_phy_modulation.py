"""QAM constellations and demapping."""

import numpy as np
import pytest

from repro.phy import BPSK, MODULATIONS, QAM16, QAM64, QAM256, QPSK, modulation_by_name
from repro.utils import make_rng


class TestConstellations:
    @pytest.mark.parametrize("mod", MODULATIONS, ids=lambda m: m.name)
    def test_unit_average_power(self, mod):
        assert np.mean(np.abs(mod.points) ** 2) == pytest.approx(1.0)

    @pytest.mark.parametrize("mod", MODULATIONS, ids=lambda m: m.name)
    def test_point_count(self, mod):
        assert mod.points.size == 2 ** mod.bits_per_symbol

    def test_bits_per_symbol_ladder(self):
        assert [m.bits_per_symbol for m in MODULATIONS] == [1, 2, 4, 6, 8]

    @pytest.mark.parametrize("mod", [QPSK, QAM16, QAM64, QAM256],
                             ids=lambda m: m.name)
    def test_gray_mapping_neighbours(self, mod):
        # Nearest constellation neighbours differ in exactly one bit.
        pts = mod.points
        d_min = mod.min_distance()
        n_bits = mod.bits_per_symbol
        for i in range(pts.size):
            for j in range(pts.size):
                if i != j and abs(pts[i] - pts[j]) < d_min * 1.01:
                    assert bin(i ^ j).count("1") == 1

    def test_min_distance_shrinks_with_order(self):
        dists = [m.min_distance() for m in MODULATIONS[1:]]
        assert all(a > b for a, b in zip(dists, dists[1:]))


class TestModDemod:
    @pytest.mark.parametrize("mod", MODULATIONS, ids=lambda m: m.name)
    def test_roundtrip_noiseless(self, mod):
        rng = make_rng(0)
        bits = rng.integers(0, 2, 40 * mod.bits_per_symbol)
        symbols = mod.modulate(bits)
        assert np.array_equal(mod.demodulate_hard(symbols), bits)

    def test_bpsk_roundtrip_with_noise(self):
        rng = make_rng(1)
        bits = rng.integers(0, 2, 1000)
        noisy = BPSK.modulate(bits) + 0.2 * (
            rng.standard_normal(1000) + 1j * rng.standard_normal(1000))
        assert np.array_equal(BPSK.demodulate_hard(noisy), bits)

    def test_wrong_bit_count_rejected(self):
        with pytest.raises(ValueError):
            QAM16.modulate([0, 1, 0])

    def test_non_binary_rejected(self):
        with pytest.raises(ValueError):
            QPSK.modulate([0, 2])


class TestLlr:
    def test_llr_sign_matches_hard_decision(self):
        rng = make_rng(2)
        bits = rng.integers(0, 2, 600)
        symbols = QAM64.modulate(bits)
        llrs = QAM64.demodulate_llr(symbols, noise_var=0.1)
        hard_from_llr = (llrs < 0).astype(int)
        assert np.array_equal(hard_from_llr, bits)

    def test_llr_magnitude_grows_with_snr(self):
        bits = np.array([0, 0])
        sym = QPSK.modulate(bits)
        weak = np.abs(QPSK.demodulate_llr(sym, noise_var=1.0))
        strong = np.abs(QPSK.demodulate_llr(sym, noise_var=0.01))
        assert np.all(strong > weak)

    def test_invalid_noise_var(self):
        with pytest.raises(ValueError):
            QPSK.demodulate_llr(np.ones(2, dtype=complex), 0.0)


class TestLookup:
    def test_by_name(self):
        assert modulation_by_name("64QAM") is QAM64
        assert modulation_by_name("bpsk") is BPSK

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            modulation_by_name("1024qam")
