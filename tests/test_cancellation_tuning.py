"""The noise-injection tuning algorithm and the correlation trap (§3.3)."""

import numpy as np
import pytest

from repro.cancellation import (
    NoiseInjectionTuner,
    naive_si_estimate,
    probe_si_estimate,
)
from repro.cancellation.tuning import probe_si_taps_ls
from repro.utils import make_rng


def _relay_scene(rng, n=16384, si_gain=0.2, relay_delay=2, amp=1.0):
    """A relay mid-operation: TX is a delayed, amplified copy of the
    incoming source signal; RX = source + SI(TX)."""
    source = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    tx = amp * np.roll(source, relay_delay)
    tx[:relay_delay] = 0.0
    rx = source + si_gain * tx
    return source, tx, rx


class TestCorrelationTrap:
    def test_naive_estimator_absorbs_source(self):
        # §3.3: correlating RX against TX learns alpha(f) + H(f); the
        # estimated "channel" magnitude is far above the true SI gain.
        rng = make_rng(0)
        _, tx, rx = _relay_scene(rng, si_gain=0.2, amp=1.0)
        est = naive_si_estimate(tx, rx, nfft=64)
        assert np.mean(np.abs(est)) > 0.5  # true channel is 0.2

    def test_naive_cancellation_kills_desired_signal(self):
        rng = make_rng(1)
        source, tx, rx = _relay_scene(rng, si_gain=0.2)
        est = naive_si_estimate(tx, rx, nfft=64)
        # Apply per-bin cancellation with the naive estimate.
        n = tx.size
        residual = np.empty_like(rx)
        for s in range(n // 64):
            sl = slice(s * 64, (s + 1) * 64)
            y = np.fft.fft(rx[sl])
            t = np.fft.fft(tx[sl])
            residual[sl] = np.fft.ifft(y - est * t)
        kept = np.mean(np.abs(residual) ** 2) / np.mean(np.abs(source) ** 2)
        assert kept < 0.5  # much of the *source* is cancelled too

    def test_probe_estimator_is_immune(self):
        rng = make_rng(2)
        source, tx, rx = _relay_scene(rng, n=65536, si_gain=0.2)
        probe = 0.3 * (rng.standard_normal(tx.size)
                       + 1j * rng.standard_normal(tx.size))
        rx_with_probe = rx + 0.2 * probe
        est = probe_si_estimate(probe, rx_with_probe, nfft=64)
        # The estimate sees only the probe's channel (0.2), not the
        # alpha + H mixture the naive estimator converges to.
        assert np.median(np.abs(est)) == pytest.approx(0.2, abs=0.08)


class TestProbeTapsLs:
    def test_estimates_through_loud_traffic(self):
        rng = make_rng(3)
        n = 65536
        traffic = 10.0 * (rng.standard_normal(n) + 1j * rng.standard_normal(n))
        probe = 0.3 * (rng.standard_normal(n) + 1j * rng.standard_normal(n))
        h = np.array([0.2, 0.05 - 0.02j])
        rx = np.convolve(traffic + probe, h)[:n]
        taps = probe_si_taps_ls(probe, rx, num_taps=2)
        # Traffic is 30 dB above the probe but uncorrelated with it.
        assert np.allclose(taps, h, atol=0.05)


class TestNoiseInjectionTuner:
    def test_probe_power_is_backed_off(self):
        tuner = NoiseInjectionTuner(probe_backoff_db=30.0)
        rng = make_rng(4)
        probe = tuner.make_probe(100000, tx_power_dbm=20.0, rng=rng)
        power_dbm = 10 * np.log10(np.mean(np.abs(probe) ** 2))
        assert power_dbm == pytest.approx(-10.0, abs=0.2)

    def test_estimate_roundtrip(self):
        rng = make_rng(5)
        tuner = NoiseInjectionTuner(sample_rate_hz=20e6, nfft=64)
        probe = tuner.make_probe(32768, 20.0, rng=rng)
        rx = 0.1j * probe
        result = tuner.estimate(probe, rx)
        assert np.allclose(result.si_response, 0.1j, atol=1e-2)

    def test_response_interpolation(self):
        rng = make_rng(6)
        tuner = NoiseInjectionTuner(sample_rate_hz=20e6, nfft=64)
        probe = tuner.make_probe(32768, 20.0, rng=rng)
        result = tuner.estimate(probe, 0.25 * probe)
        grid = np.linspace(-8e6, 8e6, 11)
        on_grid = tuner.response_on_grid(result, grid)
        assert np.allclose(on_grid, 0.25, atol=1e-2)
