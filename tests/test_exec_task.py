"""The task model: registration, canonical hashing, seeded RNGs."""

import dataclasses

import numpy as np
import pytest

from repro.exec import (
    Task,
    canonicalize,
    digest,
    registered_task_fns,
    resolve_task_fn,
    spawn_seeds,
    task_fn,
)


@task_fn("test.double", version="1")
def _double(x, rng=None):
    return {"x": 2 * x}


@task_fn("test.noise", version="3")
def _noise(n, rng=None):
    return rng.standard_normal(n)


@dataclasses.dataclass
class _Cfg:
    depth: float = 100.0
    label: str = "a"


class TestCanonicalize:
    def test_dict_order_irrelevant(self):
        assert digest({"a": 1, "b": 2.5}) == digest({"b": 2.5, "a": 1})

    def test_float_int_distinct(self):
        assert digest(1) != digest(1.0)

    def test_list_tuple_distinct(self):
        assert digest([1, 2]) != digest((1, 2))

    def test_array_value_sensitivity(self):
        a = np.arange(6.0)
        b = a.copy()
        assert digest(a) == digest(b)
        b[3] += 1e-12
        assert digest(a) != digest(b)

    def test_array_dtype_and_shape_matter(self):
        a = np.zeros(4)
        assert digest(a) != digest(np.zeros(4, dtype=np.float32))
        assert digest(a) != digest(np.zeros((2, 2)))

    def test_noncontiguous_array_equals_contiguous(self):
        a = np.arange(16.0).reshape(4, 4)
        assert digest(a.T) == digest(np.ascontiguousarray(a.T))

    def test_dataclass_fields(self):
        assert digest(_Cfg()) == digest(_Cfg())
        assert digest(_Cfg()) != digest(_Cfg(depth=101.0))

    def test_complex_and_bytes(self):
        assert canonicalize(1 + 2j)[0] == "c"
        assert digest(b"abc") != digest(b"abd")

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            canonicalize(object())   # no __dict__, no canonical form

    def test_testbed_canonicalises(self):
        from repro.netsim.testbed import Testbed, paper_scenarios

        t1 = Testbed(paper_scenarios()[0], seed=1)
        t2 = Testbed(paper_scenarios()[0], seed=1)
        assert digest(t1) == digest(t2)
        assert digest(t1) != digest(Testbed(paper_scenarios()[1], seed=1))


class TestRegistry:
    def test_resolution(self):
        fn, version = resolve_task_fn("test.double")
        assert fn is _double and version == "1"

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="task function"):
            resolve_task_fn("test.unregistered")

    def test_snapshot_contains_versions(self):
        snap = registered_task_fns()
        assert snap["test.double"] == "1"
        assert snap["test.noise"] == "3"

    def test_double_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            task_fn("test.double")(lambda: None)


class TestTask:
    def test_run_without_seed(self):
        assert Task("test.double", {"x": 21}).run() == {"x": 42}

    def test_run_with_seed_reproducible(self):
        a = Task("test.noise", {"n": 8}, seed=7).run()
        b = Task("test.noise", {"n": 8}, seed=7).run()
        assert np.array_equal(a, b)
        c = Task("test.noise", {"n": 8}, seed=8).run()
        assert not np.array_equal(a, c)

    def test_cache_key_depends_on_everything(self):
        base = Task("test.noise", {"n": 8}, seed=7).cache_key()
        assert Task("test.noise", {"n": 8}, seed=7).cache_key() == base
        assert Task("test.noise", {"n": 9}, seed=7).cache_key() != base
        assert Task("test.noise", {"n": 8}, seed=8).cache_key() != base
        assert Task("test.double", {"n": 8}, seed=7).cache_key() != base

    def test_seed_matches_child_rngs(self):
        # A task seed rebuilds exactly the generator child_rngs yields.
        from repro.utils.rng import child_rngs, child_seeds

        seeds = child_seeds(42, 3)
        rngs = child_rngs(42, 3)
        for seed, rng in zip(seeds, rngs):
            assert np.array_equal(np.random.default_rng(seed).random(5),
                                  rng.random(5))


class TestSpawnSeeds:
    def test_deterministic_and_independent(self):
        assert spawn_seeds(5, 4) == spawn_seeds(5, 4)
        assert spawn_seeds(5, 4) != spawn_seeds(6, 4)
        assert len(set(spawn_seeds(5, 100))) == 100

    def test_prefix_stability(self):
        # Growing the sweep must not reshuffle existing task seeds.
        assert spawn_seeds(5, 10)[:4] == spawn_seeds(5, 4)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)
