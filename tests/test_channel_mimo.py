"""MIMO channel generators: pinhole physics and the MimoLink container."""

import numpy as np
import pytest

from repro.channel import (
    MimoLink,
    correlated_mimo,
    iid_rayleigh_mimo,
    pinhole_mimo,
)
from repro.channel.multipath import exponential_pdp
from repro.phy.mimo import condition_number_db, effective_rank
from repro.utils import make_rng


class TestGenerators:
    def test_iid_unit_power_entries(self):
        rng = make_rng(0)
        h = np.stack([iid_rayleigh_mimo(2, 2, rng) for _ in range(3000)])
        assert np.mean(np.abs(h) ** 2) == pytest.approx(1.0, rel=0.05)

    def test_pure_pinhole_is_rank_one(self):
        rng = make_rng(1)
        for _ in range(20):
            h = pinhole_mimo(2, 2, leakage=0.0, rng=rng)
            sv = np.linalg.svd(h, compute_uv=False)
            assert sv[1] < 1e-10 * sv[0]

    def test_leakage_restores_rank_slowly(self):
        rng = make_rng(2)
        weak = np.mean([condition_number_db(pinhole_mimo(2, 2, 0.02, rng))
                        for _ in range(50)])
        strong = np.mean([condition_number_db(pinhole_mimo(2, 2, 0.5, rng))
                          for _ in range(50)])
        assert weak > strong

    def test_leakage_range_checked(self):
        with pytest.raises(ValueError):
            pinhole_mimo(2, 2, leakage=1.5)

    def test_correlated_reduces_rank(self):
        rng = make_rng(3)
        low = np.mean([effective_rank(correlated_mimo(2, 2, 0.0, 0.0, rng))
                       for _ in range(100)])
        high = np.mean([effective_rank(correlated_mimo(2, 2, 0.95, 0.95, rng))
                        for _ in range(100)])
        assert high < low

    def test_correlation_bounds(self):
        with pytest.raises(ValueError):
            correlated_mimo(2, 2, 1.0, 0.5)


class TestMimoLink:
    def _link(self, rng, kind="rayleigh"):
        pdp = exponential_pdp(4, 30e-9, 50e-9)
        return MimoLink.draw(2, 2, pdp, kind=kind, rng=rng)

    def test_shapes(self):
        rng = make_rng(4)
        link = self._link(rng)
        assert link.num_rx == 2 and link.num_tx == 2
        h = link.frequency_response([-5, 0, 5], 64)
        assert h.shape == (3, 2, 2)

    def test_apply_matches_frequency_response_for_tone(self):
        rng = make_rng(5)
        link = self._link(rng)
        n = np.arange(256)
        k = 7  # subcarrier index in a 64-FFT
        tone = np.exp(2j * np.pi * k * n / 64)
        x = np.stack([tone, np.zeros_like(tone)])
        y = link.apply(x)
        h = link.frequency_response([k], 64)[0]
        # Steady-state (skip transient): output on rx0 = h[0,0] * tone.
        ratio = y[0, 100:200] / tone[100:200]
        assert np.allclose(ratio, h[0, 0], atol=1e-6)

    def test_pinhole_link_shares_keyhole_across_taps(self):
        rng = make_rng(6)
        link = self._link(rng, kind="pinhole")
        agg = link.narrowband()
        assert effective_rank(agg, threshold_db=12.0) == 1

    def test_extra_delay_shifts_output(self):
        rng = make_rng(7)
        pdp = np.array([1.0])
        base = MimoLink.draw(2, 2, pdp, rng=make_rng(7))
        delayed = MimoLink(base.taps, extra_delay_samples=4)
        x = np.zeros((2, 10), dtype=complex)
        x[:, 0] = 1.0
        out = delayed.apply(x)
        assert np.allclose(out[:, :4], 0.0)
        assert not np.allclose(out[:, 4], 0.0)

    def test_scaled(self):
        rng = make_rng(8)
        link = self._link(rng)
        assert np.allclose(link.scaled(0.5).taps, 0.5 * link.taps)

    def test_wrong_stream_count_rejected(self):
        rng = make_rng(9)
        link = self._link(rng)
        with pytest.raises(ValueError):
            link.apply(np.zeros((3, 10), dtype=complex))

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            MimoLink.draw(2, 2, np.array([1.0]), kind="tunnel")
