"""Amplification control: the two ceilings of §3.3/§3.5."""

import pytest

from repro.core import (
    cancellation_cap_db,
    noise_safe_cap_db,
    select_amplification_db,
)


class TestCaps:
    def test_cancellation_cap(self):
        assert cancellation_cap_db(110.0, loop_margin_db=3.0) == 107.0

    def test_noise_cap_paper_example(self):
        # §3.5's worked example: 80 dB attenuation -> 77 dB amplification.
        assert noise_safe_cap_db(80.0) == 77.0

    def test_negative_margins_rejected(self):
        with pytest.raises(ValueError):
            cancellation_cap_db(110.0, loop_margin_db=-1.0)
        with pytest.raises(ValueError):
            noise_safe_cap_db(80.0, noise_margin_db=-1.0)


class TestSelection:
    def test_noise_rule_binds_for_near_clients(self):
        # Close destination: small attenuation caps A first.
        assert select_amplification_db(110.0, 60.0) == 57.0

    def test_cancellation_binds_for_far_clients(self):
        # Deep dead spot: cancellation is the binding ceiling.
        assert select_amplification_db(100.0, 115.0) == 97.0

    def test_blind_repeater_ignores_noise_rule(self):
        # §5.5: amplify "as much as the amount of cancellation".
        assert select_amplification_db(110.0, 60.0, noise_safe=False) == 107.0

    def test_never_negative(self):
        assert select_amplification_db(2.0, 1.0) == 0.0

    def test_paper_noise_example_end_to_end(self):
        # §3.5: with a = 80 dB and A = 77 dB, relayed noise lands at
        # -93 dBm, below the -90 dBm destination floor.
        a = select_amplification_db(110.0, 80.0)
        relay_noise_at_dest = -90.0 + a - 80.0
        assert relay_noise_at_dest <= -90.0
