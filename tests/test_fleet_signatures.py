"""Fleet-scale signature identity: namespaced books, no cross-district
constructive relaying.

A district deployment puts hundreds of (AP, relay) pairs in radio
range of each other, every home numbering its clients from zero.  The
PN-signature layer must therefore guarantee (a) namespaced books draw
collision-free signature sets at fleet scale, and (b) a relay
correlating against its own district's book never arms the
constructive filter for a foreign district's packet.
"""

import numpy as np
import pytest

from repro.ident.controller import RelayController
from repro.ident.pn_signature import (
    SignatureBook,
    SignatureDetector,
    _stable_word,
)
from repro.utils.rng import make_rng

SHARED_SEED = 2014          # every home in the district shares the seed


class TestNamespacedDerivation:
    def test_namespace_none_keeps_historical_bits(self):
        # The pre-fleet derivation, reproduced verbatim: existing books
        # (and every committed artifact built on them) must not move.
        book = SignatureBook(seed=7)
        for client in (0, 1, "sta-3"):
            rng = make_rng(hash((7, client)) % (2**63))
            phases = rng.integers(0, 4, size=book.length)
            expected = np.exp(1j * np.pi * (phases / 2.0 + 0.25))
            assert np.array_equal(book.signature(client), expected)

    def test_namespaced_book_is_deterministic(self):
        a = SignatureBook(seed=SHARED_SEED, namespace="district-3")
        b = SignatureBook(seed=SHARED_SEED, namespace="district-3")
        assert np.array_equal(a.signature(0), b.signature(0))
        assert np.array_equal(a.signature("sta-9"), b.signature("sta-9"))

    def test_namespace_changes_the_sequence(self):
        plain = SignatureBook(seed=SHARED_SEED)
        scoped = SignatureBook(seed=SHARED_SEED, namespace="district-0")
        other = SignatureBook(seed=SHARED_SEED, namespace="district-1")
        assert not np.array_equal(plain.signature(0), scoped.signature(0))
        assert not np.array_equal(scoped.signature(0), other.signature(0))

    def test_stable_word_distinguishes_types(self):
        # "0" (str) and 0 (int) are different clients.
        assert _stable_word(0) != _stable_word("0")
        assert _stable_word("district-1") != _stable_word("district-2")

    def test_signatures_unit_power(self):
        book = SignatureBook(seed=1, namespace="district-5")
        sig = book.signature(4)
        assert np.allclose(np.abs(sig), 1.0)


class TestFleetScaleCollisions:
    def test_hundreds_of_relays_collision_free(self):
        # 300 homes x 4 clients, one shared seed: every signature in
        # the district must be distinct bit-for-bit.
        seen = set()
        for home in range(300):
            book = SignatureBook(seed=SHARED_SEED,
                                 namespace=f"district-{home}")
            for client in range(4):
                seen.add(book.signature(client).tobytes())
        assert len(seen) == 300 * 4

    def test_cross_district_correlation_stays_low(self):
        # Same client id, shared seed, different namespace: the
        # normalised cross-correlation must sit near noise level, far
        # below the detector's 0.5 match threshold.
        mine = SignatureBook(seed=SHARED_SEED, namespace="district-0")
        sig = mine.signature(0)
        for home in range(1, 40):
            foreign = SignatureBook(seed=SHARED_SEED,
                                    namespace=f"district-{home}")
            other = foreign.signature(0)
            rho = np.abs(np.vdot(sig, other)) / len(sig)
            assert rho < 0.5


def _stream_with(field):
    return np.concatenate([np.zeros(16, dtype=complex), field,
                           np.zeros(16, dtype=complex)])


class TestForeignDistrictRejection:
    @pytest.fixture()
    def controller(self):
        ctl = RelayController(
            book=SignatureBook(seed=SHARED_SEED, namespace="district-0"))
        for client in range(4):
            ctl.register_client(client)
        return ctl

    def test_own_clients_are_identified(self, controller):
        for client in range(4):
            stream = _stream_with(controller.book.prepend_field(client))
            decision = controller.decide_downlink(stream, now_s=0.0)
            # Channel state was never sounded, so the controller still
            # refuses to relay — but it named the right client, which
            # is the identification contract under test here.
            assert decision.client_id == client

    def test_foreign_district_never_matches(self, controller):
        # A neighbouring home's AP transmits to *its* client 0 with
        # the same shared seed.  The relay must not find a signature
        # match, and must not arm a filter.
        for home in range(1, 12):
            foreign = SignatureBook(seed=SHARED_SEED,
                                    namespace=f"district-{home}")
            stream = _stream_with(foreign.prepend_field(0))
            decision = controller.decide_downlink(stream, now_s=0.0)
            assert not decision.relay
            assert decision.client_id is None
            assert "no signature match" in decision.reason

    def test_detector_level_rejection(self):
        book = SignatureBook(seed=SHARED_SEED, namespace="district-0")
        detector = SignatureDetector(book, threshold=0.5)
        foreign = SignatureBook(seed=SHARED_SEED, namespace="district-7")
        stream = _stream_with(foreign.prepend_field(2))
        assert detector.identify(stream, client_ids=[0, 1, 2, 3]) is None
