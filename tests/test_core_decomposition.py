"""The §3.4 digital/analog CNF filter split."""

import numpy as np
import pytest

from repro.core import decompose_cnf_filter
from repro.phy.params import WIFI_20MHZ
from repro.utils import make_rng


@pytest.fixture
def freqs():
    return WIFI_20MHZ.subcarrier_freqs_hz()


class TestStructure:
    def test_prototype_dimensions(self, freqs):
        target = np.exp(1j * 0.3) * np.ones_like(freqs, dtype=complex)
        d = decompose_cnf_filter(freqs, target)
        assert d.digital_taps.size == 4
        assert d.analog_line.num_taps == 4
        assert d.digital_rate_hz == 80e6

    def test_latency_budget_respected(self, freqs):
        target = np.exp(-2j * np.pi * freqs * 10e-9)
        d = decompose_cnf_filter(freqs, target)
        # 4 taps at 80 Msps: worst-case 37.5 ns, within the 50 ns budget.
        assert d.worst_case_digital_delay_s() <= 50e-9
        assert d.digital_group_delay_s() <= d.worst_case_digital_delay_s()

    def test_analog_spacing_100ps(self, freqs):
        target = np.ones_like(freqs, dtype=complex)
        d = decompose_cnf_filter(freqs, target)
        assert np.allclose(np.diff(d.analog_line.tap_delays_s), 100e-12)


class TestFitQuality:
    def test_constant_rotation_fits_exactly(self, freqs):
        # The analog stage alone realises a common rotation.
        for phase in (0.3, -1.2, 2.9):
            target = np.exp(1j * phase) * np.ones_like(freqs, dtype=complex)
            d = decompose_cnf_filter(freqs, target)
            assert d.fit_error_db < -25.0

    def test_smooth_ramp_fits_well(self, freqs):
        target = np.exp(-2j * np.pi * freqs * 20e-9)
        d = decompose_cnf_filter(freqs, target)
        assert d.fit_error_db < -15.0

    def test_response_evaluates_cascade(self, freqs):
        rng = make_rng(0)
        target = np.exp(2j * np.pi * rng.random(freqs.size))
        d = decompose_cnf_filter(freqs, target)
        cascade = d.digital_response(freqs) * d.analog_response(freqs)
        assert np.allclose(d.response(freqs), cascade)

    def test_quantisation_costs_little(self, freqs):
        target = np.exp(-2j * np.pi * freqs * 15e-9 + 0.4j)
        ideal = decompose_cnf_filter(freqs, target, quantize=False)
        quant = decompose_cnf_filter(freqs, target, quantize=True)
        assert quant.fit_error_db <= ideal.fit_error_db + 6.0

    def test_weights_prioritise_subcarriers(self, freqs):
        # A 150 ns ramp is far beyond the filter's span, so it cannot be
        # matched everywhere; heavy weights on the first quarter of the
        # band must pull the fit there.
        target = np.exp(-2j * np.pi * freqs * 150e-9)
        quarter = freqs.size // 4
        weights = np.ones(freqs.size)
        weights[:quarter] = 1000.0
        d = decompose_cnf_filter(freqs, target, weights=weights)
        resp = d.response(freqs)
        err_weighted = np.abs(resp[:quarter] - target[:quarter]).mean()
        err_rest = np.abs(resp[quarter:] - target[quarter:]).mean()
        assert err_weighted < err_rest


class TestValidation:
    def test_shape_mismatch(self, freqs):
        with pytest.raises(ValueError):
            decompose_cnf_filter(freqs, np.ones(3, dtype=complex))

    def test_needs_taps(self, freqs):
        with pytest.raises(ValueError):
            decompose_cnf_filter(freqs, np.ones_like(freqs, dtype=complex),
                                 digital_taps=0)

    def test_delay_slack_slides_target(self, freqs):
        base = np.exp(-2j * np.pi * freqs * 5e-9)
        plain = decompose_cnf_filter(freqs, base)
        slid = decompose_cnf_filter(freqs, base, delay_slack_s=10e-9)
        # The slid decomposition approximates a different (more delayed)
        # response; both should fit their own targets decently.
        assert plain.fit_error_db < -10.0
        assert slid.fit_error_db < -10.0
