"""Scheduler: backpressure, fairness, chain pool, conservation."""

import numpy as np
import pytest

from repro.service import (
    ChainPool,
    ClientSession,
    FrameEventKind,
    SchedulerPolicy,
    ServiceScheduler,
    TrafficConfig,
)
from repro.telemetry.collector import TelemetryCollector


def _active_session(sched, session_id="s1", tenant="t", now=0.0, **kwargs):
    session = ClientSession(session_id, tenant=tenant,
                            traffic=TrafficConfig(frame_samples=64),
                            **kwargs)
    assert sched.admit_session(session, now)
    session.activate(now)
    return session


class _StubEntry:
    def __init__(self, key):
        self.key = key
        self.relaying = True
        self.frames = 0

    def advance(self, now_s):
        pass

    def process(self, frame):
        self.frames += 1


class _StubPool:
    """Duck-typed pool: the scheduler needs advance/relaying/process."""

    def __init__(self):
        self._entries = {}

    def entry(self, key="default"):
        return self._entries.setdefault(key, _StubEntry(key))

    def entries(self):
        return list(self._entries.values())

    def attach_storm(self, storm):
        pass


def _stub_scheduler(**policy_kwargs):
    return ServiceScheduler(policy=SchedulerPolicy(**policy_kwargs),
                            pool=_StubPool())


class TestBackpressure:
    def test_queue_full_sheds_with_declared_reason(self):
        sched = _stub_scheduler(queue_high_water=4)
        session = _active_session(sched)
        for i in range(10):
            sched.offer(0.1, session, i)
        assert sched.queue_depth("t") == 4
        shed = [e for e in sched.events if e.kind is FrameEventKind.SHED]
        assert len(shed) == 6
        assert all(e.detail["reason"] == "queue-full" for e in shed)
        sched.check_conservation()

    def test_inactive_session_frames_rejected(self):
        sched = _stub_scheduler()
        session = ClientSession("s1", tenant="t")
        sched.admit_session(session, 0.0)   # SOUNDING, not yet ACTIVE
        assert sched.offer(0.0, session, 0) is False
        event = sched.events[-1]
        assert event.kind is FrameEventKind.REJECTED
        assert event.detail["reason"] == "session-sounding"
        sched.check_conservation()

    def test_admission_control_rejects_at_capacity(self):
        sched = _stub_scheduler(max_sessions=2)
        _active_session(sched, "a")
        _active_session(sched, "b")
        third = ClientSession("c")
        assert sched.admit_session(third, 0.0) is False
        assert third.state.value == "rejected"
        assert sched.rejected_sessions == 1

    def test_flush_sheds_everything_queued(self):
        sched = _stub_scheduler(queue_high_water=100)
        session = _active_session(sched)
        for i in range(7):
            sched.offer(0.0, session, i)
        assert sched.flush(1.0) == 7
        assert sched.queue_depth() == 0
        assert session.shed == 7
        sched.check_conservation()


class TestFairness:
    def _run_saturated(self, weights, frames_per_tenant=60, budget=30):
        sched = _stub_scheduler(queue_high_water=1000, quantum_samples=64)
        sessions = {}
        for name, weight in weights.items():
            sched.tenant(name, weight)
            sessions[name] = _active_session(sched, f"s-{name}",
                                             tenant=name)
        for i in range(frames_per_tenant):
            for name in weights:
                sched.offer(0.0, sessions[name], i)
        sched.dispatch(0.1, max_frames=budget)
        return {name: sessions[name].processed for name in weights}

    def test_equal_weights_share_equally(self):
        served = self._run_saturated({"a": 1.0, "b": 1.0, "c": 1.0},
                                     budget=30)
        assert sum(served.values()) == 30
        assert max(served.values()) - min(served.values()) <= 1

    def test_weighted_tenant_gets_proportional_share(self):
        served = self._run_saturated({"heavy": 3.0, "light": 1.0},
                                     budget=40)
        assert sum(served.values()) == 40
        ratio = served["heavy"] / served["light"]
        assert ratio == pytest.approx(3.0, rel=0.15)

    def test_idle_tenant_banks_no_deficit(self):
        sched = _stub_scheduler(queue_high_water=1000, quantum_samples=64)
        sched.tenant("idle", 1.0)
        busy = _active_session(sched, "busy", tenant="busy")
        for i in range(50):
            sched.offer(0.0, busy, i)
        sched.dispatch(0.1, max_frames=10)
        # The idle tenant was reset each round; once it wakes up it
        # cannot burst past its fair share on banked credit.
        assert sched._tenants["idle"].deficit == 0.0

    def test_dispatch_drains_fully_without_budget(self):
        sched = _stub_scheduler(queue_high_water=1000)
        session = _active_session(sched)
        for i in range(25):
            sched.offer(0.0, session, i)
        assert sched.dispatch(0.1) == 25
        assert sched.queue_depth() == 0
        assert session.processed == 25
        sched.check_conservation()


class TestChainPool:
    def test_same_config_shares_one_chain(self):
        pool = ChainPool(seed=3)
        a = pool.entry("default")
        b = pool.entry("default")
        assert a is b
        assert len(pool.entries()) == 1

    def test_distinct_keys_get_distinct_chains(self):
        pool = ChainPool(seed=3)
        assert pool.entry("c0") is not pool.entry("c1")
        assert len(pool.entries()) == 2

    def test_chains_deterministic_per_seed(self):
        frame = np.ones(64, dtype=complex)
        out_a = ChainPool(seed=3).entry("c0").process(frame)
        out_b = ChainPool(seed=3).entry("c0").process(frame)
        assert np.array_equal(out_a, out_b)
        out_c = ChainPool(seed=4).entry("c0").process(frame)
        assert not np.array_equal(out_a, out_c)

    def test_entry_processes_frames(self):
        entry = ChainPool(seed=3).entry()
        out = entry.process(np.ones(64, dtype=complex))
        assert out.shape == (64,)
        assert entry.frames == 1


class TestDeterminism:
    def _drive(self):
        sched = _stub_scheduler(queue_high_water=8)
        sessions = [_active_session(sched, f"s{i}", tenant=f"t{i % 2}",
                                    seed=i) for i in range(4)]
        for step in range(6):
            for i, session in enumerate(sessions):
                sched.offer(step * 0.01, session, step * 10 + i)
            sched.dispatch(step * 0.01 + 0.005, max_frames=3)
        sched.flush(1.0)
        sched.check_conservation()
        return sched

    def test_event_digest_stable_across_runs(self):
        assert self._drive().event_digest() == self._drive().event_digest()

    def test_event_digest_sensitive_to_history(self):
        sched = self._drive()
        digest = sched.event_digest()
        session = _active_session(sched, "late", now=2.0)
        sched.offer(2.0, session, 0)
        assert sched.event_digest() != digest


class TestTelemetry:
    def test_service_metrics_emitted(self):
        tel = TelemetryCollector(origin="test")
        sched = ServiceScheduler(policy=SchedulerPolicy(queue_high_water=2),
                                 pool=_StubPool(), telemetry=tel)
        session = _active_session(sched)
        for i in range(5):
            sched.offer(0.0, session, i)
        sched.dispatch(0.01)
        counters = tel.metrics.counter_values("service.frames.admitted")
        assert sum(counters.values()) == 5
        shed = tel.metrics.counter_values("service.frames.shed")
        assert sum(shed.values()) == 3
        names = {m["name"] for m in tel.payload()["counters"]}
        assert {"service.frames.admitted", "service.frames.processed",
                "service.sessions.admitted"} <= names
