"""Sample-level MIMO integration: 2x2 PPDUs through the relay."""

import numpy as np
import pytest

from repro.channel import PropagationModel, fig1_home
from repro.core import FastForwardRelay, RelayConfig
from repro.phy import MimoReceiver, Transmitter, TxConfig, WIFI_20MHZ
from repro.utils import awgn_like, make_rng


@pytest.fixture(scope="module")
def scene():
    plan, ap, relay_pos = fig1_home()
    pm = PropagationModel(plan, rms_delay_spread_s=30e-9)
    p = WIFI_20MHZ
    used = p.used_subcarriers()
    client = np.array([4.5, 2.0])  # mid-home

    link = lambda a, b, s: pm.mimo_link(a, b, p.sample_period_s,
                                        num_taps=3, rng=make_rng(s))
    links = (link(ap, client, 30), link(ap, relay_pos, 31),
             link(relay_pos, client, 32))
    relay = FastForwardRelay(RelayConfig())
    relay.configure_mimo_link(*[l.frequency_response(used, 64)
                                for l in links])
    return links, relay


def _run(scene_links, relay, rng, with_relay, mcs=0, bits=None):
    p = WIFI_20MHZ
    L_sd, L_sr, L_rd = scene_links
    cfg = TxConfig(mcs_index=mcs, num_streams=2)
    if bits is None:
        bits = rng.integers(0, 2, 400)
    waves = Transmitter(cfg).transmit(bits) * 10.0  # 20 dBm
    direct = L_sd.apply(waves)
    parts = [direct]
    if with_relay:
        at_relay = L_sr.apply(waves)[:, : waves.shape[1]]
        fwd = relay.process_mimo(at_relay)
        lat = int(round(relay.latency_s() / p.sample_period_s))
        fwd = np.concatenate([np.zeros((2, lat), dtype=complex), fwd],
                             axis=1)
        parts.append(L_rd.apply(fwd))
    n = max(part.shape[1] for part in parts)
    rx = np.zeros((2, n), dtype=complex)
    for part in parts:
        rx[:, : part.shape[1]] += part
    rx = np.concatenate([np.zeros((2, 100), dtype=complex), rx], axis=1)
    rx = rx + awgn_like(rx, 1e-9, rng)
    return bits, MimoReceiver(detection_threshold=0.6).receive(rx)


class TestMimoRelayEndToEnd:
    def test_two_streams_decode_through_relay(self, scene):
        links, relay = scene
        rng = make_rng(1)
        bits, result = _run(links, relay, rng, with_relay=True)
        assert result.success, result.failure_reason
        assert np.array_equal(result.payload_bits, bits)

    def test_relay_improves_measured_snr(self, scene):
        links, relay = scene
        _, without = _run(links, relay, make_rng(2), with_relay=False)
        _, with_relay = _run(links, relay, make_rng(2), with_relay=True)
        assert with_relay.success
        if without.success:
            assert (with_relay.snr_estimate_db
                    > without.snr_estimate_db - 3.0)

    def test_higher_mcs_through_relay(self, scene):
        # The mid-home client supports a faster MCS once the relay's
        # second path firms up both streams.
        links, relay = scene
        rng = make_rng(3)
        bits, result = _run(links, relay, rng, with_relay=True, mcs=3)
        assert result.success, result.failure_reason
        assert np.array_equal(result.payload_bits, bits)

    def test_stream_count_validated(self, scene):
        _, relay = scene
        with pytest.raises(ValueError):
            relay.process_mimo(np.zeros((3, 64), dtype=complex))

    def test_requires_mimo_mode(self):
        relay = FastForwardRelay()
        with pytest.raises(RuntimeError):
            relay.process_mimo(np.zeros((2, 64), dtype=complex))
