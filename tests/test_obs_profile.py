"""The sweep profile verdict: wall-time attribution and flamegraphs."""

import pytest

from repro.exec import Task, run_sweep, task_fn
from repro.obs import profile_payload
from repro.obs.flamegraph import (
    render_flamegraph_html,
    render_flamegraph_svg,
)
from repro.telemetry import TelemetryCollector, use_collector
from repro.telemetry.export import read_jsonl, write_jsonl


@task_fn("test.obs.profile.burn", version="1")
def _burn_task(value, rng=None):
    # Big enough that the sweep wall dwarfs scheduler jitter — the
    # coverage assertion below is about attribution, not timer noise.
    total = 0.0
    for i in range(40000):
        total += i * 0.5
    return {"value": value, "total": total}


def _sweep_payload(jobs=2, backend="thread", n=16):
    tel = TelemetryCollector(origin="profile-test")
    tasks = [Task("test.obs.profile.burn", {"value": i}, seed=300 + i)
             for i in range(n)]
    with use_collector(tel):
        run_sweep(tasks, jobs=jobs, backend=backend, cache=False)
    return tel.payload()


class TestProfilePayload:
    def test_attribution_covers_wall(self):
        report = profile_payload(_sweep_payload())
        assert report.wall_ns > 0
        assert report.coverage >= 0.90
        a = report.attribution
        assert a["attributed_ns"] + a["gap_ns"] == \
            pytest.approx(report.wall_ns)

    def test_names_critical_path_stages(self):
        report = profile_payload(_sweep_payload())
        names = [node.name for node in report.critical_path]
        assert "exec.sweep" in names
        assert "exec.shard" in names
        assert 1 <= len(report.top_stages) <= 3

    def test_concurrency_clamped_to_jobs(self):
        report = profile_payload(_sweep_payload(jobs=2))
        assert 1.0 <= report.concurrency <= 2.0

    def test_cpus_cap_binds(self):
        report = profile_payload(_sweep_payload(jobs=2), cpus=1)
        assert report.concurrency == 1.0

    def test_probe_shard_not_counted_as_lane(self):
        tel = TelemetryCollector(origin="probe-test")
        tasks = [Task("test.obs.profile.burn", {"value": i}, seed=400 + i)
                 for i in range(6)]
        with use_collector(tel):
            run_sweep(tasks, jobs=2, backend="thread", cache=False,
                      chunk_size="auto")
        report = profile_payload(tel.payload())
        # The auto-chunk probe runs inline in the driver; its shard
        # span must not inflate the worker lanes — it is attributed
        # as serial driver time instead.
        probe_lanes = [row for row in report.shards
                       if row["shard"] == "probe"]
        assert not probe_lanes
        assert report.attribution["probe_ns"] > 0
        # Attribution stays a partition of wall even with the probe
        # (coverage on a run this tiny is dominated by pool startup,
        # which lands in the gap — the >=90% gate runs on the bench's
        # full-size sweep).
        a = report.attribution
        assert a["attributed_ns"] + a["gap_ns"] == \
            pytest.approx(report.wall_ns)

    def test_round_trip_preserves_attribution(self, tmp_path):
        payload = _sweep_payload()
        direct = profile_payload(payload)
        path = tmp_path / "run.jsonl"
        write_jsonl(payload, path)
        rt = profile_payload(read_jsonl(path))
        assert rt.as_dict() == direct.as_dict()

    def test_verdict_lines_mention_gap_and_coverage(self):
        lines = profile_payload(_sweep_payload()).verdict_lines()
        text = "\n".join(lines)
        assert "dispatch gap" in text
        assert "attribution coverage" in text
        assert "critical path" in text

    def test_empty_payload(self):
        report = profile_payload(TelemetryCollector().payload())
        assert report.wall_ns == 0.0
        assert report.critical_path == []


class TestFlamegraph:
    def test_svg_is_self_contained(self):
        report = profile_payload(_sweep_payload())
        svg = render_flamegraph_svg(report.stacks, title="test")
        assert svg.startswith("<svg")
        assert "<script" not in svg
        assert "exec.sweep" in svg
        assert "<title>" in svg          # hover tooltips

    def test_html_page_has_no_scripts(self):
        report = profile_payload(_sweep_payload())
        html = render_flamegraph_html(report.stacks, title="test",
                                      verdict_lines=report.verdict_lines())
        assert html.startswith("<!DOCTYPE html>")
        assert "<script" not in html
        assert "dispatch gap" in html

    def test_empty_stacks_render_placeholder(self):
        svg = render_flamegraph_svg({}, title="empty")
        assert svg.startswith("<svg")

    def test_names_escaped(self):
        svg = render_flamegraph_svg({"a<b>;c&d": 100}, title="<esc>")
        assert "a<b>" not in svg
        assert "&lt;" in svg or "a&lt;b&gt;" in svg
