"""Signal math: power, correlation, shifting, EVM."""

import numpy as np
import pytest

from repro.utils import (
    add_signals,
    awgn_like,
    circular_shift,
    evm_db,
    fractional_shift,
    make_rng,
    next_pow2,
    normalize_power,
    normalized_xcorr,
    papr_db,
    rms,
    signal_power,
    xcorr,
)


class TestPower:
    def test_unit_tone(self):
        t = np.exp(1j * np.linspace(0, 20 * np.pi, 1000))
        assert signal_power(t) == pytest.approx(1.0)

    def test_empty_is_zero(self):
        assert signal_power(np.array([])) == 0.0

    def test_rms_of_constant(self):
        assert rms(np.full(10, 3.0 + 4.0j)) == pytest.approx(5.0)

    def test_normalize_power(self):
        rng = make_rng(0)
        x = rng.standard_normal(256) + 1j * rng.standard_normal(256)
        y = normalize_power(x, target_power=2.5)
        assert signal_power(y) == pytest.approx(2.5)

    def test_normalize_zero_signal_raises(self):
        with pytest.raises(ValueError):
            normalize_power(np.zeros(8, dtype=complex))

    def test_papr_constant_envelope(self):
        t = np.exp(1j * np.linspace(0, 7.0, 512))
        assert papr_db(t) == pytest.approx(0.0, abs=1e-9)

    def test_papr_positive_for_multitone(self):
        n = np.arange(256)
        x = np.exp(2j * np.pi * 0.1 * n) + np.exp(2j * np.pi * 0.13 * n)
        assert papr_db(x) > 2.0


class TestAddSignals:
    def test_pads_shorter(self):
        out = add_signals(np.ones(4), np.ones(2))
        assert np.allclose(out, [2, 2, 1, 1])

    def test_requires_an_argument(self):
        with pytest.raises(ValueError):
            add_signals()

    def test_superposition_is_linear(self):
        rng = make_rng(1)
        a = rng.standard_normal(32) + 1j * rng.standard_normal(32)
        b = rng.standard_normal(32) + 1j * rng.standard_normal(32)
        assert np.allclose(add_signals(a, b), a + b)


class TestCorrelation:
    def test_xcorr_peak_at_embedding_offset(self):
        rng = make_rng(2)
        template = rng.standard_normal(32) + 1j * rng.standard_normal(32)
        x = np.zeros(128, dtype=complex)
        x[40:72] = template
        corr = np.abs(xcorr(x, template))
        assert np.argmax(corr) == 40

    def test_normalized_xcorr_is_one_at_match(self):
        rng = make_rng(3)
        template = rng.standard_normal(64) + 1j * rng.standard_normal(64)
        x = np.concatenate([np.zeros(10, dtype=complex), 5.0 * template,
                            np.zeros(10, dtype=complex)])
        corr = normalized_xcorr(x, template)
        assert corr[10] == pytest.approx(1.0, abs=1e-9)

    def test_normalized_xcorr_low_for_noise(self):
        rng = make_rng(4)
        template = rng.standard_normal(64) + 1j * rng.standard_normal(64)
        x = rng.standard_normal(512) + 1j * rng.standard_normal(512)
        assert normalized_xcorr(x, template).max() < 0.6

    def test_template_longer_than_signal_rejected(self):
        with pytest.raises(ValueError):
            xcorr(np.ones(4), np.ones(8))


class TestShifts:
    def test_circular_shift_rolls(self):
        x = np.arange(5, dtype=complex)
        assert np.allclose(circular_shift(x, 2), [3, 4, 0, 1, 2])

    def test_fractional_shift_integer_matches_roll(self):
        rng = make_rng(5)
        x = rng.standard_normal(64) + 1j * rng.standard_normal(64)
        # Band-limit so circular frequency shifting is exact.
        spec = np.fft.fft(x)
        spec[16:48] = 0
        x = np.fft.ifft(spec)
        shifted = fractional_shift(x, 3.0)
        assert np.allclose(shifted, np.roll(x, 3), atol=1e-9)

    def test_fractional_shift_half_sample_energy_preserved(self):
        rng = make_rng(6)
        x = rng.standard_normal(128) + 1j * rng.standard_normal(128)
        y = fractional_shift(x, 0.5)
        assert signal_power(y) == pytest.approx(signal_power(x), rel=1e-9)


class TestNoiseAndEvm:
    def test_awgn_power(self):
        rng = make_rng(7)
        noise = awgn_like(np.zeros(200000), 0.25, rng)
        assert signal_power(noise) == pytest.approx(0.25, rel=0.02)

    def test_awgn_rejects_negative_power(self):
        with pytest.raises(ValueError):
            awgn_like(np.zeros(4), -1.0, make_rng(0))

    def test_evm_perfect_is_minus_inf(self):
        x = np.ones(16, dtype=complex)
        assert evm_db(x, x) == -np.inf

    def test_evm_matches_snr(self):
        rng = make_rng(8)
        ref = np.exp(2j * np.pi * rng.random(100000))
        noisy = ref + awgn_like(ref, 0.01, rng)
        assert evm_db(noisy, ref) == pytest.approx(-20.0, abs=0.3)

    def test_evm_shape_mismatch(self):
        with pytest.raises(ValueError):
            evm_db(np.ones(4), np.ones(5))


class TestNextPow2:
    def test_small_values(self):
        assert next_pow2(0) == 1
        assert next_pow2(1) == 1
        assert next_pow2(2) == 2
        assert next_pow2(3) == 4

    def test_exact_powers_are_fixed_points(self):
        for k in range(16):
            assert next_pow2(2**k) == 2**k

    def test_one_past_a_power_doubles(self):
        for k in range(1, 16):
            assert next_pow2(2**k + 1) == 2**(k + 1)

    def test_result_bounds(self):
        for n in range(1, 5000, 37):
            m = next_pow2(n)
            assert m >= n
            assert m & (m - 1) == 0
            assert m < 2 * n or n <= 1
