"""End-to-end transmitter -> channel -> receiver tests."""

import numpy as np
import pytest

from repro.channel.multipath import MultipathChannel
from repro.phy import Receiver, Transmitter, TxConfig, WIFI_20MHZ, apply_cfo
from repro.utils import awgn_like, make_rng


def _roundtrip(rng, mcs=0, snr_db=25.0, cfo_hz=0.0, channel=None,
               num_bits=400, prefix=150):
    cfg = TxConfig(mcs_index=mcs)
    tx = Transmitter(cfg)
    bits = rng.integers(0, 2, num_bits)
    wave = tx.transmit(bits)[0]
    if channel is not None:
        wave = channel.apply_trimmed(wave)
    wave = np.concatenate([np.zeros(prefix, dtype=complex), wave,
                           np.zeros(50, dtype=complex)])
    if cfo_hz:
        wave = apply_cfo(wave, cfo_hz, WIFI_20MHZ.bandwidth_hz)
    noise_power = 10.0 ** (-snr_db / 10.0)
    wave = wave + awgn_like(wave, noise_power, rng)
    result = Receiver().receive(wave)
    return bits, result


class TestBasicRoundtrip:
    @pytest.mark.parametrize("mcs", [0, 2, 4, 7])
    def test_decodes_at_high_snr(self, mcs):
        rng = make_rng(10 + mcs)
        bits, result = _roundtrip(rng, mcs=mcs, snr_db=30.0)
        assert result.success, result.failure_reason
        assert np.array_equal(result.payload_bits, bits)

    def test_reports_frame_fields(self):
        rng = make_rng(20)
        bits, result = _roundtrip(rng, mcs=3)
        assert result.frame.mcs_index == 3
        assert result.frame.length_bits == bits.size

    def test_fails_gracefully_at_very_low_snr(self):
        rng = make_rng(21)
        _, result = _roundtrip(rng, mcs=7, snr_db=3.0)
        assert not result.success
        assert result.failure_reason != ""

    def test_mcs0_survives_low_snr(self):
        rng = make_rng(22)
        bits, result = _roundtrip(rng, mcs=0, snr_db=10.0)
        assert result.success, result.failure_reason
        assert np.array_equal(result.payload_bits, bits)


class TestWithImpairments:
    def test_cfo_corrected(self):
        rng = make_rng(23)
        bits, result = _roundtrip(rng, mcs=2, snr_db=25.0, cfo_hz=80e3)
        assert result.success, result.failure_reason
        assert np.array_equal(result.payload_bits, bits)
        assert result.cfo_hz == pytest.approx(80e3, abs=3e3)

    def test_multipath_within_cp(self):
        rng = make_rng(24)
        chan = MultipathChannel(np.array([1.0, 0.0, 0.3 - 0.2j, 0.1j]))
        bits, result = _roundtrip(rng, mcs=2, snr_db=28.0, channel=chan)
        assert result.success, result.failure_reason
        assert np.array_equal(result.payload_bits, bits)

    def test_channel_estimate_returned(self):
        # The detector's timing offset appears as a linear phase ramp in
        # the channel estimate (standard OFDM behaviour — it cancels in
        # equalisation), so compare magnitudes only.
        rng = make_rng(25)
        chan = MultipathChannel(np.array([0.8, 0.0, 0.3]))
        _, result = _roundtrip(rng, mcs=0, snr_db=30.0, channel=chan)
        truth = chan.frequency_response(WIFI_20MHZ.used_subcarriers(), 64)
        assert np.abs(np.abs(result.channel) - np.abs(truth)).max() < 0.15

    def test_snr_estimate_sane(self):
        rng = make_rng(26)
        _, result = _roundtrip(rng, mcs=0, snr_db=20.0)
        assert result.snr_estimate_db == pytest.approx(20.0, abs=5.0)


class TestTxConfigValidation:
    def test_invalid_mcs(self):
        with pytest.raises(ValueError):
            TxConfig(mcs_index=42)

    def test_invalid_seed(self):
        with pytest.raises(ValueError):
            TxConfig(scrambler_seed=0)

    def test_two_stream_waveform_shape(self):
        cfg = TxConfig(mcs_index=0, num_streams=2)
        tx = Transmitter(cfg)
        rng = make_rng(27)
        waves = tx.transmit(rng.integers(0, 2, 200))
        assert waves.shape[0] == 2
        assert waves.shape[1] > 0

    def test_signature_prepended(self):
        rng = make_rng(28)
        cfg = TxConfig(mcs_index=0)
        tx = Transmitter(cfg)
        sig = np.exp(2j * np.pi * rng.random(80))
        with_sig = tx.transmit(np.zeros(64, dtype=int), signature=sig)[0]
        without = tx.transmit(np.zeros(64, dtype=int))[0]
        assert with_sig.size == without.size + 80
        assert np.allclose(with_sig[:80], sig)
        assert np.allclose(with_sig[80:], without)
