"""Probe aggregates are bit-identical across executor backends.

The determinism contract ``repro.probes`` inherits from ``repro.exec``
and ``repro.telemetry``: every published ``probes.*`` number — the
per-client summaries, the experiment-level aggregate and the merged
telemetry snapshot — must be equal whatever the worker count, backend
or chunk layout, because every float is dyadic-quantised (exact,
associative sums) and decimation keys to absolute stream position.
"""

from repro.netsim import link_health_experiment
from repro.telemetry import TelemetryCollector, use_collector

_KW = dict(num_clients=4, seed=2014, n_symbols=12)


def _run(jobs, backend=None):
    tel = TelemetryCollector(origin=f"probes-{backend}-{jobs}")
    with use_collector(tel):
        data = link_health_experiment(jobs=jobs, backend=backend, **_KW)
    return data, tel.deterministic_snapshot()


class TestBackendInvariance:
    def test_thread_matches_serial(self):
        serial, serial_snap = _run(jobs=1)
        thread, thread_snap = _run(jobs=4, backend="thread")
        assert serial["probes"] == thread["probes"]       # bitwise dict ==
        assert serial["per_client"] == thread["per_client"]
        assert serial_snap == thread_snap

    def test_process_matches_serial(self):
        serial, serial_snap = _run(jobs=1)
        proc, proc_snap = _run(jobs=4, backend="process")
        assert serial["probes"] == proc["probes"]
        assert serial["per_client"] == proc["per_client"]
        assert serial_snap == proc_snap

    def test_job_count_irrelevant(self):
        two, two_snap = _run(jobs=2, backend="process")
        four, four_snap = _run(jobs=4, backend="process")
        assert two["probes"] == four["probes"]
        assert two_snap == four_snap


class TestPublishedMetricsDeterminism:
    def test_probe_metric_families_present_and_merged(self):
        _, snap = _run(jobs=3, backend="thread")
        gauge_names = {g[0] for g in snap["gauges"]}
        assert "probes.evm.rms_db" in gauge_names
        assert "probes.spectrum.cancellation_depth_db" in gauge_names
        assert "probes.latency.cumulative_ns" in gauge_names
        counter_names = {c[0] for c in snap["counters"]}
        assert "probes.samples" in counter_names
        assert "probes.segments_analyzed" in counter_names

    def test_fault_run_is_deterministic_too(self):
        a = link_health_experiment(fault="residual-si", jobs=1, **_KW)
        b = link_health_experiment(fault="residual-si", jobs=4,
                                   backend="thread", **_KW)
        assert a["probes"] == b["probes"]
        # ...and genuinely different from the healthy run.
        healthy = link_health_experiment(jobs=1, **_KW)
        assert a["probes"] != healthy["probes"]
