"""The channel-sounding protocol (§4.2)."""

import numpy as np
import pytest

from repro.ident import SoundingProtocol
from repro.utils import make_rng


def _h(rng, n=8):
    return rng.standard_normal(n) + 1j * rng.standard_normal(n)


@pytest.fixture
def proto():
    return SoundingProtocol()


class TestBookkeeping:
    def test_needs_all_three_channels(self, proto):
        rng = make_rng(0)
        assert proto.channels_for("c1", now_s=0.0) is None
        proto.record_ap_packet(_h(rng), now_s=0.0)
        assert proto.channels_for("c1", now_s=0.0) is None
        proto.record_poll_reply("c1", _h(rng), _h(rng), now_s=0.01)
        assert proto.channels_for("c1", now_s=0.02) is not None

    def test_downlink_triple_order(self, proto):
        rng = make_rng(1)
        ap_relay = _h(rng)
        ap_client = _h(rng)
        client_relay = _h(rng)
        proto.record_ap_packet(ap_relay, now_s=0.0)
        proto.record_poll_reply("c1", ap_client, client_relay, now_s=0.0)
        h_sd, h_sr, h_rd = proto.channels_for("c1", now_s=0.0)
        assert np.allclose(h_sd, ap_client)
        assert np.allclose(h_sr, ap_relay)
        assert np.allclose(h_rd, client_relay)  # reciprocity

    def test_uplink_uses_reciprocity(self, proto):
        rng = make_rng(2)
        ap_relay = _h(rng)
        ap_client = _h(rng)
        client_relay = _h(rng)
        proto.record_ap_packet(ap_relay, now_s=0.0)
        proto.record_poll_reply("c1", ap_client, client_relay, now_s=0.0)
        h_sd, h_sr, h_rd = proto.channels_for("c1", now_s=0.0,
                                              direction="uplink")
        assert np.allclose(h_sd, ap_client)   # reciprocal direct channel
        assert np.allclose(h_sr, client_relay)
        assert np.allclose(h_rd, ap_relay)

    def test_unknown_direction(self, proto):
        rng = make_rng(3)
        proto.record_ap_packet(_h(rng), 0.0)
        proto.record_poll_reply("c1", _h(rng), _h(rng), 0.0)
        with pytest.raises(ValueError):
            proto.channels_for("c1", 0.0, direction="sideways")


class TestStaleness:
    def test_stale_reports_expire(self, proto):
        rng = make_rng(4)
        proto.record_ap_packet(_h(rng), now_s=0.0)
        proto.record_poll_reply("c1", _h(rng), _h(rng), now_s=0.0)
        # Fresh within 3 sounding intervals (150 ms), stale after.
        assert proto.channels_for("c1", now_s=0.10) is not None
        assert proto.channels_for("c1", now_s=0.20) is None

    def test_refresh_resets_clock(self, proto):
        rng = make_rng(5)
        proto.record_ap_packet(_h(rng), now_s=0.0)
        proto.record_poll_reply("c1", _h(rng), _h(rng), now_s=0.0)
        proto.record_ap_packet(_h(rng), now_s=0.2)
        proto.record_poll_reply("c1", _h(rng), _h(rng), now_s=0.2)
        assert proto.channels_for("c1", now_s=0.3) is not None

    def test_sounding_cadence_50ms(self, proto):
        assert proto.next_sounding_due_s(1.0) == pytest.approx(1.05)


class TestClientTracking:
    def test_known_clients(self, proto):
        rng = make_rng(6)
        proto.record_poll_reply("c2", _h(rng), _h(rng), 0.0)
        proto.record_poll_reply("c1", _h(rng), _h(rng), 0.0)
        assert proto.known_clients() == ["c1", "c2"]

    def test_relay_not_listed_as_client(self, proto):
        rng = make_rng(7)
        proto.record_ap_packet(_h(rng), 0.0)
        assert proto.known_clients() == []


class TestNeverArrivedReports:
    """Regression: polling a client before any reply must not raise."""

    def test_report_age_is_infinite_when_missing(self, proto):
        import math
        age = proto.report_age_s(("ap", "ghost"), now_s=1.0)
        assert math.isinf(age) and age > 0

    def test_client_polled_before_any_reply(self, proto):
        import math
        # The regression scenario: the relay asks about a client that
        # has never answered a sounding poll.  The answer is "infinitely
        # stale", never an exception.
        assert math.isinf(proto.client_age_s("newcomer", now_s=0.5))
        assert proto.channels_for("newcomer", now_s=0.5) is None

    def test_partial_triple_is_still_infinite(self, proto):
        import math
        rng = make_rng(11)
        proto.record_ap_packet(_h(rng), now_s=0.0)   # backhaul only
        assert math.isinf(proto.client_age_s("c9", now_s=0.1))

    def test_full_triple_gives_finite_worst_age(self, proto):
        rng = make_rng(12)
        proto.record_ap_packet(_h(rng), now_s=0.00)
        proto.record_poll_reply("c1", _h(rng), _h(rng), now_s=0.04)
        # Worst ingredient is the 0.00 s backhaul report.
        assert proto.client_age_s("c1", now_s=0.10) == pytest.approx(0.10)

    def test_never_classmethod_is_infinitely_old(self):
        import math
        from repro.ident.sounding import ChannelReport
        report = ChannelReport.never(("ap", "c1"))
        assert math.isinf(report.age_s(0.0))
        assert report.channel.size == 0

    def test_age_does_not_apply_staleness_cutoff(self, proto):
        rng = make_rng(13)
        proto.record_poll_reply("c1", _h(rng), _h(rng), now_s=0.0)
        # Far beyond the staleness cutoff: channels_for refuses, but
        # the raw age is still reported for the health monitor.
        assert proto.channels_for("c1", now_s=9.0) is None
        age = proto.report_age_s(("ap", "c1"), now_s=9.0)
        assert age == pytest.approx(9.0)
