"""The channel-sounding protocol (§4.2)."""

import numpy as np
import pytest

from repro.ident import SoundingProtocol
from repro.utils import make_rng


def _h(rng, n=8):
    return rng.standard_normal(n) + 1j * rng.standard_normal(n)


@pytest.fixture
def proto():
    return SoundingProtocol()


class TestBookkeeping:
    def test_needs_all_three_channels(self, proto):
        rng = make_rng(0)
        assert proto.channels_for("c1", now_s=0.0) is None
        proto.record_ap_packet(_h(rng), now_s=0.0)
        assert proto.channels_for("c1", now_s=0.0) is None
        proto.record_poll_reply("c1", _h(rng), _h(rng), now_s=0.01)
        assert proto.channels_for("c1", now_s=0.02) is not None

    def test_downlink_triple_order(self, proto):
        rng = make_rng(1)
        ap_relay = _h(rng)
        ap_client = _h(rng)
        client_relay = _h(rng)
        proto.record_ap_packet(ap_relay, now_s=0.0)
        proto.record_poll_reply("c1", ap_client, client_relay, now_s=0.0)
        h_sd, h_sr, h_rd = proto.channels_for("c1", now_s=0.0)
        assert np.allclose(h_sd, ap_client)
        assert np.allclose(h_sr, ap_relay)
        assert np.allclose(h_rd, client_relay)  # reciprocity

    def test_uplink_uses_reciprocity(self, proto):
        rng = make_rng(2)
        ap_relay = _h(rng)
        ap_client = _h(rng)
        client_relay = _h(rng)
        proto.record_ap_packet(ap_relay, now_s=0.0)
        proto.record_poll_reply("c1", ap_client, client_relay, now_s=0.0)
        h_sd, h_sr, h_rd = proto.channels_for("c1", now_s=0.0,
                                              direction="uplink")
        assert np.allclose(h_sd, ap_client)   # reciprocal direct channel
        assert np.allclose(h_sr, client_relay)
        assert np.allclose(h_rd, ap_relay)

    def test_unknown_direction(self, proto):
        rng = make_rng(3)
        proto.record_ap_packet(_h(rng), 0.0)
        proto.record_poll_reply("c1", _h(rng), _h(rng), 0.0)
        with pytest.raises(ValueError):
            proto.channels_for("c1", 0.0, direction="sideways")


class TestStaleness:
    def test_stale_reports_expire(self, proto):
        rng = make_rng(4)
        proto.record_ap_packet(_h(rng), now_s=0.0)
        proto.record_poll_reply("c1", _h(rng), _h(rng), now_s=0.0)
        # Fresh within 3 sounding intervals (150 ms), stale after.
        assert proto.channels_for("c1", now_s=0.10) is not None
        assert proto.channels_for("c1", now_s=0.20) is None

    def test_refresh_resets_clock(self, proto):
        rng = make_rng(5)
        proto.record_ap_packet(_h(rng), now_s=0.0)
        proto.record_poll_reply("c1", _h(rng), _h(rng), now_s=0.0)
        proto.record_ap_packet(_h(rng), now_s=0.2)
        proto.record_poll_reply("c1", _h(rng), _h(rng), now_s=0.2)
        assert proto.channels_for("c1", now_s=0.3) is not None

    def test_sounding_cadence_50ms(self, proto):
        assert proto.next_sounding_due_s(1.0) == pytest.approx(1.05)


class TestClientTracking:
    def test_known_clients(self, proto):
        rng = make_rng(6)
        proto.record_poll_reply("c2", _h(rng), _h(rng), 0.0)
        proto.record_poll_reply("c1", _h(rng), _h(rng), 0.0)
        assert proto.known_clients() == ["c1", "c2"]

    def test_relay_not_listed_as_client(self, proto):
        rng = make_rng(7)
        proto.record_ap_packet(_h(rng), 0.0)
        assert proto.known_clients() == []
