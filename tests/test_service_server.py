"""The service runtime: pump, asyncio shell, health output, load tests."""

import json
import os

import pytest

from repro.service import (
    LoadTestConfig,
    RelayService,
    ServeConfig,
    ServiceStatus,
    build_service,
    latency_summary,
    refresh_probes,
    run_loadtest,
    run_once,
)
from repro.service.session import SessionState


def _small_config(**kwargs):
    base = dict(sessions=6, tenants=2, chains=2, seed=11,
                rate_fps=40.0, duration_s=0.2)
    base.update(kwargs)
    return ServeConfig(**base)


class TestPump:
    def test_run_once_closes_every_session_and_conserves(self):
        pump, tel = run_once(_small_config())
        assert all(s.state is SessionState.CLOSED for s in pump.sessions)
        pump.scheduler.check_conservation()
        assert pump.scheduler.processed > 0
        assert pump.scheduler.queue_depth() == 0

    def test_two_runs_same_seed_identical_event_logs(self):
        pump_a, _ = run_once(_small_config())
        pump_b, _ = run_once(_small_config())
        assert pump_a.scheduler.event_digest() \
            == pump_b.scheduler.event_digest()

    def test_different_seed_different_event_log(self):
        pump_a, _ = run_once(_small_config(seed=11))
        pump_b, _ = run_once(_small_config(seed=12))
        assert pump_a.scheduler.event_digest() \
            != pump_b.scheduler.event_digest()

    def test_sessions_admitted_before_activation(self):
        pump, _ = run_once(_small_config())
        for session in pump.sessions:
            kinds = [e.kind.value for e in session.events]
            assert kinds.index("admitted") < kinds.index("activated")

    def test_capacity_cap_limits_per_tick_dispatch(self):
        pump, _ = run_once(_small_config(capacity_per_tick=2))
        # The pump cannot have served more than its budget per tick.
        assert pump.scheduler.processed <= 2 * pump.ticks

    def test_sustains_100_concurrent_sessions_no_unexplained_loss(self):
        # The acceptance headline, sized for the test suite: every
        # admitted frame is processed or shed for a declared reason.
        pump, _ = run_once(_small_config(sessions=100, tenants=4,
                                         chains=2, duration_s=0.2,
                                         rate_fps=20.0))
        sched = pump.scheduler
        sched.check_conservation()
        assert sum(1 for s in pump.sessions
                   if s.state is SessionState.CLOSED) == 100
        assert sched.admitted == sched.processed + sched.shed
        reasons = {e.detail["reason"] for e in sched.events
                   if e.kind.value == "shed"}
        assert reasons <= {"queue-full", "half-duplex", "drain"}


class TestService:
    def test_asyncio_shell_matches_virtual_run(self):
        # The asyncio wrapper drives the identical pump, so the final
        # ledger must agree with a pure virtual-time run.
        config = _small_config(tick_s=0.002)
        pump_virtual, _ = run_once(config)
        pump_live, _ = build_service(config)
        RelayService(pump_live).serve_forever()
        assert pump_live.scheduler.offered \
            == pump_virtual.scheduler.offered
        assert pump_live.scheduler.processed \
            == pump_virtual.scheduler.processed
        pump_live.scheduler.check_conservation()

    def test_request_stop_drains_cleanly(self):
        import asyncio

        pump, _ = build_service(_small_config(duration_s=5.0))
        service = RelayService(pump)

        async def run_then_stop():
            task = asyncio.ensure_future(service.run())
            await asyncio.sleep(0.05)
            service.request_stop()
            await task

        asyncio.run(run_then_stop())
        pump.scheduler.check_conservation()
        assert pump.scheduler.queue_depth() == 0
        assert all(s.state in (SessionState.CLOSED, SessionState.PENDING)
                   for s in pump.sessions)


class TestHealth:
    def test_status_capture_reflects_ledger(self):
        pump, tel = run_once(_small_config())
        status = ServiceStatus.capture(pump.scheduler, pump.now_s,
                                       telemetry=tel)
        sched = pump.scheduler
        assert status.frames["offered"] == sched.offered
        assert status.frames["processed"] == sched.processed
        assert status.sessions["by_state"]["closed"] == len(pump.sessions)
        assert status.latency["queue"]["count"] == sched.processed
        assert {c["key"] for c in status.chains} \
            == {"chain-0", "chain-1"}

    def test_status_dir_written_atomically(self, tmp_path):
        out = tmp_path / "status"
        pump, tel = run_once(_small_config(status_interval_s=0.05),
                             status_dir=out)
        status = json.loads((out / "status.json").read_text())
        assert status["frames"]["offered"] == pump.scheduler.offered
        html = (out / "link_health.html").read_text()
        assert "<html" in html
        assert "probes." in html or "service" in html
        # No temp files left behind by the atomic swap.
        assert all(not name.startswith(".status-")
                   and not name.endswith(".tmp")
                   for name in os.listdir(out))

    def test_periodic_snapshots_overwrite_one_file(self, tmp_path):
        out = tmp_path / "status"
        run_once(_small_config(status_interval_s=0.02), status_dir=out)
        assert sorted(os.listdir(out)) == ["link_health.html",
                                           "series.jsonl",
                                           "status.json"]

    def test_refresh_probes_populates_probe_metrics(self):
        from repro.telemetry.collector import TelemetryCollector

        pump, _ = build_service(_small_config())
        tel = TelemetryCollector(origin="probe-test")
        pump.scheduler.pool.entry("chain-0")
        assert refresh_probes(pump.scheduler.pool, telemetry=tel) >= 1
        names = {g["name"] for g in tel.payload()["gauges"]}
        assert any(name.startswith("probes.") for name in names)

    def test_latency_summary_empty_and_filled(self):
        empty = latency_summary([])
        assert empty == {"count": 0, "p50_ms": 0.0, "p99_ms": 0.0,
                         "max_ms": 0.0}
        filled = latency_summary([0.001, 0.002, 0.100])
        assert filled["count"] == 3
        assert filled["max_ms"] == pytest.approx(100.0)
        assert filled["p50_ms"] == pytest.approx(2.0)


class TestLoadTest:
    def test_saturating_run_sheds_fairly_and_conserves(self):
        report, pump = run_loadtest(LoadTestConfig.saturating(
            sessions=48, tenants=4, duration_s=0.4, capacity_per_tick=5,
            queue_high_water=24))
        assert report.conserved
        assert report.deterministic
        assert report.frames["shed"] > 0
        assert set(report.shed_reasons) <= {"queue-full", "half-duplex",
                                            "drain"}
        # Equal-weight tenants within 20% of fair share (the CI gate).
        assert report.fairness["max_deviation"] < 0.20
        assert report.sessions["closed"] == 48

    def test_report_round_trips_to_json(self):
        report, _ = run_loadtest(LoadTestConfig(
            serve=_small_config(), check_determinism=False))
        blob = json.dumps(report.as_dict())
        back = json.loads(blob)
        assert back["frames"]["offered"] == report.frames["offered"]
        assert back["event_digest"] == report.event_digest
        assert back["deterministic"] is None

    def test_storm_scenario_reports_ladder_activity(self):
        report, pump = run_loadtest(LoadTestConfig(
            serve=_small_config(sessions=8, duration_s=0.3,
                                rate_fps=60.0, storm_rate_per_s=20.0),
            check_determinism=False))
        assert report.supervisor["si_jumps"] > 0
        assert report.supervisor["mutes"] > 0
        assert report.conserved
