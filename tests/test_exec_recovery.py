"""Fault-tolerant dispatch: retry policy, ledger, backoff, quarantine."""

import numpy as np
import pytest

from repro.exec import (
    BACKEND_LADDER,
    FailureLedger,
    ResultCache,
    RetryPolicy,
    Task,
    TaskFailure,
    TaskTimeoutError,
    WorkerCrashError,
    next_backend,
    run_sweep,
    task_fn,
)
from repro.telemetry.collector import TelemetryCollector, use_collector

_FLAKY_CALLS = {}


@task_fn("recovery-test.flaky", version="1")
def _flaky(x, fail_times=0):
    calls = _FLAKY_CALLS.get(x, 0)
    _FLAKY_CALLS[x] = calls + 1
    if calls < fail_times:
        raise RuntimeError(f"flaky task {x} attempt {calls}")
    return {"x": x}


@task_fn("recovery-test.poisoned", version="1")
def _poisoned(x, bad=()):
    if x in tuple(bad):
        raise ValueError(f"task {x} is poison")
    return {"x": x}


@task_fn("recovery-test.draw", version="1")
def _draw(n, rng=None):
    return {"v": rng.standard_normal(n)}


@pytest.fixture(autouse=True)
def _reset_flaky():
    _FLAKY_CALLS.clear()
    yield
    _FLAKY_CALLS.clear()


class TestPolicyResolution:
    def test_defaults_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_MAX_RETRIES", raising=False)
        monkeypatch.delenv("REPRO_TASK_TIMEOUT", raising=False)
        policy = RetryPolicy.resolve()
        assert not policy.enabled
        assert not policy.quarantine_enabled

    def test_env_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_RETRIES", "3")
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "2.5")
        policy = RetryPolicy.resolve()
        assert policy.max_retries == 3
        assert policy.task_timeout_s == 2.5
        assert policy.enabled and policy.quarantine_enabled

    def test_kwargs_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_RETRIES", "3")
        policy = RetryPolicy.resolve(max_retries=1)
        assert policy.max_retries == 1

    def test_quarantine_override(self):
        assert not RetryPolicy.resolve(max_retries=2,
                                       quarantine=False).quarantine_enabled
        # quarantine=True alone marks the policy configured.
        assert RetryPolicy.resolve(quarantine=True).quarantine_enabled

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(task_timeout_s=0.0)


class TestBackoff:
    def test_deterministic_across_instances(self):
        a = RetryPolicy(max_retries=5, seed=7)
        b = RetryPolicy(max_retries=5, seed=7)
        delays = [(i, f, a.backoff_s(i, f))
                  for i in range(3) for f in range(1, 4)]
        for i, f, delay in delays:
            assert b.backoff_s(i, f) == delay

    def test_exponential_with_cap(self):
        policy = RetryPolicy(max_retries=8, backoff_base_s=0.1,
                             backoff_max_s=0.4, jitter=0.0)
        assert policy.backoff_s(0, 1) == pytest.approx(0.1)
        assert policy.backoff_s(0, 2) == pytest.approx(0.2)
        assert policy.backoff_s(0, 3) == pytest.approx(0.4)
        assert policy.backoff_s(0, 5) == pytest.approx(0.4)   # capped

    def test_jitter_bounded_and_seed_sensitive(self):
        jittered = RetryPolicy(max_retries=2, jitter=0.5, seed=1)
        base = RetryPolicy(max_retries=2, jitter=0.0)
        for index in range(5):
            lo = base.backoff_s(index, 1)
            assert lo <= jittered.backoff_s(index, 1) <= 1.5 * lo
        other = RetryPolicy(max_retries=2, jitter=0.5, seed=2)
        assert any(jittered.backoff_s(i, 1) != other.backoff_s(i, 1)
                   for i in range(5))


class TestLedger:
    def test_budget_then_give_up(self):
        ledger = FailureLedger(RetryPolicy(max_retries=2))
        err = RuntimeError("nope")
        assert ledger.charge(0, "exception", err) == "retry"
        assert ledger.charge(0, "exception", err) == "retry"
        assert ledger.charge(0, "exception", err) == "give-up"
        assert ledger.failures(0) == 3

    def test_crash_budget_separate(self):
        # max_retries=0 but crashes still get their own budget.
        ledger = FailureLedger(RetryPolicy(max_retries=0, crash_retries=2))
        assert ledger.charge(1, "worker-crash", "died") == "retry"
        assert ledger.charge(1, "worker-crash", "died") == "retry"
        assert ledger.charge(1, "worker-crash", "died") == "give-up"
        # ...while a plain exception gives up immediately.
        assert ledger.charge(2, "exception",
                             RuntimeError("x")) == "give-up"

    def test_final_error_prefers_original_exception(self):
        ledger = FailureLedger(RetryPolicy(max_retries=0))
        original = ValueError("the real problem")
        ledger.charge(0, "exception", original)
        assert ledger.final_error(0) is original
        ledger.charge(1, "timeout", "too slow")
        assert isinstance(ledger.final_error(1), TaskTimeoutError)
        ledger.charge(2, "worker-crash", "died")
        assert isinstance(ledger.final_error(2), WorkerCrashError)

    def test_failure_record_history(self):
        ledger = FailureLedger(RetryPolicy(max_retries=1))
        ledger.charge(3, "worker-crash", "died")
        ledger.charge(3, "exception", RuntimeError("then raised"))
        record = ledger.failure_record(3, "some.fn")
        assert isinstance(record, TaskFailure)
        assert record.index == 3 and record.attempts == 2
        assert record.kind == "exception"
        assert [kind for kind, _ in record.history] == ["worker-crash",
                                                        "exception"]
        assert "quarantined after 2" in str(record)


class TestLadder:
    def test_rungs(self):
        assert BACKEND_LADDER == ("process", "thread", "serial")
        assert next_backend("process") == "thread"
        assert next_backend("thread") == "serial"
        assert next_backend("serial") is None
        assert next_backend("bogus") is None


class TestRetrySweeps:
    def test_flaky_task_retried_to_success_serial(self):
        tasks = [Task("recovery-test.flaky",
                      {"x": i, "fail_times": 2 if i == 1 else 0})
                 for i in range(4)]
        policy = RetryPolicy(max_retries=3, backoff_base_s=0.001)
        out = run_sweep(tasks, jobs=1, cache=False, retry_policy=policy)
        assert out.ok
        assert [r["x"] for r in out.results] == [0, 1, 2, 3]
        assert out.stats.retries == 2
        assert _FLAKY_CALLS[1] == 3

    def test_flaky_task_retried_to_success_threads(self):
        tasks = [Task("recovery-test.flaky",
                      {"x": i, "fail_times": 1 if i in (0, 5) else 0})
                 for i in range(6)]
        policy = RetryPolicy(max_retries=2, backoff_base_s=0.001)
        out = run_sweep(tasks, jobs=3, backend="thread", chunk_size=2,
                        cache=False, retry_policy=policy)
        assert out.ok
        assert [r["x"] for r in out.results] == list(range(6))
        assert out.stats.retries == 2

    def test_quarantine_records_in_results_and_failures(self):
        tasks = [Task("recovery-test.poisoned", {"x": i, "bad": (2,)})
                 for i in range(5)]
        policy = RetryPolicy(max_retries=1, backoff_base_s=0.001)
        out = run_sweep(tasks, jobs=1, cache=False, retry_policy=policy)
        assert not out.ok
        assert [f.index for f in out.failures] == [2]
        failure = out.results[2]
        assert isinstance(failure, TaskFailure)
        assert failure.attempts == 2 and "poison" in failure.error
        assert out.stats.quarantined == 1
        with pytest.raises(RuntimeError, match="quarantined"):
            out.raise_if_failed()

    def test_quarantined_task_never_cached(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        tasks = [Task("recovery-test.poisoned", {"x": i, "bad": (1,)})
                 for i in range(3)]
        policy = RetryPolicy(max_retries=0, backoff_base_s=0.001)
        out = run_sweep(tasks, jobs=1, cache=cache, retry_policy=policy)
        assert [f.index for f in out.failures] == [1]
        assert cache.stats.stores == 2   # only the two successes

    def test_default_behaviour_still_raises(self):
        tasks = [Task("recovery-test.poisoned", {"x": i, "bad": (1,)})
                 for i in range(3)]
        with pytest.raises(ValueError, match="task 1 is poison"):
            run_sweep(tasks, jobs=1, cache=False)
        with pytest.raises(ValueError, match="task 1 is poison"):
            run_sweep(tasks, jobs=2, backend="thread", cache=False)

    def test_quarantine_off_raises_after_retries(self):
        tasks = [Task("recovery-test.poisoned", {"x": i, "bad": (0,)})
                 for i in range(3)]
        policy = RetryPolicy(max_retries=1, quarantine=False,
                             backoff_base_s=0.001)
        with pytest.raises(ValueError, match="task 0 is poison"):
            run_sweep(tasks, jobs=1, cache=False, retry_policy=policy)

    def test_retry_telemetry_counters(self):
        tasks = [Task("recovery-test.flaky", {"x": 9, "fail_times": 1}),
                 Task("recovery-test.flaky", {"x": 10})]
        tel = TelemetryCollector()
        policy = RetryPolicy(max_retries=2, backoff_base_s=0.001)
        with use_collector(tel):
            run_sweep(tasks, jobs=1, cache=False, retry_policy=policy)
        counts = tel.metrics.counter_values("exec.recovery.retries")
        assert sum(counts.values()) == 1
        actions = [e["labels"]["action"] for e in tel.events
                   if e["name"] == "exec.recovery.transition"]
        assert actions == ["retry"]

    def test_results_bit_identical_with_and_without_ft(self):
        tasks = [Task("recovery-test.draw", {"n": 5}, seed=40 + i)
                 for i in range(7)]
        plain = run_sweep(tasks, jobs=1, cache=False)
        policy = RetryPolicy(max_retries=3, task_timeout_s=30.0,
                             backoff_base_s=0.001)
        tolerant = run_sweep(tasks, jobs=3, backend="thread", chunk_size=2,
                             cache=False, retry_policy=policy)
        for a, b in zip(plain.results, tolerant.results):
            assert np.array_equal(a["v"], b["v"])
