"""Eq. 2's structural claim: "Since a K antenna relay has only K
dimensions, it can increase the MIMO rank at the destination at most by
K" (§3.2)."""

import numpy as np

from repro.core import FastForwardRelay, RelayConfig
from repro.netsim.throughput import usable_streams
from repro.utils import make_rng


def _flat(n_sc, matrix):
    return np.broadcast_to(matrix, (n_sc, *matrix.shape)).copy()


def _cn(rng, *shape, scale=1e-2):
    return scale * (rng.standard_normal(shape) + 1j * rng.standard_normal(shape))


class TestRankLimits:
    def test_single_antenna_relay_adds_one_stream(self):
        # Dead 2x2 direct channel + K=1 relay: exactly one usable stream.
        rng = make_rng(0)
        n_sc = 8
        h_sd = _flat(n_sc, np.zeros((2, 2), dtype=complex))
        h_sr = _flat(n_sc, _cn(rng, 1, 2))     # relay has 1 antenna
        h_rd = _flat(n_sc, _cn(rng, 2, 1))
        relay = FastForwardRelay(RelayConfig())
        relay.configure_mimo_link(h_sd, h_sr, h_rd)
        h_eff, cov = relay.mimo_effective_channels()
        assert usable_streams(h_eff, cov) == 1

    def test_single_antenna_relay_completes_pinhole(self):
        # Rank-1 direct + K=1 relay: the second stream opens (1 + 1).
        rng = make_rng(1)
        n_sc = 8
        keyhole = np.outer(
            rng.standard_normal(2) + 1j * rng.standard_normal(2),
            rng.standard_normal(2) + 1j * rng.standard_normal(2))
        h_sd = _flat(n_sc, 3e-3 * keyhole / np.abs(keyhole).max())
        h_sr = _flat(n_sc, _cn(rng, 1, 2))
        h_rd = _flat(n_sc, _cn(rng, 2, 1))
        relay = FastForwardRelay(RelayConfig())
        relay.configure_mimo_link(h_sd, h_sr, h_rd)
        h_eff, cov = relay.mimo_effective_channels()
        direct_cov = np.broadcast_to(1e-9 * np.eye(2),
                                     (n_sc, 2, 2)).copy()
        assert usable_streams(h_sd, direct_cov) == 1
        assert usable_streams(h_eff, cov) == 2

    def test_two_antenna_relay_cannot_exceed_client_antennas(self):
        # 2 rx antennas bound the stream count at 2 no matter what.
        rng = make_rng(2)
        n_sc = 8
        h_sd = _flat(n_sc, _cn(rng, 2, 2))
        h_sr = _flat(n_sc, _cn(rng, 2, 2))
        h_rd = _flat(n_sc, _cn(rng, 2, 2))
        relay = FastForwardRelay(RelayConfig())
        relay.configure_mimo_link(h_sd, h_sr, h_rd)
        h_eff, cov = relay.mimo_effective_channels()
        assert usable_streams(h_eff, cov) <= 2

    def test_relay_path_rank_bounded_by_k(self):
        # The relay's own contribution H_rd F A H_sr has rank <= K.
        rng = make_rng(3)
        h_sr = _cn(rng, 1, 2)
        h_rd = _cn(rng, 2, 1)
        f = np.array([[np.exp(0.3j)]])
        relay_term = h_rd @ f @ h_sr
        sv = np.linalg.svd(relay_term, compute_uv=False)
        assert sv[1] < 1e-12 * sv[0]
