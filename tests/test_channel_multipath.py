"""Tapped-delay-line multipath channels."""

import numpy as np
import pytest

from repro.channel import MultipathChannel, exponential_pdp, rayleigh_taps, rician_taps
from repro.utils import make_rng


class TestPdp:
    def test_normalised(self):
        pdp = exponential_pdp(6, 50e-9, 50e-9)
        assert pdp.sum() == pytest.approx(1.0)

    def test_decaying(self):
        pdp = exponential_pdp(6, 50e-9, 50e-9)
        assert all(a > b for a, b in zip(pdp, pdp[1:]))

    def test_zero_spread_is_single_tap(self):
        pdp = exponential_pdp(4, 0.0, 50e-9)
        assert np.allclose(pdp, [1, 0, 0, 0])

    def test_needs_a_tap(self):
        with pytest.raises(ValueError):
            exponential_pdp(0, 50e-9, 50e-9)


class TestTapDraws:
    def test_rayleigh_mean_power_follows_pdp(self):
        rng = make_rng(0)
        pdp = exponential_pdp(4, 50e-9, 50e-9)
        powers = np.mean([np.abs(rayleigh_taps(pdp, rng)) ** 2
                          for _ in range(4000)], axis=0)
        assert np.allclose(powers, pdp, rtol=0.1)

    def test_rician_k_factor_stabilises_first_tap(self):
        rng = make_rng(1)
        pdp = np.array([1.0])
        ray = np.array([abs(rayleigh_taps(pdp, rng)[0]) for _ in range(2000)])
        ric = np.array([abs(rician_taps(pdp, 10.0, rng)[0]) for _ in range(2000)])
        assert ric.std() / ric.mean() < ray.std() / ray.mean()

    def test_negative_pdp_rejected(self):
        with pytest.raises(ValueError):
            rayleigh_taps(np.array([-0.1, 1.0]), make_rng(2))


class TestMultipathChannel:
    def test_flat_channel_scales(self):
        chan = MultipathChannel.flat(0.5j)
        x = np.ones(8, dtype=complex)
        assert np.allclose(chan.apply_trimmed(x), 0.5j)

    def test_extra_delay_shifts(self):
        chan = MultipathChannel(np.array([1.0]), extra_delay_samples=3)
        x = np.arange(1, 6, dtype=complex)
        out = chan.apply_trimmed(x)
        assert np.allclose(out[:3], 0.0)
        assert np.allclose(out[3:], x[:2])

    def test_frequency_response_matches_fft(self):
        rng = make_rng(3)
        taps = rng.standard_normal(4) + 1j * rng.standard_normal(4)
        chan = MultipathChannel(taps)
        indices = range(-28, 29)
        h = chan.frequency_response(list(indices), 64)
        full = np.fft.fft(np.concatenate([taps, np.zeros(60, complex)]))
        expected = np.array([full[k % 64] for k in indices])
        assert np.allclose(h, expected)

    def test_compose_is_convolution(self):
        a = MultipathChannel(np.array([1.0, 0.5]))
        b = MultipathChannel(np.array([1.0, -0.25]), extra_delay_samples=2)
        c = a.compose(b)
        assert c.extra_delay_samples == 2
        assert np.allclose(c.taps, np.convolve([1.0, 0.5], [1.0, -0.25]))

    def test_compose_frequency_response_multiplies(self):
        rng = make_rng(4)
        a = MultipathChannel(rng.standard_normal(3).astype(complex))
        b = MultipathChannel(rng.standard_normal(2).astype(complex))
        idx = [-5, 0, 7]
        got = a.compose(b).frequency_response(idx, 64)
        expected = (a.frequency_response(idx, 64)
                    * b.frequency_response(idx, 64))
        assert np.allclose(got, expected)

    def test_scaled(self):
        chan = MultipathChannel(np.array([1.0, 0.5]))
        assert np.allclose(chan.scaled(2.0).taps, [2.0, 1.0])

    def test_delay_span(self):
        chan = MultipathChannel(np.array([1.0, 0.0, 0.0, 0.01]),
                                extra_delay_samples=2)
        assert chan.delay_span_samples() == 5

    def test_rayleigh_factory_mean_gain(self):
        rng = make_rng(5)
        powers = []
        for _ in range(500):
            c = MultipathChannel.rayleigh(4, 50e-9, 50e-9, gain_db=-20.0,
                                          rng=rng)
            powers.append(np.sum(np.abs(c.taps) ** 2))
        assert 10 * np.log10(np.mean(powers)) == pytest.approx(-20.0, abs=1.0)
