"""Fault storms against the live service: ladder descent and recovery."""

from repro.service import (
    ChainPool,
    SchedulerPolicy,
    ServeConfig,
    ServiceScheduler,
    ServiceStorm,
    StormConfig,
    TrafficConfig,
    make_sessions,
    run_once,
)
from repro.service.session import SessionEventKind


class TestWindows:
    def test_scheduled_window_covers_interval(self):
        storm = ServiceStorm.scheduled(0.25, 0.25, chain_keys=("c0",))
        assert not storm.active("c0", 0.2)
        assert storm.active("c0", 0.25)
        assert storm.active("c0", 0.49)
        assert not storm.active("c0", 0.5)          # half-open
        assert not storm.active("c1", 0.3)          # other chains spared

    def test_none_chain_keys_means_every_chain(self):
        storm = ServiceStorm.scheduled(0.0, 1.0)
        assert storm.active("anything", 0.5)

    def test_seeded_windows_deterministic(self):
        config = StormConfig(seed=11, rate_per_s=2.0, horizon_s=5.0)
        a = ServiceStorm.seeded(config, ("c0", "c1")).windows
        b = ServiceStorm.seeded(config, ("c0", "c1")).windows
        assert a == b
        c = ServiceStorm.seeded(StormConfig(seed=12, rate_per_s=2.0,
                                            horizon_s=5.0),
                                ("c0", "c1")).windows
        assert a != c

    def test_seeded_windows_never_overlap_per_chain(self):
        config = StormConfig(seed=3, rate_per_s=5.0, duration_s=0.4,
                             horizon_s=10.0)
        storm = ServiceStorm.seeded(config, ("c0",))
        windows = sorted(storm.windows, key=lambda w: w.start_s)
        assert windows, "expected at least one storm at rate 5/s"
        for prev, cur in zip(windows, windows[1:]):
            assert cur.start_s >= prev.end_s


class TestLadder:
    def _storm_entry(self, start=0.1, duration=0.3):
        pool = ChainPool(seed=2)
        storm = ServiceStorm.scheduled(start, duration)
        pool.attach_storm(storm)
        return pool.entry("c0"), storm

    def test_chain_descends_to_half_duplex_under_storm(self):
        entry, _ = self._storm_entry()
        for step in range(10):
            entry.advance(0.12 + step * 0.03)
        assert not entry.relaying
        kinds = [e.kind.value for e in entry.supervisor.events]
        assert "fault-detected" in kinds
        assert "retune-failed" in kinds
        assert "fallback-half-duplex" in kinds
        # Descent is ordered: detection before the mute.
        assert kinds.index("fault-detected") \
            < kinds.index("fallback-half-duplex")

    def test_chain_recovers_after_window_closes(self):
        entry, _ = self._storm_entry(duration=0.2)
        for step in range(8):
            entry.advance(0.1 + step * 0.03)
        assert not entry.relaying
        for step in range(30):
            entry.advance(0.4 + step * 0.03)
        assert entry.relaying
        kinds = [e.kind.value for e in entry.supervisor.events]
        assert "retune-succeeded" in kinds
        assert "recovered" in kinds
        assert kinds.index("fallback-half-duplex") \
            < kinds.index("recovered")

    def test_retune_fails_only_inside_window(self):
        entry, storm = self._storm_entry(start=0.0, duration=0.5)
        entry.stage.jump()
        assert entry._retune(0.25) is False          # mid-storm
        assert entry._retune(0.6) is True            # window closed
        assert not entry.stage.jumped

    def test_rejump_keeps_residual_high_through_window(self):
        entry, storm = self._storm_entry(start=0.0, duration=1.0)
        entry.advance(0.0)
        jumps_early = entry.stage.jump_count
        for step in range(10):
            entry.advance(0.1 * (step + 1))
        assert entry.stage.jump_count > jumps_early


class TestServiceUnderStorm:
    """The acceptance criterion: mute -> shed -> recover, service up."""

    def _run(self):
        pool = ChainPool(seed=5)
        sched = ServiceScheduler(
            policy=SchedulerPolicy(queue_high_water=256), pool=pool)
        storm = ServiceStorm.scheduled(0.10, 0.25, chain_keys=("c0",))
        pool.attach_storm(storm)
        traffic = TrafficConfig(model="cbr", rate_fps=100.0,
                                frame_samples=64, start_s=0.0,
                                duration_s=0.8)
        sessions = make_sessions(4, tenants=("t0", "t1"), seed=9,
                                 traffic=traffic, chain_keys=("c0", "c1"),
                                 model_mix=("cbr",))
        for s in sessions:
            sched.admit_session(s, 0.0)
            s.activate(0.0)
        cursors = [0] * len(sessions)
        t = 0.0
        while t <= 0.9:
            for i, s in enumerate(sessions):
                arr = s.arrivals_s
                while cursors[i] < len(arr) and arr[cursors[i]] <= t:
                    sched.offer(t, s, cursors[i])
                    cursors[i] += 1
            sched.dispatch(t)
            t += 0.01
        sched.flush(t)
        sched.check_conservation()
        return sched, sessions

    def test_sessions_degrade_and_recover_through_ladder(self):
        sched, sessions = self._run()
        stormed = [s for s in sessions if s.chain_key == "c0"]
        spared = [s for s in sessions if s.chain_key == "c1"]
        assert stormed and spared
        # At least one session rode the full ladder: degraded while the
        # chain was muted, resumed once it recovered.
        laddered = [s for s in stormed
                    if SessionEventKind.DEGRADED in s.event_kinds()
                    and SessionEventKind.RESUMED in s.event_kinds()]
        assert laddered
        for s in laddered:
            kinds = s.event_kinds()
            assert kinds.index(SessionEventKind.DEGRADED) \
                < kinds.index(SessionEventKind.RESUMED)
            assert s.shed > 0                       # muted frames shed
            assert s.processed > 0                  # and service resumed
        # The unstormed chain never degraded anyone.
        assert all(SessionEventKind.DEGRADED not in s.event_kinds()
                   for s in spared)

    def test_sheds_during_mute_are_declared_half_duplex(self):
        sched, sessions = self._run()
        reasons = {e.detail["reason"] for e in sched.events
                   if e.kind.value == "shed"}
        assert "half-duplex" in reasons
        assert reasons <= {"half-duplex", "queue-full", "drain"}

    def test_supervisor_ladder_sequence_on_typed_log(self):
        sched, _ = self._run()
        entry = sched.pool.entry("c0")
        kinds = [e.kind.value for e in entry.supervisor.events]
        mute = kinds.index("fallback-half-duplex")
        assert "fault-detected" in kinds[:mute]
        assert "retune-failed" in kinds[:mute]
        assert "recovered" in kinds[mute:]

    def test_service_stays_up_and_conserves(self):
        sched, sessions = self._run()
        assert sched.processed > 0
        assert sched.offered == sched.admitted + sched.rejected_frames
        assert sched.admitted == sched.processed + sched.shed


class TestEndToEnd:
    def test_run_once_with_seeded_storm_is_deterministic(self):
        config = ServeConfig(sessions=8, tenants=2, chains=2, seed=17,
                             duration_s=0.25, rate_fps=60.0,
                             storm_rate_per_s=20.0)
        pump_a, _ = run_once(config)
        pump_b, _ = run_once(config)
        assert pump_a.scheduler.event_digest() \
            == pump_b.scheduler.event_digest()
        jumps = sum(e.stage.jump_count
                    for e in pump_a.scheduler.pool.entries())
        assert jumps > 0
