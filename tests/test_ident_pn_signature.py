"""Downlink PN-signature identification (§6)."""

import numpy as np
import pytest

from repro.ident import DEFAULT_SIGNATURE_LENGTH, SignatureBook, SignatureDetector
from repro.utils import awgn_like, make_rng


@pytest.fixture
def book():
    return SignatureBook(seed=7)


class TestSignatureBook:
    def test_length_is_4us_at_20msps(self, book):
        assert DEFAULT_SIGNATURE_LENGTH == 80
        assert book.signature("alice").size == 80

    def test_deterministic_per_client(self, book):
        assert np.allclose(book.signature("alice"), book.signature("alice"))

    def test_distinct_across_clients(self, book):
        a = book.signature("alice")
        b = book.signature("bob")
        corr = abs(np.vdot(a, b)) / (np.linalg.norm(a) * np.linalg.norm(b))
        assert corr < 0.3

    def test_unit_envelope(self, book):
        assert np.allclose(np.abs(book.signature("alice")), 1.0)

    def test_prepend_field_repeats(self, book):
        field = book.prepend_field("alice")
        assert field.size == 160
        assert np.allclose(field[:80], field[80:])

    def test_same_seed_same_book(self):
        a = SignatureBook(seed=3).signature("x")
        b = SignatureBook(seed=3).signature("x")
        assert np.allclose(a, b)

    def test_length_validation(self):
        with pytest.raises(ValueError):
            SignatureBook(length=4)


class TestDetector:
    def _stream_with_signature(self, book, client, rng, snr_db=15.0,
                               prefix=120):
        field = book.prepend_field(client)
        stream = np.concatenate([
            np.zeros(prefix, dtype=complex), field,
            np.zeros(200, dtype=complex)])
        noise = awgn_like(stream, 10.0 ** (-snr_db / 10.0), rng)
        return stream + noise

    def test_identifies_correct_client(self, book):
        rng = make_rng(0)
        detector = SignatureDetector(book)
        clients = ["alice", "bob", "carol"]
        for c in clients:
            book.signature(c)
        stream = self._stream_with_signature(book, "bob", rng)
        result = detector.identify(stream, clients)
        assert result is not None
        client, start, score = result
        assert client == "bob"
        assert abs(start - 120) <= 2
        assert score > 0.7

    def test_requires_the_repeat(self, book):
        # A single copy (no repetition) must not fire the detector.
        rng = make_rng(1)
        detector = SignatureDetector(book, threshold=0.5)
        single = np.concatenate([
            np.zeros(100, dtype=complex), book.signature("alice"),
            np.zeros(300, dtype=complex)])
        single += awgn_like(single, 0.01, rng)
        assert detector.identify(single, ["alice"]) is None

    def test_no_detection_in_noise(self, book):
        rng = make_rng(2)
        detector = SignatureDetector(book)
        noise = awgn_like(np.zeros(800), 1.0, rng)
        assert detector.identify(noise, ["alice", "bob"]) is None

    def test_works_through_flat_channel(self, book):
        rng = make_rng(3)
        detector = SignatureDetector(book)
        stream = self._stream_with_signature(book, "alice", rng)
        rotated = stream * 0.05 * np.exp(1j * 1.1)
        result = detector.identify(rotated, ["alice", "bob"])
        assert result is not None and result[0] == "alice"

    def test_low_snr_still_detects(self, book):
        rng = make_rng(4)
        detector = SignatureDetector(book, threshold=0.4)
        stream = self._stream_with_signature(book, "carol", rng, snr_db=3.0)
        result = detector.identify(stream, ["alice", "bob", "carol"])
        assert result is not None and result[0] == "carol"
