"""Stage adapters, the kernel cache and ChainTrace instrumentation."""

import numpy as np
import pytest

from repro.cancellation.digital import CausalDigitalCanceller
from repro.cancellation.si_channel import SelfInterferenceChannel
from repro.core.relay import FastForwardRelay, RelayConfig
from repro.dsp.fir import FirFilter
from repro.dsp.tapped_delay_line import AnalogTapDelayLine
from repro.phy.params import WIFI_20MHZ
from repro.runtime import (
    Chain,
    ChainTrace,
    DigitalCancellationStage,
    GainStage,
    StreamingFirStage,
    design_windowed_kernel,
    kernel_cache,
)

FS = WIFI_20MHZ.bandwidth_hz


def _rms(a, b):
    return float(np.sqrt(np.mean(np.abs(a - b) ** 2)))


def _noise(n, seed, rows=None):
    rng = np.random.default_rng(seed)
    shape = (rows, n) if rows else n
    return rng.normal(size=shape) + 1j * rng.normal(size=shape)


class TestStreamingFirStage:
    def test_matches_whole_block_fir(self):
        taps = np.array([1.0, -0.4 + 0.2j, 0.1j, 0.05])
        stage = StreamingFirStage(taps)
        x = _noise(500, 1)
        blocks = [stage.process_block(x[i:i + 33]) for i in range(0, 500, 33)]
        streamed = np.concatenate(blocks)
        assert _rms(streamed, FirFilter(taps).apply(x)) <= 1e-12

    def test_reset_clears_state(self):
        taps = np.array([1.0, 0.5])
        stage = StreamingFirStage(taps)
        x = _noise(64, 2)
        first = stage.process_block(x)
        stage.reset()
        assert _rms(stage.process_block(x), first) <= 1e-12


class TestDigitalCancellationStage:
    def test_streaming_matches_one_shot_cancel(self):
        rng = np.random.default_rng(3)
        tx = _noise(2000, 4)
        leak = FirFilter(np.array([0.3, 0.1 - 0.05j, 0.02j])).apply(tx)
        canceller = CausalDigitalCanceller(num_taps=24)
        canceller.train(tx, leak)
        one_shot = canceller.cancel(leak, tx)
        stage = canceller.as_stage()
        assert isinstance(stage, DigitalCancellationStage)
        outs = []
        for i in range(0, 2000, 77):
            stage.push_tx(tx[i:i + 77])
            outs.append(stage.process_block(leak[i:i + 77]))
        assert _rms(np.concatenate(outs), one_shot) <= 1e-10
        # residual well below the raw leakage
        assert np.mean(np.abs(one_shot) ** 2) < 1e-3 * np.mean(
            np.abs(leak) ** 2)

    def test_requires_queued_tx(self):
        stage = CausalDigitalCanceller(num_taps=4).as_stage()
        with pytest.raises(ValueError):
            stage.process_block(np.zeros(8, dtype=complex))


class TestAsStageAdapters:
    def test_analog_line_stage_matches_apply(self):
        line = AnalogTapDelayLine(np.array([0.0, 100e-12, 200e-12]))
        line.set_gains(np.array([0.5, 0.3j, -0.2]))
        x = _noise(3000, 5)
        one_shot = line.apply(x, FS)
        stage = line.as_stage(FS, block_size=256)
        stage.reset()
        assert _rms(stage.run(x), one_shot) <= 1e-10

    def test_si_channel_stage_matches_apply(self):
        chan = SelfInterferenceChannel.typical(rng=7)
        x = _noise(2500, 8)
        one_shot = chan.apply(x, FS)
        stage = chan.as_stage(FS, block_size=512)
        stage.reset()
        assert _rms(stage.run(x), one_shot) <= 1e-10


class TestKernelCache:
    def test_repeated_builds_hit_the_cache(self):
        cache = kernel_cache()
        cache.clear()
        line = AnalogTapDelayLine(np.array([0.0, 100e-12]))
        line.set_gains(np.array([0.7, 0.2j]))
        x = _noise(1000, 9)
        line.apply(x, FS)
        first = cache.stats()
        line.apply(x, FS)
        line.apply(x, FS)
        after = cache.stats()
        assert first.misses >= 1
        assert after.misses == first.misses          # no re-design
        assert after.hits >= first.hits + 2

    def test_gain_change_is_a_new_kernel(self):
        cache = kernel_cache()
        cache.clear()
        line = AnalogTapDelayLine(np.array([0.0, 100e-12]))
        line.set_gains(np.array([0.7, 0.2j]))
        x = _noise(500, 10)
        line.apply(x, FS)
        line.set_gains(np.array([0.1, 0.9]))
        line.apply(x, FS)
        assert cache.stats().misses == 2

    def test_relay_reconfigure_invalidates_kernel(self):
        cache = kernel_cache()
        cache.clear()
        rng = np.random.default_rng(11)
        freqs = WIFI_20MHZ.subcarrier_freqs_hz()

        def draw():
            return (rng.normal(size=freqs.size)
                    + 1j * rng.normal(size=freqs.size))

        relay = FastForwardRelay(RelayConfig())
        relay.configure_siso_link(draw(), draw(), draw())
        x = _noise(1500, 12)
        y1 = relay.process(x)
        misses_one_link = cache.stats().misses
        relay.process(x)
        assert cache.stats().misses == misses_one_link
        relay.configure_siso_link(draw(), draw(), draw())
        y2 = relay.process(x)
        assert cache.stats().misses > misses_one_link
        assert _rms(y1, y2) > 1e-6    # genuinely different link

    def test_matrix_kernel_design(self):
        rng = np.random.default_rng(13)

        def matrix_response(f):
            n = np.asarray(f).size
            base = rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2))
            return np.broadcast_to(base, (n, 2, 2)).copy()

        kernel = design_windowed_kernel(matrix_response, FS)
        assert kernel.is_matrix
        assert kernel.fir.shape[:2] == (2, 2)
        assert 0 < kernel.precursor < kernel.length


class TestChainTrace:
    def test_trace_accumulates_per_stage(self):
        chain = Chain([GainStage(6.0), GainStage(-6.0)])
        trace = ChainTrace()
        x = _noise(400, 14)
        chain.run(x, trace=trace)
        assert list(trace.stages) == ["amplify", "amplify-2"]
        first = trace.stages["amplify"]
        assert first.calls >= 1
        assert first.samples_in == 400
        assert first.samples_out == 400
        assert first.wall_s >= 0.0
        assert first.gain_db == pytest.approx(6.0, abs=1e-6)
        assert trace.total_wall_s >= first.wall_s

    def test_trace_through_relay_process(self):
        rng = np.random.default_rng(15)
        freqs = WIFI_20MHZ.subcarrier_freqs_hz()

        def draw():
            return (rng.normal(size=freqs.size)
                    + 1j * rng.normal(size=freqs.size))

        relay = FastForwardRelay(RelayConfig())
        relay.configure_siso_link(draw(), draw(), draw())
        trace = ChainTrace()
        x = _noise(2000, 16)
        relay.process(x, cfo_hz=800.0, trace=trace)
        assert set(trace.stages) == {"cfo-correct", "cnf-filter",
                                     "amplify", "cfo-restore"}
        # Length-preserving end to end: every stage saw the whole stream.
        assert trace.stages["cfo-restore"].samples_out == 2000
        report = trace.report()
        for name in trace.stages:
            assert name in report

    def test_clear_resets_accumulators(self):
        trace = ChainTrace()
        trace.record("s", 0.01, np.ones(4, dtype=complex),
                     np.ones(4, dtype=complex))
        trace.clear()
        assert trace.stages == {}
        assert trace.total_wall_s == 0.0
