"""Floor-plan geometry and the Fig. 1 home."""

import numpy as np
import pytest

from repro.channel import FloorPlan, Wall, fig1_home


class TestWall:
    def test_crossing_detected(self):
        wall = Wall((0, 1), (2, 1), 6.0)
        assert wall.intersects((1, 0), (1, 2))

    def test_parallel_miss(self):
        wall = Wall((0, 1), (2, 1), 6.0)
        assert not wall.intersects((0, 0), (2, 0))

    def test_collinear_touch_counts(self):
        wall = Wall((0, 1), (2, 1), 6.0)
        assert wall.intersects((1, 1), (1, 3))

    def test_short_segment_miss(self):
        wall = Wall((0, 1), (2, 1), 6.0)
        assert not wall.intersects((1, 2), (1, 3))


class TestFloorPlan:
    def test_wall_loss_accumulates(self):
        plan = FloorPlan(10, 10, walls=(
            Wall((0, 3), (10, 3), 5.0),
            Wall((0, 6), (10, 6), 7.0),
        ))
        assert plan.wall_losses_db((5, 1), (5, 9)) == pytest.approx(12.0)
        assert plan.walls_crossed((5, 1), (5, 9)) == 2

    def test_no_walls_no_loss(self):
        plan = FloorPlan(10, 10)
        assert plan.wall_losses_db((1, 1), (9, 9)) == 0.0

    def test_contains(self):
        plan = FloorPlan(10, 5)
        assert plan.contains((5, 2.5))
        assert not plan.contains((11, 2))

    def test_grid_covers_interior(self):
        plan = FloorPlan(4, 3)
        grid = plan.grid(spacing_m=1.0, margin_m=0.5)
        assert grid.shape[1] == 2
        assert grid[:, 0].min() >= 0.5
        assert grid[:, 0].max() <= 3.5
        assert len(grid) == 4 * 3

    def test_random_points_inside(self):
        plan = FloorPlan(6, 4)
        pts = plan.random_points(50, np.random.default_rng(0))
        assert np.all(pts[:, 0] >= 0) and np.all(pts[:, 0] <= 6)
        assert np.all(pts[:, 1] >= 0) and np.all(pts[:, 1] <= 4)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            FloorPlan(0, 5)


class TestFig1Home:
    def test_dimensions_match_figure(self):
        plan, ap, relay = fig1_home()
        assert plan.width_m == 9.0  # the figure's 9 m annotation

    def test_ap_in_living_room_corner(self):
        plan, ap, relay = fig1_home()
        assert ap[0] < 2.0 and ap[1] < 2.0

    def test_relay_mid_home(self):
        plan, ap, relay = fig1_home()
        assert 2.0 < relay[0] < 7.0
        assert 1.5 < relay[1] < 4.5

    def test_bedroom_ray_crosses_walls(self):
        plan, ap, relay = fig1_home()
        # AP to the top-left bedroom crosses the divider (and possibly
        # the bathroom wall).
        assert plan.walls_crossed(ap, (1.5, 6.0)) >= 1

    def test_corridor_gap_is_wall_free(self):
        plan, ap, relay = fig1_home()
        # Straight shot through the corridor gap crosses nothing.
        assert plan.walls_crossed((4.6, 3.0), (4.6, 4.0)) == 0
