"""CFO correct-process-restore (§4.1)."""

import numpy as np
import pytest

from repro.core import CfoRestorer
from repro.phy.sync import apply_cfo, estimate_cfo
from repro.utils import make_rng


class TestCorrectRestore:
    def test_identity_processor_preserves_signal(self):
        rng = make_rng(0)
        x = rng.standard_normal(256) + 1j * rng.standard_normal(256)
        x_cfo = apply_cfo(x, 40e3, 20e6)
        restorer = CfoRestorer(40e3, 20e6)
        out = restorer.process(x_cfo, lambda s: s)
        assert np.allclose(out, x_cfo, atol=1e-12)

    def test_correct_removes_rotation(self):
        x = np.ones(128, dtype=complex)
        x_cfo = apply_cfo(x, 100e3, 20e6)
        restorer = CfoRestorer(100e3, 20e6)
        clean = restorer.correct(x_cfo)
        assert np.allclose(clean, 1.0, atol=1e-12)

    def test_restore_reapplies_rotation(self):
        restorer = CfoRestorer(100e3, 20e6)
        out = restorer.restore(np.ones(64, dtype=complex))
        expected = apply_cfo(np.ones(64, dtype=complex), 100e3, 20e6)
        assert np.allclose(out, expected)

    def test_chunked_matches_whole(self):
        rng = make_rng(1)
        x = rng.standard_normal(300) + 1j * rng.standard_normal(300)
        whole = CfoRestorer(33e3, 20e6)
        out_whole = whole.process(x, lambda s: 2.0 * s)
        chunked = CfoRestorer(33e3, 20e6)
        out_chunks = np.concatenate([
            chunked.process(x[:100], lambda s: 2.0 * s),
            chunked.process(x[100:180], lambda s: 2.0 * s),
            chunked.process(x[180:], lambda s: 2.0 * s),
        ])
        assert np.allclose(out_whole, out_chunks)

    def test_length_changing_processor_rejected(self):
        restorer = CfoRestorer(10e3, 20e6)
        with pytest.raises(ValueError):
            restorer.process(np.ones(32, dtype=complex), lambda s: s[:-1])


class TestEndToEndCfoPreservation:
    def test_destination_sees_source_cfo(self):
        # The §4.1 contract: the relayed signal carries the SOURCE's
        # CFO, so the client's estimator sees one consistent offset.
        rng = make_rng(2)
        n = np.arange(2048)
        periodic = np.exp(2j * np.pi * (n % 16) / 16.0)
        source_cfo = 60e3
        at_relay = apply_cfo(periodic, source_cfo, 20e6)

        restorer = CfoRestorer(source_cfo, 20e6)
        relayed = restorer.process(at_relay, lambda s: 0.5 * s)

        est = estimate_cfo(relayed, 16, 20e6, num_repeats=64)
        assert est == pytest.approx(source_cfo, rel=1e-3)

    def test_processing_without_restore_breaks_cfo(self):
        # Sanity check on the failure mode the trick avoids.
        n = np.arange(2048)
        periodic = np.exp(2j * np.pi * (n % 16) / 16.0)
        at_relay = apply_cfo(periodic, 60e3, 20e6)
        restorer = CfoRestorer(60e3, 20e6)
        corrected_only = restorer.correct(at_relay)
        est = estimate_cfo(corrected_only, 16, 20e6, num_repeats=64)
        assert abs(est) < 1e3  # CFO gone: destination would be confused

    def test_reset(self):
        restorer = CfoRestorer(10e3, 20e6)
        a = restorer.restore(np.ones(32, dtype=complex))
        restorer.reset()
        b = restorer.restore(np.ones(32, dtype=complex))
        assert np.allclose(a, b)
