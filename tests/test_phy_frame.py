"""PPDU framing: headers, CRCs, padding."""

import numpy as np
import pytest

from repro.phy.frame import (
    HEADER_INFO_BITS,
    build_header_bits,
    build_ppdu,
    crc32,
    crc8,
    parse_ppdu_header,
    payload_padding,
)
from repro.phy.params import WIFI_20MHZ
from repro.utils import make_rng


class TestCrc:
    def test_crc8_deterministic(self):
        bits = np.array([1, 0, 1, 1, 0, 0, 1, 0])
        assert np.array_equal(crc8(bits), crc8(bits))

    def test_crc8_detects_single_flip(self):
        rng = make_rng(0)
        bits = rng.integers(0, 2, 64)
        flipped = bits.copy()
        flipped[13] ^= 1
        assert not np.array_equal(crc8(bits), crc8(flipped))

    def test_crc32_detects_burst(self):
        rng = make_rng(1)
        bits = rng.integers(0, 2, 500)
        damaged = bits.copy()
        damaged[100:110] ^= 1
        assert not np.array_equal(crc32(bits), crc32(damaged))

    def test_crc32_length(self):
        assert crc32(np.array([1])).size == 32


class TestHeader:
    def test_roundtrip(self):
        bits = build_header_bits(mcs_index=5, length_bits=1234,
                                 num_streams=2, scrambler_seed=0x5D)
        assert bits.size == HEADER_INFO_BITS
        frame = parse_ppdu_header(bits)
        assert frame is not None
        assert frame.mcs_index == 5
        assert frame.length_bits == 1234
        assert frame.num_streams == 2
        assert frame.scrambler_seed == 0x5D

    def test_corrupted_header_rejected(self):
        bits = build_header_bits(3, 100, 1, 0x24)
        bits[0] ^= 1
        assert parse_ppdu_header(bits) is None

    def test_invalid_mcs_rejected_at_build(self):
        with pytest.raises(ValueError):
            build_header_bits(99, 100, 1, 0x5D)

    def test_mcs_property(self):
        bits = build_header_bits(7, 64, 1, 0x5D)
        frame = parse_ppdu_header(bits)
        assert frame.mcs.modulation_name == "64qam"


class TestPadding:
    @pytest.mark.parametrize("mcs", [0, 2, 4, 7, 9])
    def test_padded_length_fills_symbols(self, mcs):
        from repro.phy.frame import HEADER_SYMBOLS  # noqa: F401
        from repro.phy.rates import MCS_TABLE
        from repro.phy.coding import coded_length

        n_cbps = 52 * MCS_TABLE[mcs].bits_per_symbol
        for length in (64, 100, 1000):
            pad = payload_padding(length, mcs, n_cbps)
            total = coded_length(length + 32 + pad, MCS_TABLE[mcs].code_rate)
            assert total % n_cbps == 0

    def test_padding_is_deterministic(self):
        assert payload_padding(512, 4, 208) == payload_padding(512, 4, 208)


class TestBuildPpdu:
    def test_waveform_length_is_whole_symbols(self):
        rng = make_rng(2)
        bits = rng.integers(0, 2, 300)
        wave, n_payload = build_ppdu(bits, WIFI_20MHZ, mcs_index=4)
        total_symbols = 2 + n_payload  # header + payload
        assert wave.size == total_symbols * WIFI_20MHZ.symbol_len

    def test_higher_mcs_fewer_symbols(self):
        rng = make_rng(3)
        bits = rng.integers(0, 2, 2000)
        _, n_slow = build_ppdu(bits, WIFI_20MHZ, mcs_index=0)
        _, n_fast = build_ppdu(bits, WIFI_20MHZ, mcs_index=7)
        assert n_fast < n_slow


class TestInterleaverColumns:
    def test_wifi_plan_uses_13(self):
        from repro.phy.frame import interleaver_columns

        assert interleaver_columns(52) == 13

    def test_lte_plan_gets_divisor(self):
        from repro.phy.frame import interleaver_columns
        from repro.phy.params import LTE_10MHZ

        n = LTE_10MHZ.num_data_subcarriers
        cols = interleaver_columns(n)
        assert 1 < cols <= 20
        assert n % cols == 0

    def test_prime_counts_fall_back(self):
        from repro.phy.frame import interleaver_columns

        assert interleaver_columns(53) == 1  # prime: no divisor <= 20
