"""The static HTML link-health report.

The report must be fully self-contained (inline SVG + CSS, no scripts,
no external fetches) and render all four diagnostic panels from a real
probe-enabled telemetry payload — the same payload ``repro report
--html`` writes and a ``--from`` JSONL round-trip reloads.
"""

import re

import pytest

from repro.netsim import link_health_experiment
from repro.probes import render_html_report, write_html_report
from repro.telemetry import TelemetryCollector, use_collector
from repro.telemetry.export import read_jsonl, write_jsonl

PANELS = ("panel-constellation", "panel-spectrum", "panel-latency",
          "panel-evm")


@pytest.fixture(scope="module")
def payload():
    tel = TelemetryCollector(origin="html-test")
    with use_collector(tel):
        link_health_experiment(num_clients=2, seed=7, n_symbols=12,
                               jobs=2, backend="thread")
    return tel.payload()


class TestRenderedReport:
    def test_all_four_panels_render(self, payload):
        text = render_html_report(payload)
        for panel in PANELS:
            assert f'id="{panel}"' in text
        assert text.count("<svg") >= 4
        # Real data, not placeholders.
        assert "no constellation samples" not in text
        assert "no spectrum samples" not in text
        assert "no latency ledger" not in text
        assert "no EVM samples" not in text

    def test_self_contained(self, payload):
        text = render_html_report(payload)
        assert "<script" not in text.lower()
        assert "<link" not in text.lower()
        # The only URL allowed is the SVG namespace declaration.
        urls = re.findall(r"https?://[^\"'\s<]+", text)
        assert set(urls) <= {"http://www.w3.org/2000/svg"}

    def test_summary_table_lists_tap_sites(self, payload):
        text = render_html_report(payload)
        for site in ("post-si-cancellation", "post-cnf",
                     "post-amplification"):
            assert site in text
        assert "CP budget" in text

    def test_title_and_origin_escaped(self, payload):
        text = render_html_report(payload, title="<alpha> & beta")
        assert "&lt;alpha&gt; &amp; beta" in text
        assert "html-test" in text

    def test_empty_payload_renders_placeholders(self):
        text = render_html_report({"origin": "empty", "gauges": [],
                                   "counters": [], "events": []})
        for panel in PANELS:
            assert f'id="{panel}"' in text
        assert "no constellation samples" in text
        assert "no latency ledger" in text
        assert "No probe metrics" in text

    def test_write_and_jsonl_roundtrip(self, payload, tmp_path):
        jsonl = tmp_path / "probes.jsonl"
        write_jsonl(payload, jsonl)
        reloaded = read_jsonl(jsonl)
        direct = render_html_report(payload)
        roundtrip = render_html_report(reloaded)
        for panel in PANELS:
            assert f'id="{panel}"' in roundtrip
        # The SVG geometry must survive the JSONL round-trip.
        assert re.findall(r"<polyline[^>]*>", roundtrip) == \
            re.findall(r"<polyline[^>]*>", direct)

        out = tmp_path / "report.html"
        assert write_html_report(payload, out) == out
        assert out.read_text(encoding="utf-8").startswith("<!DOCTYPE html>")
