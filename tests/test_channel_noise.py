"""Noise models and the -90 dBm floor convention."""

import numpy as np
import pytest

from repro.channel import DEFAULT_NOISE_FLOOR_DBM, NoiseModel, awgn
from repro.utils import make_rng, signal_power


class TestAwgn:
    def test_power_matches_dbm(self):
        rng = make_rng(0)
        noise = awgn(100000, -90.0, rng=rng)
        assert signal_power(noise) == pytest.approx(1e-9, rel=0.05)

    def test_zero_dbm_unit_power(self):
        rng = make_rng(1)
        noise = awgn(100000, 0.0, rng=rng)
        assert signal_power(noise) == pytest.approx(1.0, rel=0.05)

    def test_complex_circular(self):
        rng = make_rng(2)
        noise = awgn(100000, 0.0, rng=rng)
        # I and Q carry equal power; correlation is negligible.
        assert np.mean(noise.real ** 2) == pytest.approx(0.5, rel=0.05)
        assert abs(np.mean(noise.real * noise.imag)) < 0.01

    def test_shape_passthrough(self):
        rng = make_rng(3)
        assert awgn((4, 8), -10.0, rng=rng).shape == (4, 8)


class TestNoiseModel:
    def test_default_is_paper_floor(self):
        assert NoiseModel().noise_floor_dbm == DEFAULT_NOISE_FLOOR_DBM == -90.0

    def test_derive_from_bandwidth(self):
        model = NoiseModel(noise_floor_dbm=None, bandwidth_hz=20e6,
                           noise_figure_db=11.0)
        assert model.noise_floor_dbm == pytest.approx(-90.0, abs=1.0)

    def test_requires_bandwidth_when_deriving(self):
        with pytest.raises(ValueError):
            NoiseModel(noise_floor_dbm=None)

    def test_snr_accounting(self):
        model = NoiseModel()
        assert model.snr_db(-70.0) == pytest.approx(20.0)

    def test_sample_power(self):
        model = NoiseModel(-90.0)
        rng = make_rng(4)
        samples = model.sample(50000, rng=rng)
        assert signal_power(samples) == pytest.approx(1e-9, rel=0.1)
