"""The assembled FastForward relay (link-level behaviour)."""

import numpy as np
import pytest

from repro.channel import fig1_home, PropagationModel
from repro.core import FastForwardRelay, LatencyBudget, RelayConfig
from repro.phy.params import WIFI_20MHZ
from repro.phy.rates import effective_snr_db
from repro.utils import make_rng


@pytest.fixture(scope="module")
def home_channels():
    plan, ap, relay_pos = fig1_home()
    pm = PropagationModel(plan, rms_delay_spread_s=30e-9)
    used = WIFI_20MHZ.used_subcarriers()
    rng = make_rng(0)
    client = np.array([1.5, 6.3])  # walled-off bedroom corner

    def draw(a, b, r):
        return pm.siso_channel(a, b, WIFI_20MHZ.sample_period_s,
                               num_taps=4, rng=r).frequency_response(used, 64)

    rngs = [make_rng(i) for i in (1, 2, 3)]
    return (draw(ap, client, rngs[0]), draw(ap, relay_pos, rngs[1]),
            draw(relay_pos, client, rngs[2]))


@pytest.fixture(scope="module")
def home_mimo():
    plan, ap, relay_pos = fig1_home()
    pm = PropagationModel(plan, rms_delay_spread_s=30e-9)
    used = WIFI_20MHZ.used_subcarriers()
    client = np.array([1.5, 6.3])
    rngs = [make_rng(i) for i in (4, 5, 6)]
    h_sd = pm.mimo_link(ap, client, WIFI_20MHZ.sample_period_s,
                        rng=rngs[0]).frequency_response(used, 64)
    h_sr = pm.mimo_link(ap, relay_pos, WIFI_20MHZ.sample_period_s,
                        rng=rngs[1]).frequency_response(used, 64)
    h_rd = pm.mimo_link(relay_pos, client, WIFI_20MHZ.sample_period_s,
                        rng=rngs[2]).frequency_response(used, 64)
    return h_sd, h_sr, h_rd


class TestSisoLink:
    def test_relay_boosts_edge_client(self, home_channels):
        h_sd, h_sr, h_rd = home_channels
        direct = effective_snr_db(
            10 * np.log10(np.abs(h_sd) ** 2 * 100.0 / 1e-9 + 1e-30))
        relay = FastForwardRelay().configure_siso_link(h_sd, h_sr, h_rd)
        boosted = effective_snr_db(relay.destination_snr_db())
        assert boosted > direct + 5.0

    def test_decomposition_costs_a_little(self, home_channels):
        h_sd, h_sr, h_rd = home_channels
        real = FastForwardRelay().configure_siso_link(h_sd, h_sr, h_rd)
        ideal_cfg = RelayConfig(use_decomposition=False)
        ideal = FastForwardRelay(ideal_cfg).configure_siso_link(h_sd, h_sr, h_rd)
        snr_real = effective_snr_db(real.destination_snr_db())
        snr_ideal = effective_snr_db(ideal.destination_snr_db())
        assert snr_real <= snr_ideal + 0.1
        assert snr_real >= snr_ideal - 8.0  # bounded approximation loss

    def test_amplification_respects_both_caps(self, home_channels):
        h_sd, h_sr, h_rd = home_channels
        relay = FastForwardRelay(RelayConfig(cancellation_db=95.0))
        relay.configure_siso_link(h_sd, h_sr, h_rd)
        rd_att = -10 * np.log10(np.mean(np.abs(h_rd) ** 2))
        assert relay.amplification_db <= 95.0 - 3.0 + 1e-9
        assert relay.amplification_db <= rd_att - 3.0 + 1e-9

    def test_cnf_off_is_identity_filter(self, home_channels):
        h_sd, h_sr, h_rd = home_channels
        cfg = RelayConfig(use_cnf=False)
        relay = FastForwardRelay(cfg).configure_siso_link(h_sd, h_sr, h_rd)
        assert np.allclose(relay.filter_response, 1.0)

    def test_latency_past_cp_degrades(self, home_channels):
        h_sd, h_sr, h_rd = home_channels
        fast = FastForwardRelay().configure_siso_link(h_sd, h_sr, h_rd)
        slow_cfg = RelayConfig(
            latency=LatencyBudget().with_extra_buffering(400e-9))
        slow = FastForwardRelay(slow_cfg).configure_siso_link(h_sd, h_sr, h_rd)
        assert effective_snr_db(slow.destination_snr_db()) < \
            effective_snr_db(fast.destination_snr_db()) - 3.0

    def test_shape_mismatch_rejected(self):
        relay = FastForwardRelay()
        with pytest.raises(ValueError):
            relay.configure_siso_link(np.ones(4), np.ones(4), np.ones(5))

    def test_mode_enforced(self, home_channels):
        relay = FastForwardRelay()
        with pytest.raises(RuntimeError):
            relay.destination_snr_db()


class TestMimoLink:
    def test_stream_sinrs_shape(self, home_mimo):
        relay = FastForwardRelay().configure_mimo_link(*home_mimo)
        sinrs = relay.stream_sinrs_db()
        assert sinrs.shape == (56, 2)

    def test_relay_lifts_weak_stream(self, home_mimo):
        h_sd, h_sr, h_rd = home_mimo
        relay = FastForwardRelay().configure_mimo_link(h_sd, h_sr, h_rd)
        with_relay = relay.stream_sinrs_db().mean(axis=0)

        off = FastForwardRelay(RelayConfig(use_cnf=False))
        off.configure_mimo_link(h_sd, h_sr, h_rd)
        off.amplification_db = 0.0  # relay silent
        without = off.stream_sinrs_db().mean(axis=0)
        assert np.sort(with_relay)[0] > np.sort(without)[0] + 3.0

    def test_effective_channels_shapes(self, home_mimo):
        relay = FastForwardRelay().configure_mimo_link(*home_mimo)
        h_eff, cov = relay.mimo_effective_channels()
        assert h_eff.shape == (56, 2, 2)
        assert cov.shape == (56, 2, 2)
        # Noise covariance is Hermitian PSD.
        for s in (0, 20, 55):
            assert np.allclose(cov[s], cov[s].conj().T)
            assert np.all(np.linalg.eigvalsh(cov[s]) > 0)

    def test_dimensionality_check(self):
        relay = FastForwardRelay()
        with pytest.raises(ValueError):
            relay.configure_mimo_link(np.ones((4, 2)), np.ones((4, 2)),
                                      np.ones((4, 2)))


class TestSampleLevel:
    def test_process_applies_gain(self, home_channels):
        h_sd, h_sr, h_rd = home_channels
        relay = FastForwardRelay().configure_siso_link(h_sd, h_sr, h_rd)
        rng = make_rng(7)
        x = 1e-4 * (rng.standard_normal(512) + 1j * rng.standard_normal(512))
        out = relay.process(x)
        gain_db = 10 * np.log10(np.mean(np.abs(out) ** 2)
                                / np.mean(np.abs(x) ** 2))
        # Amplification minus the filter's sub-unity average response.
        assert gain_db == pytest.approx(relay.amplification_db, abs=6.0)

    def test_process_preserves_cfo(self, home_channels):
        from repro.phy.sync import apply_cfo, estimate_cfo

        h_sd, h_sr, h_rd = home_channels
        relay = FastForwardRelay().configure_siso_link(h_sd, h_sr, h_rd)
        n = np.arange(2048)
        periodic = 1e-4 * np.exp(2j * np.pi * (n % 16) / 16.0)
        with_cfo = apply_cfo(periodic, 45e3, 20e6)
        out = relay.process(with_cfo, cfo_hz=45e3)
        est = estimate_cfo(out[200:], 16, 20e6, num_repeats=64)
        assert est == pytest.approx(45e3, rel=0.05)

    def test_process_requires_siso(self, home_mimo):
        relay = FastForwardRelay().configure_mimo_link(*home_mimo)
        with pytest.raises(RuntimeError):
            relay.process(np.ones(64, dtype=complex))
