"""Deterministic fault schedules: seeds, labels, chunking invariance."""

import numpy as np
import pytest

from repro.faults import BurstProcess, FaultSchedule, PacketLossProcess


class TestFaultSchedule:
    def test_same_seed_same_stream(self):
        a = FaultSchedule(7).stream("clip").random(32)
        b = FaultSchedule(7).stream("clip").random(32)
        assert np.array_equal(a, b)

    def test_labels_decorrelate_streams(self):
        sched = FaultSchedule(7)
        a = sched.stream("clip").random(64)
        b = sched.stream("drops").random(64)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = FaultSchedule(1).stream("x").random(32)
        b = FaultSchedule(2).stream("x").random(32)
        assert not np.array_equal(a, b)

    def test_stream_is_fresh_each_call(self):
        sched = FaultSchedule(3)
        assert np.array_equal(sched.stream("x").random(8),
                              sched.stream("x").random(8))

    def test_integer_and_tuple_labels(self):
        sched = FaultSchedule(5)
        a = sched.stream("loss", 3).random(8)
        b = sched.stream("loss", 4).random(8)
        assert not np.array_equal(a, b)

    def test_bernoulli_reproducible(self):
        p1 = FaultSchedule(11).bernoulli(0.5, "loss", 7)
        p2 = FaultSchedule(11).bernoulli(0.5, "loss", 7)
        assert p1 == p2


class TestBurstProcess:
    def test_mask_is_chunking_invariant(self):
        whole = FaultSchedule(9).bursts("drops", 5e-3, 8).mask(0, 4000)
        proc = FaultSchedule(9).bursts("drops", 5e-3, 8)
        parts, pos = [], 0
        for size in (1, 37, 251, 1000, 2711):
            parts.append(proc.mask(pos, size))
            pos += size
        assert np.array_equal(whole, np.concatenate(parts))

    def test_zero_rate_never_fires(self):
        proc = FaultSchedule(1).bursts("never", 0.0, 16)
        assert not proc.mask(0, 10000).any()

    def test_rate_sets_burst_frequency(self):
        proc = FaultSchedule(2).bursts("often", 1e-2, 1)
        frac = np.mean(proc.mask(0, 100000))
        assert 0.003 < frac < 0.03

    def test_mean_duration_lengthens_bursts(self):
        short = np.mean(FaultSchedule(3).bursts("a", 1e-3, 1).mask(0, 50000))
        long = np.mean(FaultSchedule(3).bursts("a", 1e-3, 32).mask(0, 50000))
        assert long > 3 * short

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            BurstProcess(np.random.default_rng(0), -1.0)


class TestPacketLossProcess:
    def test_deterministic_per_index(self):
        sched = FaultSchedule(21)
        loss = PacketLossProcess(sched, 0.5)
        first = [loss.lost(i) for i in range(50)]
        second = [loss.lost(i) for i in range(50)]
        assert first == second

    def test_loss_rate_matches_probability(self):
        loss = PacketLossProcess(FaultSchedule(22), 0.3)
        frac = np.mean([loss.lost(i) for i in range(2000)])
        assert 0.25 < frac < 0.35

    def test_zero_probability_delivers_all(self):
        loss = PacketLossProcess(FaultSchedule(23), 0.0)
        assert all(loss.delivered(i) for i in range(100))
