"""Shared test configuration: a per-test timeout with graceful fallback.

CI installs ``pytest-timeout`` and passes ``--timeout=120`` so a hung
test (a non-converging flush loop, a runaway fault schedule) fails fast
instead of stalling the whole job.  Environments without the plugin
(the option would otherwise be unknown) get a minimal SIGALRM-based
substitute so the same command line works everywhere.  The fallback is
POSIX-only and skips silently elsewhere — it is a safety net, not a
precision instrument.
"""

from __future__ import annotations

import importlib.util
import signal

import pytest

_HAVE_PLUGIN = importlib.util.find_spec("pytest_timeout") is not None


def pytest_addoption(parser):
    if _HAVE_PLUGIN:
        return                      # the real plugin owns --timeout
    parser.addoption(
        "--timeout", type=float, default=0.0,
        help="per-test timeout in seconds (SIGALRM fallback; "
             "0 disables)")


@pytest.fixture(autouse=True)
def _timeout_guard(request):
    if _HAVE_PLUGIN:
        yield
        return
    limit = request.config.getoption("--timeout", default=0.0)
    if not limit or not hasattr(signal, "SIGALRM"):
        yield
        return

    def _expired(signum, frame):
        raise TimeoutError(
            f"test exceeded the {limit:.0f}s timeout (SIGALRM fallback)")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(int(max(limit, 1)))
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)
