"""The analog cancellation board."""

import numpy as np
import pytest

from repro.cancellation import AnalogCancellationBoard, SelfInterferenceChannel
from repro.utils import make_rng


def _grid(fs=160e6, frac=0.1016, n=65):
    half = frac / 2 * fs
    return np.linspace(-half, half, n)


class TestTuning:
    def test_cancels_typical_channel_30db_plus(self):
        for seed in range(5):
            si = SelfInterferenceChannel.typical(rng=make_rng(seed))
            board = AnalogCancellationBoard()
            grid = _grid()
            board.tune(si.frequency_response(grid), grid)
            assert board.cancellation_db(si.frequency_response(grid),
                                         grid) > 30.0

    def test_residual_returned_by_tune(self):
        si = SelfInterferenceChannel.typical(rng=make_rng(1))
        board = AnalogCancellationBoard()
        grid = _grid()
        resp = si.frequency_response(grid)
        residual = board.tune(resp, grid)
        assert np.mean(np.abs(residual) ** 2) < np.mean(np.abs(resp) ** 2)

    def test_cannot_cancel_long_delay_ripple(self):
        # A strong 30 ns reflection is outside the board's ~1.4 ns span;
        # the board must not pretend to cancel it.
        si = SelfInterferenceChannel([200e-12, 30e-9], [0.18, 0.05])
        board = AnalogCancellationBoard()
        grid = _grid()
        board.tune(si.frequency_response(grid), grid)
        # Total cancellation limited by the barely-cancellable long
        # reflection (the board's 1.4 ns span cannot track its ripple).
        canc = board.cancellation_db(si.frequency_response(grid), grid)
        assert canc < 28.0

    def test_shape_mismatch_rejected(self):
        board = AnalogCancellationBoard()
        with pytest.raises(ValueError):
            board.tune(np.ones(5, dtype=complex), np.ones(4))


class TestQuantisation:
    def test_quantised_gains_on_attenuator_grid(self):
        si = SelfInterferenceChannel.typical(rng=make_rng(2))
        board = AnalogCancellationBoard()
        grid = _grid()
        board.tune(si.frequency_response(grid), grid)
        mags = np.abs(board.line.gains)
        nz = mags > 0
        att_db = -20.0 * np.log10(mags[nz])
        steps = att_db / board.line.attenuation_step_db
        assert np.allclose(steps, np.round(steps), atol=1e-6)

    def test_refinement_never_hurts(self):
        si = SelfInterferenceChannel.typical(rng=make_rng(3))
        grid = _grid()
        resp = si.frequency_response(grid)
        plain = AnalogCancellationBoard()
        plain.tune(resp, grid, refine_iterations=0)
        refined = AnalogCancellationBoard()
        refined.tune(resp, grid, refine_iterations=3)
        assert (refined.cancellation_db(resp, grid)
                >= plain.cancellation_db(resp, grid) - 1e-9)


class TestApply:
    def test_apply_matches_response(self):
        rng = make_rng(4)
        si = SelfInterferenceChannel.typical(rng=rng)
        board = AnalogCancellationBoard()
        grid = _grid()
        board.tune(si.frequency_response(grid), grid)
        fs = 160e6
        n = np.arange(8192)
        f0 = grid[10]
        tone = np.exp(2j * np.pi * f0 / fs * n)
        out = board.apply(tone, fs)
        expected = board.response(np.array([f0]))[0]
        ratio = out[2000:6000] / tone[2000:6000]
        assert np.allclose(ratio, expected, atol=2e-3)
