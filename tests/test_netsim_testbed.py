"""Testbed scenarios and channel factories."""

import numpy as np
import pytest

from repro.netsim import Testbed, paper_scenarios
from repro.utils import make_rng


class TestScenarios:
    def test_four_paper_settings(self):
        names = [s.name for s in paper_scenarios()]
        assert names[0] == "fig1-home"
        assert len(names) == 4
        assert "open-office" in names
        assert "l-corridor" in names

    def test_relay_has_usable_backhaul_everywhere(self):
        # The relay must hear the AP well for relaying to function.
        for scenario in paper_scenarios():
            budget = scenario.propagation().link_budget(scenario.ap,
                                                        scenario.relay)
            assert budget.snr_db(20.0) > 12.0, scenario.name

    def test_every_scenario_has_edge_area(self):
        # Each testbed contains low-SNR locations (the paper's dead
        # spots), otherwise the relay has nothing to rescue.
        for scenario in paper_scenarios():
            pm = scenario.propagation()
            grid = scenario.floorplan.grid(spacing_m=1.0)
            snrs = np.array([pm.link_budget(scenario.ap, g).snr_db(20.0)
                             for g in grid])
            assert snrs.min() < 8.0, scenario.name
            assert snrs.max() > 25.0, scenario.name


class TestTestbed:
    @pytest.fixture
    def tb(self):
        return Testbed(paper_scenarios()[0], seed=0)

    def test_positions_respect_min_distance(self, tb):
        pos = tb.client_positions(40, rng=1, min_ap_distance_m=2.0)
        d = np.linalg.norm(pos - tb.scenario.ap, axis=1)
        assert d.min() >= 2.0

    def test_positions_reproducible(self, tb):
        a = tb.client_positions(10, rng=5)
        b = tb.client_positions(10, rng=5)
        assert np.allclose(a, b)

    def test_extra_path_delay_nonnegative(self, tb):
        for client in tb.client_positions(20, rng=2):
            assert tb.extra_path_delay_s(client) >= 0.0

    def test_extra_delay_small_vs_cp(self, tb):
        # Indoor geometry: the via-relay detour is tens of ns, well
        # within the 400 ns CP (leaving room for processing).
        delays = [tb.extra_path_delay_s(c)
                  for c in tb.client_positions(20, rng=3)]
        assert max(delays) < 100e-9

    def test_siso_triple_shapes(self, tb):
        rng = make_rng(4)
        h_sd, h_sr, h_rd = tb.siso_triple(np.array([7.0, 5.0]), rng)
        assert h_sd.shape == h_sr.shape == h_rd.shape == (56,)

    def test_mimo_triple_shapes(self, tb):
        rng = make_rng(5)
        h_sd, h_sr, h_rd = tb.mimo_triple(np.array([7.0, 5.0]), rng)
        assert h_sd.shape == (56, 2, 2)
        assert h_sr.shape == (56, 2, 2)
        assert h_rd.shape == (56, 2, 2)

    def test_hop_channels_shapes(self, tb):
        rng = make_rng(6)
        h1, h2 = tb.hop_mimo_channels(np.array([7.0, 5.0]), rng)
        assert h1.shape == (56, 2, 2)
        assert h2.shape == (56, 2, 2)

    def test_channels_reproducible_per_rng(self, tb):
        a = tb.siso_triple(np.array([5.0, 3.0]), make_rng(9))
        b = tb.siso_triple(np.array([5.0, 3.0]), make_rng(9))
        for x, y in zip(a, b):
            assert np.allclose(x, y)
