"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_parse(self):
        parser = build_parser()
        for argv in (["coverage"], ["cancellation"], ["gains"],
                     ["latency"], ["fingerprint"]):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_seed_flag(self):
        args = build_parser().parse_args(["--seed", "7", "gains"])
        assert args.seed == 7


class TestCommands:
    def test_cancellation_runs(self, capsys):
        assert main(["cancellation", "--trials", "1"]) == 0
        out = capsys.readouterr().out
        assert "dB total" in out

    def test_fingerprint_runs(self, capsys):
        assert main(["fingerprint", "--locations", "4",
                     "--packets", "5"]) == 0
        out = capsys.readouterr().out
        assert "false positives" in out

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["coverage", "--scenario", "nonexistent"])

    def test_latency_prints_sweep(self, capsys):
        assert main(["latency", "--clients", "4",
                     "--latencies", "100", "500"]) == 0
        out = capsys.readouterr().out
        assert "median gain" in out
        assert "100 ns" in out and "500 ns" in out


class TestSweepCommand:
    def test_all_experiments_parse(self):
        parser = build_parser()
        for name in ("gains", "siso", "uplink", "scenarios", "latency",
                     "no-cnf", "cancellation", "faults", "coverage",
                     "link-health"):
            args = parser.parse_args(["sweep", name])
            assert callable(args.func)

    def test_sweep_gains_prints_engine_stats(self, capsys):
        assert main(["sweep", "gains", "--clients", "3", "--jobs", "2",
                     "--backend", "thread"]) == 0
        out = capsys.readouterr().out
        assert "engine:" in out
        assert "backend=thread jobs=2" in out

    def test_sweep_cache_stats_printed(self, capsys, tmp_path):
        argv = ["sweep", "gains", "--clients", "3",
                "--cache", str(tmp_path / "cache")]
        assert main(argv) == 0
        assert "0 hits" in capsys.readouterr().out
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "0 misses" in out and "100% hit rate" in out

    def test_sweep_checkpoint_written(self, capsys, tmp_path):
        manifest = tmp_path / "sweep.jsonl"
        assert main(["sweep", "coverage", "--spacing", "8",
                     "--cache", str(tmp_path / "cache"),
                     "--checkpoint", str(manifest)]) == 0
        assert manifest.exists()
        assert len(manifest.read_text().splitlines()) > 1


class TestReportCommand:
    def test_all_experiments_parse(self):
        parser = build_parser()
        for name in ("gains", "siso", "uplink", "scenarios", "latency",
                     "no-cnf", "cancellation", "faults", "coverage",
                     "link-health"):
            args = parser.parse_args(["report", name])
            assert callable(args.func)

    def test_shares_engine_flags_with_sweep(self):
        args = build_parser().parse_args(
            ["report", "gains", "--clients", "5", "--jobs", "2",
             "--backend", "thread", "--no-cache"])
        assert args.clients == 5 and args.jobs == 2
        assert args.backend == "thread" and args.no_cache

    def test_export_flags_parse(self, tmp_path):
        args = build_parser().parse_args(
            ["report", "gains", "--jsonl", "run.jsonl",
             "--trace", "trace.json", "--csv"])
        assert args.jsonl == "run.jsonl"
        assert args.trace == "trace.json"
        assert args.csv

    def test_from_file_makes_experiment_optional(self):
        args = build_parser().parse_args(["report", "--from", "saved.jsonl"])
        assert args.experiment is None
        assert args.from_file == "saved.jsonl"

    def test_report_runs_and_prints_engine_summary(self, capsys):
        assert main(["report", "siso", "--clients", "2", "--jobs", "2",
                     "--backend", "thread"]) == 0
        out = capsys.readouterr().out
        assert "## Spans" in out
        assert "exec.shard" in out
        # Experiment output first, telemetry tables after.
        assert out.index("clients:") < out.index("## Spans")

    def test_link_health_prints_per_site_table(self, capsys):
        assert main(["sweep", "link-health", "--clients", "2"]) == 0
        out = capsys.readouterr().out
        assert "post-si-cancellation" in out
        assert "post-amplification" in out
        assert "ns CP" in out


class TestServeCommand:
    def test_parses_with_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert callable(args.func)
        assert args.sessions == 16 and args.tenants == 2
        assert not args.once

    def test_shares_engine_flags_with_report(self):
        # The satellite contract: serve and report accept the same
        # engine plumbing via _add_engine_args, no duplicated flags.
        parser = build_parser()
        common = ["--jobs", "2", "--backend", "thread", "--no-cache",
                  "--checkpoint", "m.jsonl", "--max-retries", "3",
                  "--task-timeout", "1.5", "--chaos", "seed=7"]
        for command in (["report", "gains"], ["serve"]):
            args = parser.parse_args(command + common)
            assert args.jobs == 2 and args.backend == "thread"
            assert args.no_cache and args.checkpoint == "m.jsonl"
            assert args.max_retries == 3 and args.task_timeout == 1.5
            assert args.chaos == "seed=7"

    def test_once_runs_and_reports_conservation(self, capsys):
        assert main(["serve", "--once", "--sessions", "4",
                     "--duration", "0.1", "--rate", "30"]) == 0
        out = capsys.readouterr().out
        assert "served 4/4 sessions" in out
        assert "conservation" in out
        assert "chain chain-0" in out

    def test_once_writes_status_dir(self, tmp_path, capsys):
        out_dir = tmp_path / "status"
        assert main(["serve", "--once", "--sessions", "3",
                     "--duration", "0.1",
                     "--status-dir", str(out_dir)]) == 0
        assert (out_dir / "status.json").exists()
        assert (out_dir / "link_health.html").exists()
        assert "status.json" in capsys.readouterr().out

    def test_storm_flag_reports_jumps(self, capsys):
        assert main(["--seed", "17", "serve", "--once", "--sessions", "6",
                     "--duration", "0.2", "--rate", "60",
                     "--storm", "20"]) == 0
        out = capsys.readouterr().out
        assert "SI jumps" in out


class TestReportFromFile:
    def test_missing_file_errors_cleanly(self, tmp_path):
        with pytest.raises(SystemExit,
                           match="cannot read --from file") as info:
            main(["report", "--from", str(tmp_path / "nope.jsonl")])
        assert "Traceback" not in str(info.value)

    def test_invalid_jsonl_errors_cleanly(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("this is not telemetry\n{xxx}\n")
        with pytest.raises(SystemExit,
                           match="not a valid telemetry JSONL"):
            main(["report", "--from", str(bad)])

    def test_from_roundtrip_renders_html(self, tmp_path, capsys):
        jsonl = tmp_path / "probes.jsonl"
        html = tmp_path / "report.html"
        assert main(["report", "link-health", "--clients", "2",
                     "--jobs", "2", "--backend", "thread",
                     "--jsonl", str(jsonl)]) == 0
        capsys.readouterr()
        assert main(["report", "--from", str(jsonl),
                     "--html", str(html)]) == 0
        out = capsys.readouterr().out
        assert f"wrote link-health report to {html}" in out
        text = html.read_text(encoding="utf-8")
        for panel in ("panel-constellation", "panel-spectrum",
                      "panel-latency", "panel-evm"):
            assert f'id="{panel}"' in text
        assert "<script" not in text.lower()
