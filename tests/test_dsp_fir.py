"""FIR filters: block vs streaming equivalence, causality, LS design."""

import numpy as np
import pytest

from repro.dsp import FirFilter, StreamingFir, design_ls_fir, fir_frequency_response
from repro.utils import make_rng


class TestFirFilter:
    def test_identity(self):
        f = FirFilter([1.0])
        x = np.arange(8, dtype=complex)
        assert np.allclose(f.apply(x), x)

    def test_pure_delay(self):
        f = FirFilter([0.0, 0.0, 1.0])
        x = np.arange(6, dtype=complex)
        out = f.apply(x)
        assert np.allclose(out[2:], x[:-2])
        assert np.allclose(out[:2], 0.0)

    def test_output_length_trimmed(self):
        f = FirFilter(np.ones(5))
        assert f.apply(np.ones(16)).size == 16

    def test_apply_full_length(self):
        f = FirFilter(np.ones(5))
        assert f.apply_full(np.ones(16)).size == 20

    def test_order(self):
        assert FirFilter(np.ones(7)).order == 6

    def test_rejects_empty_taps(self):
        with pytest.raises(ValueError):
            FirFilter([])

    def test_group_delay_of_delay_line(self):
        f = FirFilter([0.0, 0.0, 0.0, 1.0])
        assert f.group_delay_samples() == pytest.approx(3.0)

    def test_frequency_response_of_delay(self):
        f = FirFilter([0.0, 1.0])
        h = f.frequency_response([0.25])
        assert h[0] == pytest.approx(np.exp(-2j * np.pi * 0.25))


class TestStreamingFir:
    def test_matches_block_filter(self):
        rng = make_rng(0)
        taps = rng.standard_normal(9) + 1j * rng.standard_normal(9)
        x = rng.standard_normal(100) + 1j * rng.standard_normal(100)
        block = FirFilter(taps).apply(x)
        stream = StreamingFir(taps)
        out = np.array([stream.push(s) for s in x])
        assert np.allclose(out, block)

    def test_chunked_process_matches_block(self):
        rng = make_rng(1)
        taps = rng.standard_normal(6) + 1j * rng.standard_normal(6)
        x = rng.standard_normal(64) + 1j * rng.standard_normal(64)
        block = FirFilter(taps).apply(x)
        stream = StreamingFir(taps)
        out = np.concatenate([stream.process(x[:10]), stream.process(x[10:13]),
                              stream.process(x[13:50]), stream.process(x[50:])])
        assert np.allclose(out, block)

    def test_state_persists_across_chunks(self):
        stream = StreamingFir([0.0, 1.0])  # one-sample delay
        first = stream.process(np.array([1.0, 2.0], dtype=complex))
        second = stream.process(np.array([3.0], dtype=complex))
        assert np.allclose(first, [0.0, 1.0])
        assert np.allclose(second, [2.0])

    def test_reset_clears_history(self):
        stream = StreamingFir([0.0, 1.0])
        stream.push(5.0)
        stream.reset()
        assert stream.push(1.0) == 0.0

    def test_causality(self):
        # An impulse later in the stream cannot affect earlier outputs.
        taps = np.array([0.5, 0.25, 0.125], dtype=complex)
        stream = StreamingFir(taps)
        out_before = [stream.push(0.0) for _ in range(5)]
        assert np.allclose(out_before, 0.0)
        assert stream.push(1.0) == pytest.approx(0.5)

    def test_empty_chunk(self):
        stream = StreamingFir([1.0])
        assert stream.process(np.array([], dtype=complex)).size == 0


class TestLsDesign:
    def test_fits_exact_fir(self):
        rng = make_rng(2)
        true_taps = rng.standard_normal(5) + 1j * rng.standard_normal(5)
        freqs = np.linspace(-0.45, 0.45, 101)
        desired = fir_frequency_response(true_taps, freqs)
        fitted = design_ls_fir(freqs, desired, num_taps=5)
        assert np.allclose(fitted, true_taps, atol=1e-8)

    def test_weighted_fit_prioritises_band(self):
        freqs = np.linspace(-0.5, 0.5, 201, endpoint=False)
        desired = np.where(np.abs(freqs) < 0.2,
                           np.exp(-2j * np.pi * freqs * 1.5), 0.0)
        weight = np.where(np.abs(freqs) < 0.2, 1.0, 1e-6)
        taps = design_ls_fir(freqs, desired, num_taps=9, weight=weight)
        inband = np.abs(freqs) < 0.2
        err = np.abs(fir_frequency_response(taps, freqs[inband])
                     - desired[inband])
        assert err.max() < 0.05

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            design_ls_fir(np.ones(4), np.ones(5), 3)

    def test_invalid_tap_count(self):
        with pytest.raises(ValueError):
            design_ls_fir(np.ones(4), np.ones(4), 0)
