"""The fault-sweep experiment: supervision must pay for itself."""

import numpy as np
import pytest

from repro.netsim import fault_sweep_experiment


@pytest.fixture(scope="module")
def sweep():
    return fault_sweep_experiment(fault_rates=(0.0, 0.2, 0.4),
                                  num_clients=4, num_steps=50, seed=0)


class TestThroughputOrdering:
    def test_no_faults_arms_agree(self, sweep):
        assert sweep["supervised"][0] == pytest.approx(
            sweep["unsupervised"][0])
        assert sweep["supervised"][0] == pytest.approx(sweep["nominal_ff"])

    def test_supervised_never_worse_than_unsupervised(self, sweep):
        assert (sweep["supervised"] >= sweep["unsupervised"] - 1e-9).all()

    def test_supervised_strictly_better_under_heavy_faults(self, sweep):
        assert sweep["supervised"][-1] > 1.5 * sweep["unsupervised"][-1]

    def test_supervised_never_below_half_duplex(self, sweep):
        assert (sweep["supervised"] >= sweep["half_duplex"] - 1e-9).all()

    def test_selected_clients_prefer_the_relay(self, sweep):
        assert sweep["nominal_ff"] > sweep["half_duplex"][0]

    def test_faults_do_hurt(self, sweep):
        assert sweep["unsupervised"][-1] < 0.5 * sweep["unsupervised"][0]


class TestEventLog:
    def test_no_events_without_faults(self, sweep):
        assert sweep["event_counts"][0] == {}

    def test_ladder_fully_exercised(self, sweep):
        merged = {}
        for counts in sweep["event_counts"]:
            for kind, n in counts.items():
                merged[kind] = merged.get(kind, 0) + n
        for kind in ("fault-detected", "retune-started", "retune-succeeded",
                     "gain-reduced", "fallback-half-duplex", "recovered"):
            assert merged.get(kind, 0) > 0, f"missing {kind}"

    def test_more_faults_more_events(self, sweep):
        totals = [sum(c.values()) for c in sweep["event_counts"]]
        assert totals[0] < totals[1] <= totals[2] * 2

    def test_sample_log_is_returned(self, sweep):
        assert sweep["sample_events"]
        assert any("fault-detected" in line for line in sweep["sample_events"])


class TestReproducibility:
    def test_same_seed_same_results(self, sweep):
        again = fault_sweep_experiment(fault_rates=(0.0, 0.2, 0.4),
                                       num_clients=4, num_steps=50, seed=0)
        assert np.array_equal(sweep["supervised"], again["supervised"])
        assert np.array_equal(sweep["unsupervised"], again["unsupervised"])
        assert sweep["event_counts"] == again["event_counts"]
        assert sweep["sample_events"] == again["sample_events"]

    def test_different_seed_differs(self, sweep):
        other = fault_sweep_experiment(fault_rates=(0.0, 0.2, 0.4),
                                       num_clients=4, num_steps=50, seed=1)
        assert not np.array_equal(sweep["supervised"][1:],
                                  other["supervised"][1:])
