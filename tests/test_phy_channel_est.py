"""LS channel estimation from LTF fields."""

import numpy as np
import pytest

from repro.channel.multipath import MultipathChannel
from repro.phy import Preamble, WIFI_20MHZ, estimate_channel_ls, estimate_mimo_channel
from repro.phy.channel_est import smooth_channel_estimate
from repro.utils import awgn_like, make_rng


class TestSisoEstimate:
    def test_flat_channel(self):
        pre = Preamble(WIFI_20MHZ)
        h = estimate_channel_ls(0.5j * pre.ltf(), WIFI_20MHZ)
        assert np.allclose(h, 0.5j, atol=1e-9)

    def test_multipath_channel_recovered(self):
        rng = make_rng(0)
        pre = Preamble(WIFI_20MHZ)
        chan = MultipathChannel(np.array([1.0, 0.0, 0.4 - 0.2j]))
        # Prepend STF so the channel's tail is absorbed by earlier
        # samples, mimicking a real stream.
        rx = chan.apply_trimmed(np.concatenate([pre.stf(), pre.ltf()]))
        ltf_rx = rx[pre.stf_samples:]
        est = estimate_channel_ls(ltf_rx, WIFI_20MHZ)
        truth = chan.frequency_response(WIFI_20MHZ.used_subcarriers(), 64)
        assert np.allclose(est, truth, atol=1e-6)

    def test_averaging_reduces_noise(self):
        rng = make_rng(1)
        pre = Preamble(WIFI_20MHZ)
        noisy = pre.ltf() + awgn_like(pre.ltf(), 0.01, rng)
        est_avg = estimate_channel_ls(noisy, WIFI_20MHZ, average=True)
        est_one = estimate_channel_ls(noisy, WIFI_20MHZ, average=False)
        err_avg = np.abs(est_avg - 1.0).std()
        err_one = np.abs(est_one - 1.0).std()
        assert err_avg < err_one

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            estimate_channel_ls(np.ones(20, dtype=complex), WIFI_20MHZ)


class TestMimoEstimate:
    def test_recovers_flat_mimo_channel(self):
        rng = make_rng(2)
        pre = Preamble(WIFI_20MHZ, num_streams=2)
        h_true = rng.standard_normal((2, 2)) + 1j * rng.standard_normal((2, 2))
        tx = np.stack([pre.ht_ltf(0), pre.ht_ltf(1)])
        # tx rows are per-stream waveforms; stack into streams x samples.
        streams = np.stack([pre.ht_ltf(s) for s in range(2)])
        rx = h_true @ streams
        est = estimate_mimo_channel(rx, WIFI_20MHZ, num_streams=2)
        assert est.shape == (56, 2, 2)
        assert np.allclose(est, h_true[None, :, :], atol=1e-9)

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            estimate_mimo_channel(np.ones((2, 50), dtype=complex),
                                  WIFI_20MHZ, num_streams=2)


class TestSmoothing:
    def test_preserves_constant(self):
        h = np.full(56, 2.0 + 1.0j)
        assert np.allclose(smooth_channel_estimate(h, 5), h)

    def test_reduces_noise_variance(self):
        rng = make_rng(3)
        h = 1.0 + 0.2 * (rng.standard_normal(56) + 1j * rng.standard_normal(56))
        sm = smooth_channel_estimate(h, 5)
        assert np.std(sm - 1.0) < np.std(h - 1.0)

    def test_window_must_be_odd(self):
        with pytest.raises(ValueError):
            smooth_channel_estimate(np.ones(8, dtype=complex), 4)

    def test_window_one_is_identity(self):
        h = np.arange(8, dtype=complex)
        assert np.allclose(smooth_channel_estimate(h, 1), h)


class TestTimingCanonicalization:
    def test_removes_integer_ramp(self):
        from repro.phy.channel_est import canonicalize_channel_timing
        from repro.phy.params import WIFI_20MHZ

        rng = make_rng(10)
        used = WIFI_20MHZ.used_subcarriers()
        idx = np.asarray(used, dtype=float)
        base = MultipathChannel(np.array([1.0, 0.3 - 0.1j])). \
            frequency_response(used, 64)
        for offset in (1, 4, 11):
            ramped = base * np.exp(-2j * np.pi * idx * offset / 64)
            fixed = canonicalize_channel_timing(ramped)
            ref = canonicalize_channel_timing(base)
            assert np.allclose(fixed, ref, atol=1e-9)

    def test_idempotent(self):
        from repro.phy.channel_est import canonicalize_channel_timing
        from repro.phy.params import WIFI_20MHZ

        used = WIFI_20MHZ.used_subcarriers()
        base = MultipathChannel(np.array([0.2, 1.0, 0.1j])). \
            frequency_response(used, 64)
        once = canonicalize_channel_timing(base)
        twice = canonicalize_channel_timing(once)
        assert np.allclose(once, twice, atol=1e-9)

    def test_magnitudes_untouched(self):
        from repro.phy.channel_est import canonicalize_channel_timing
        from repro.phy.params import WIFI_20MHZ

        rng = make_rng(11)
        used = WIFI_20MHZ.used_subcarriers()
        h = rng.standard_normal(len(used)) + 1j * rng.standard_normal(len(used))
        fixed = canonicalize_channel_timing(h)
        assert np.allclose(np.abs(fixed), np.abs(h))

    def test_size_validated(self):
        from repro.phy.channel_est import canonicalize_channel_timing

        with pytest.raises(ValueError):
            canonicalize_channel_timing(np.ones(10, dtype=complex))
