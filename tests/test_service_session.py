"""Client sessions: lifecycle legality, seeded traffic, typed events."""

import numpy as np
import pytest

from repro.service import (
    ClientSession,
    SessionEventKind,
    SessionState,
    TrafficConfig,
    make_sessions,
)


class TestLifecycle:
    def test_happy_path(self):
        s = ClientSession("s1")
        assert s.state is SessionState.PENDING
        s.admit(0.0)
        assert s.state is SessionState.SOUNDING
        s.activate(0.02)
        assert s.state is SessionState.ACTIVE
        s.drain(1.0)
        assert s.state is SessionState.DRAINING
        s.close(1.1)
        assert s.state is SessionState.CLOSED
        assert s.event_kinds() == (
            SessionEventKind.ADMITTED, SessionEventKind.ACTIVATED,
            SessionEventKind.DRAINING, SessionEventKind.CLOSED)

    def test_rejection_is_terminal(self):
        s = ClientSession("s1")
        s.reject(0.0, "at-capacity")
        assert s.state is SessionState.REJECTED
        with pytest.raises(RuntimeError, match="illegal transition"):
            s.admit(0.1)

    def test_illegal_transitions_raise(self):
        s = ClientSession("s1")
        with pytest.raises(RuntimeError, match="illegal transition"):
            s.activate(0.0)                 # must sound first
        s.admit(0.0)
        s.activate(0.0)
        s.close(0.1)
        with pytest.raises(RuntimeError, match="illegal transition"):
            s.drain(0.2)                    # closed is terminal

    def test_degraded_resumed_marks_are_idempotent(self):
        s = ClientSession("s1")
        s.admit(0.0)
        s.activate(0.0)
        s.mark_degraded(0.1)
        s.mark_degraded(0.2)                # no duplicate event
        s.mark_resumed(0.3)
        s.mark_resumed(0.4)
        kinds = s.event_kinds()
        assert kinds.count(SessionEventKind.DEGRADED) == 1
        assert kinds.count(SessionEventKind.RESUMED) == 1

    def test_close_event_carries_the_ledger(self):
        s = ClientSession("s1")
        s.admit(0.0)
        s.activate(0.0)
        s.offered, s.processed, s.shed = 10, 7, 3
        event = s.close(1.0)
        assert event.detail == {"offered": 10, "processed": 7, "shed": 3}


class TestTraffic:
    def test_arrivals_deterministic_per_seed(self):
        a = ClientSession("a", seed=42).arrivals_s
        b = ClientSession("b", seed=42).arrivals_s
        c = ClientSession("c", seed=43).arrivals_s
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_cbr_evenly_spaced(self):
        t = TrafficConfig(model="cbr", rate_fps=10.0, duration_s=1.0,
                          start_s=2.0)
        arr = ClientSession("s", traffic=t).arrivals_s
        assert arr.size == 10
        assert np.allclose(np.diff(arr), 0.1)
        assert arr[0] == pytest.approx(2.1)

    def test_poisson_stays_inside_window(self):
        t = TrafficConfig(model="poisson", rate_fps=200.0, duration_s=0.5,
                          start_s=1.0)
        arr = ClientSession("s", traffic=t, seed=3).arrivals_s
        assert arr.size > 0
        assert arr.min() >= 1.0
        assert arr.max() <= 1.5

    def test_frames_unit_power_and_deterministic(self):
        s = ClientSession("s", seed=9)
        f1, f2 = s.frame(4), s.frame(4)
        assert np.array_equal(f1, f2)
        assert f1.size == s.traffic.frame_samples
        assert np.mean(np.abs(f1) ** 2) == pytest.approx(1.0, rel=0.3)
        assert not np.array_equal(s.frame(4), s.frame(5))

    def test_config_validation(self):
        with pytest.raises(ValueError, match="model"):
            TrafficConfig(model="vbr")
        with pytest.raises(ValueError, match="rate_fps"):
            TrafficConfig(rate_fps=0)
        with pytest.raises(ValueError, match="duration_s"):
            TrafficConfig(duration_s=-1)


class TestFactory:
    def test_population_is_pure_function_of_args(self):
        a = make_sessions(6, tenants=("x", "y"), seed=5)
        b = make_sessions(6, tenants=("x", "y"), seed=5)
        assert [s.session_id for s in a] == [s.session_id for s in b]
        assert all(np.array_equal(p.arrivals_s, q.arrivals_s)
                   for p, q in zip(a, b))

    def test_round_robin_assignment(self):
        sessions = make_sessions(4, tenants=("x", "y"),
                                 chain_keys=("c0", "c1", "c2"))
        assert [s.tenant for s in sessions] == ["x", "y", "x", "y"]
        assert [s.chain_key for s in sessions] == ["c0", "c1", "c2", "c0"]

    def test_model_mix_cycles(self):
        sessions = make_sessions(4)
        assert [s.traffic.model for s in sessions] == [
            "poisson", "cbr", "poisson", "cbr"]

    def test_distinct_seeds(self):
        sessions = make_sessions(10)
        assert len({s.seed for s in sessions}) == 10
