"""Low-latency IIR sections and the Goertzel bank."""

import numpy as np
import pytest

from repro.dsp import GoertzelBank, OnePoleIir
from repro.utils import make_rng


class TestOnePoleIir:
    def test_dc_gain_is_unity(self):
        f = OnePoleIir(0.9)
        out = f.process(np.ones(500, dtype=complex))
        assert abs(out[-1] - 1.0) < 1e-3

    def test_step_response_monotone(self):
        f = OnePoleIir(0.8)
        out = f.process(np.ones(50, dtype=complex))
        assert np.all(np.diff(np.abs(out)) > -1e-12)

    def test_push_matches_process(self):
        rng = make_rng(0)
        x = rng.standard_normal(32) + 1j * rng.standard_normal(32)
        a = OnePoleIir(0.7, 0.1)
        b = OnePoleIir(0.7, 0.1)
        pushed = np.array([a.push(s) for s in x])
        assert np.allclose(pushed, b.process(x))

    def test_resonator_tracks_tone(self):
        f0 = 0.15
        n = np.arange(400)
        tone = np.exp(2j * np.pi * f0 * n)
        res = OnePoleIir(0.95, f0)
        out = res.process(tone)
        # Converged magnitude near 1 (unit-gain at resonance).
        assert abs(abs(out[-1]) - 1.0) < 0.05

    def test_rejects_unstable_pole(self):
        with pytest.raises(ValueError):
            OnePoleIir(1.2)

    def test_reset(self):
        f = OnePoleIir(0.9)
        f.push(1.0)
        f.reset()
        assert f.push(0.0) == 0.0


class TestGoertzelBank:
    def test_measures_single_tone(self):
        n = np.arange(64)
        freqs = [4 / 64, 8 / 64]
        bank = GoertzelBank(freqs)
        x = 2.0 * np.exp(2j * np.pi * (4 / 64) * n)
        amps = bank.measure(x)
        assert abs(amps[0]) == pytest.approx(2.0, rel=1e-9)
        assert abs(amps[1]) == pytest.approx(0.0, abs=1e-9)

    def test_linear_in_amplitude(self):
        n = np.arange(128)
        bank = GoertzelBank([0.1])
        x = np.exp(2j * np.pi * 0.1 * n)
        a1 = bank.measure(x)[0]
        a3 = bank.measure(3.0 * x)[0]
        assert a3 == pytest.approx(3.0 * a1)

    def test_phase_preserved(self):
        n = np.arange(64)
        bank = GoertzelBank([8 / 64])
        x = np.exp(1j * (2 * np.pi * (8 / 64) * n + 0.7))
        assert np.angle(bank.measure(x)[0]) == pytest.approx(0.7, abs=1e-9)

    def test_empty_block_rejected(self):
        with pytest.raises(ValueError):
            GoertzelBank([0.1]).measure(np.array([], dtype=complex))

    def test_needs_frequencies(self):
        with pytest.raises(ValueError):
            GoertzelBank([])
