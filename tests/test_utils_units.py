"""Unit conversions: the dB conventions everything else leans on."""

import numpy as np
import pytest

from repro.utils import (
    db_to_linear,
    db_to_power,
    dbm_to_watts,
    linear_to_db,
    power_to_db,
    thermal_noise_dbm,
    watts_to_dbm,
    wavelength,
)


class TestAmplitudeDb:
    def test_20db_is_factor_10_amplitude(self):
        assert db_to_linear(20.0) == pytest.approx(10.0)

    def test_zero_db_is_unity(self):
        assert db_to_linear(0.0) == pytest.approx(1.0)

    def test_roundtrip(self):
        for value in (0.3, 1.0, 7.5, 123.0):
            assert linear_to_db(db_to_linear(value)) == pytest.approx(value)

    def test_negative_db_attenuates(self):
        assert db_to_linear(-6.0) == pytest.approx(0.5012, rel=1e-3)

    def test_zero_ratio_maps_to_minus_inf(self):
        assert linear_to_db(0.0) == -np.inf

    def test_vectorised(self):
        out = db_to_linear(np.array([0.0, 20.0, 40.0]))
        assert np.allclose(out, [1.0, 10.0, 100.0])


class TestPowerDb:
    def test_30db_is_factor_1000(self):
        assert db_to_power(30.0) == pytest.approx(1000.0)

    def test_roundtrip(self):
        for value in (-13.0, 0.0, 3.0, 97.0):
            assert power_to_db(db_to_power(value)) == pytest.approx(value)

    def test_3db_is_double(self):
        assert db_to_power(3.0) == pytest.approx(2.0, rel=1e-2)

    def test_amplitude_and_power_consistency(self):
        # An amplitude gain g corresponds to a power gain g^2.
        g = db_to_linear(17.0)
        assert power_to_db(g**2) == pytest.approx(17.0)


class TestDbm:
    def test_0dbm_is_1mw(self):
        assert dbm_to_watts(0.0) == pytest.approx(1e-3)

    def test_30dbm_is_1w(self):
        assert dbm_to_watts(30.0) == pytest.approx(1.0)

    def test_roundtrip(self):
        assert watts_to_dbm(dbm_to_watts(-90.0)) == pytest.approx(-90.0)

    def test_paper_noise_floor(self):
        # -90 dBm over 20 MHz corresponds to a ~11 dB noise figure.
        floor = thermal_noise_dbm(20e6, noise_figure_db=11.0)
        assert floor == pytest.approx(-90.0, abs=1.0)

    def test_thermal_noise_scales_with_bandwidth(self):
        assert (thermal_noise_dbm(40e6) - thermal_noise_dbm(20e6)
                == pytest.approx(3.0, abs=0.1))


class TestWavelength:
    def test_2_45_ghz(self):
        assert wavelength(2.45e9) == pytest.approx(0.1224, rel=1e-3)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            wavelength(0.0)

    def test_quarter_wave_delay_at_carrier(self):
        # 100 ps at 2.45 GHz is ~90 degrees — the analog CNF tap spacing.
        period = 1.0 / 2.45e9
        assert 100e-12 / period == pytest.approx(0.245, rel=1e-2)
