"""Self-interference channel model."""

import numpy as np
import pytest

from repro.cancellation import SelfInterferenceChannel
from repro.utils import make_rng, signal_power


class TestConstruction:
    def test_shapes_must_match(self):
        with pytest.raises(ValueError):
            SelfInterferenceChannel([1e-9, 2e-9], [1.0])

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            SelfInterferenceChannel([-1e-9], [1.0])


class TestTypical:
    def test_leakage_dominates(self):
        si = SelfInterferenceChannel.typical(rng=make_rng(0))
        mags = np.abs(si.gains)
        assert np.argmax(mags) == 0  # circulator path strongest

    def test_isolation_near_circulator_spec(self):
        iso = [SelfInterferenceChannel.typical(
            circulator_isolation_db=15.0, rng=make_rng(s)).isolation_db()
            for s in range(20)]
        assert 10.0 < np.median(iso) < 20.0

    def test_delay_scales(self):
        si = SelfInterferenceChannel.typical(rng=make_rng(1))
        assert si.delays_s.min() >= 100e-12
        assert si.delays_s.max() <= 40e-9


class TestResponse:
    def test_single_path_magnitude_flat(self):
        si = SelfInterferenceChannel([1e-9], [0.2])
        freqs = np.linspace(-10e6, 10e6, 21)
        h = si.frequency_response(freqs)
        assert np.allclose(np.abs(h), 0.2)

    def test_two_paths_create_ripple(self):
        si = SelfInterferenceChannel([0.0, 25e-9], [0.2, 0.1])
        freqs = np.linspace(-10e6, 10e6, 101)
        mags = np.abs(si.frequency_response(freqs))
        assert mags.max() - mags.min() > 0.05

    def test_apply_attenuates_by_isolation(self):
        rng = make_rng(2)
        si = SelfInterferenceChannel([200e-12], [10 ** (-15 / 20)])
        x = rng.standard_normal(4096) + 1j * rng.standard_normal(4096)
        spec = np.fft.fft(x)
        f = np.fft.fftfreq(4096)
        spec[np.abs(f) > 0.2] = 0
        x = np.fft.ifft(spec)
        y = si.apply(x, 20e6)
        ratio_db = 10 * np.log10(signal_power(y) / signal_power(x))
        assert ratio_db == pytest.approx(-15.0, abs=0.5)

    def test_discrete_taps_reproduce_response(self):
        si = SelfInterferenceChannel.typical(rng=make_rng(3))
        fs = 160e6
        taps = si.discrete_taps(fs, num_taps=12)
        freqs = np.linspace(-0.1, 0.1, 31) * fs
        from repro.dsp.fir import fir_frequency_response

        fitted = fir_frequency_response(taps, freqs / fs)
        truth = si.frequency_response(freqs)
        err = np.mean(np.abs(fitted - truth) ** 2) / np.mean(np.abs(truth) ** 2)
        assert 10 * np.log10(err) < -30.0
