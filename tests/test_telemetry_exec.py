"""Multi-backend telemetry determinism through the sweep engine.

The engine's contract — parallel output bit-identical to serial —
extends to telemetry: the *deterministic snapshot* (counters, non-time
gauges/histograms, the event sequence stripped of timestamps) of a
sweep's merged telemetry must be identical whatever the job count or
backend, because per-shard collectors merge in task order.
"""

import numpy as np
import pytest

from repro.exec import Task, run_sweep, task_fn
from repro.telemetry import TelemetryCollector, current_collector, use_collector


@task_fn("test.telemetry.demo", version="1")
def _demo_task(value, rng=None):
    tel = current_collector()
    tel.counter("demo.calls", parity="odd" if value % 2 else "even").inc()
    tel.histogram("demo.value", kind="input").observe(float(value))
    tel.event("demo.task", value=value)
    draw = float(rng.normal()) if rng is not None else 0.0
    return {"value": value, "draw": draw}


def _tasks(n=12):
    return [Task("test.telemetry.demo", {"value": i}, seed=100 + i)
            for i in range(n)]


def _sweep_snapshot(jobs, backend=None, chunk_size=None):
    tel = TelemetryCollector(origin=f"run-{backend}-{jobs}")
    with use_collector(tel):
        result = run_sweep(_tasks(), jobs=jobs, backend=backend,
                           cache=False, chunk_size=chunk_size)
    return tel, result


class TestBackendInvariance:
    def test_thread_matches_serial(self):
        serial_tel, serial = _sweep_snapshot(jobs=1)
        thread_tel, thread = _sweep_snapshot(jobs=4, backend="thread")
        assert serial.results == thread.results
        assert serial_tel.deterministic_snapshot() == \
            thread_tel.deterministic_snapshot()

    def test_process_matches_serial(self):
        serial_tel, serial = _sweep_snapshot(jobs=1)
        proc_tel, proc = _sweep_snapshot(jobs=4, backend="process")
        assert serial.results == proc.results
        assert serial_tel.deterministic_snapshot() == \
            proc_tel.deterministic_snapshot()

    def test_chunk_layout_irrelevant(self):
        a_tel, _ = _sweep_snapshot(jobs=3, backend="thread", chunk_size=1)
        b_tel, _ = _sweep_snapshot(jobs=3, backend="thread", chunk_size=5)
        assert a_tel.deterministic_snapshot() == b_tel.deterministic_snapshot()

    def test_event_sequence_in_task_order(self):
        tel, _ = _sweep_snapshot(jobs=4, backend="thread", chunk_size=3)
        values = [e["labels"]["value"] for e in tel.events
                  if e["name"] == "demo.task"]
        assert values == list(range(12))

    def test_task_metrics_accumulated(self):
        tel, _ = _sweep_snapshot(jobs=2, backend="thread")
        calls = tel.metrics.counter_values("demo.calls")
        assert calls == {(("parity", "even"),): 6, (("parity", "odd"),): 6}
        hist = tel.histogram("demo.value", kind="input")
        assert hist.count == 12
        assert hist.total == pytest.approx(sum(range(12)))


class TestEngineMetrics:
    def test_sweep_counters_and_shard_spans(self):
        tel, result = _sweep_snapshot(jobs=2, backend="thread", chunk_size=4)
        assert tel.counter("exec.tasks.total").value == 12
        assert tel.counter("exec.tasks.executed").value == 12
        names = [s["name"] for s in tel.spans]
        assert names.count("exec.shard") == result.stats.chunks
        assert "exec.sweep" in names
        completed = tel.metrics.counter_values("exec.tasks.completed")
        assert completed == {(("fn", "test.telemetry.demo"),): 12}
        assert tel.histogram("exec.task.wall_ns",
                             fn="test.telemetry.demo").count == 12

    def test_cache_stats_surface_as_gauges(self, tmp_path):
        cache = tmp_path / "cache"
        tel_cold = TelemetryCollector()
        with use_collector(tel_cold):
            run_sweep(_tasks(4), jobs=1, cache=cache)
        assert tel_cold.gauge("exec.cache.misses").value == 4
        assert tel_cold.gauge("exec.cache.stores").value == 4

        tel_warm = TelemetryCollector()
        with use_collector(tel_warm):
            run_sweep(_tasks(4), jobs=1, cache=cache)
        assert tel_warm.gauge("exec.cache.hits").value == 4
        assert tel_warm.gauge("exec.cache.hit_rate").value == 1.0
        assert tel_warm.counter("exec.tasks.cache_hits").value == 4
        assert tel_warm.counter("exec.tasks.executed").value == 0

    def test_uninstrumented_sweep_collects_nothing(self):
        result = run_sweep(_tasks(4), jobs=2, backend="thread", cache=False)
        assert len(result) == 4        # and no collector was touched


class TestNetsimTelemetryDeterminism:
    def _run(self, jobs, backend=None):
        from repro.netsim import overall_gains_experiment

        tel = TelemetryCollector()
        with use_collector(tel):
            data = overall_gains_experiment(num_clients=4, seed=3,
                                            jobs=jobs, backend=backend)
        return tel.deterministic_snapshot(), data

    def test_thread_and_process_match_serial(self):
        serial_snap, serial = self._run(jobs=1)
        thread_snap, thread = self._run(jobs=4, backend="thread")
        assert serial_snap == thread_snap
        np.testing.assert_array_equal(serial["fastforward"],
                                      thread["fastforward"])
        proc_snap, _ = self._run(jobs=2, backend="process")
        assert serial_snap == proc_snap
