"""GuardedStage: containment of non-finite and over-envelope blocks."""

import numpy as np
import pytest

from repro.runtime.chain import Chain, FunctionStage, GainStage
from repro.supervision import (
    GuardedStage,
    RelayHealthMonitor,
    StageHealthError,
)


def _nan_stage():
    def poison(x):
        y = np.array(x, copy=True)
        y[..., ::7] = np.nan
        return y
    return FunctionStage(poison, name="poison")


@pytest.fixture
def noise():
    rng = np.random.default_rng(1)
    return rng.standard_normal(256) + 1j * rng.standard_normal(256)


class TestFiniteness:
    def test_sanitize_zeroes_bad_samples(self, noise):
        guard = GuardedStage(_nan_stage(), policy="sanitize")
        y = guard.process_block(noise)
        assert np.isfinite(y).all()
        assert (y[::7] == 0).all()
        assert guard.nonfinite_blocks == 1

    def test_raise_policy_raises(self, noise):
        guard = GuardedStage(_nan_stage(), policy="raise")
        with pytest.raises(StageHealthError) as err:
            guard.process_block(noise)
        assert err.value.stage_name == "poison"
        assert err.value.reason == "non-finite output"

    def test_clean_blocks_pass_through(self, noise):
        guard = GuardedStage(GainStage(0.0), policy="raise")
        assert np.allclose(guard.process_block(noise), noise)
        assert guard.trip_count == 0


class TestPowerEnvelope:
    def test_over_envelope_rescaled(self, noise):
        guard = GuardedStage(GainStage(40.0), max_power_db=10.0)
        y = guard.process_block(noise)
        power_db = 10 * np.log10(np.mean(np.abs(y) ** 2))
        assert power_db <= 10.0 + 1e-9
        assert guard.envelope_blocks == 1

    def test_under_envelope_untouched(self, noise):
        guard = GuardedStage(GainStage(0.0), max_power_db=30.0)
        assert np.allclose(guard.process_block(noise), noise)

    def test_raise_policy_on_envelope(self, noise):
        guard = GuardedStage(GainStage(40.0), max_power_db=10.0,
                             policy="raise")
        with pytest.raises(StageHealthError):
            guard.process_block(noise)


class TestIntegration:
    def test_reports_to_monitor(self, noise):
        mon = RelayHealthMonitor(max_guard_trip_rate=0.1, alpha=1.0)
        guard = GuardedStage(_nan_stage(), monitor=mon)
        guard.process_block(noise)
        assert "guard_trip_rate" in mon.violations()

    def test_delegates_attributes_and_latency(self):
        inner = GainStage(3.0, name="amp")
        guard = GuardedStage(inner)
        assert guard.name == "guarded-amp"
        assert guard.latency_samples == inner.latency_samples
        assert guard.gain_db == 3.0          # delegated attribute

    def test_composes_in_chain_and_resets(self, noise):
        guard = GuardedStage(_nan_stage())
        chain = Chain([guard, GainStage(0.0)])
        y = chain.run(noise)
        assert np.isfinite(y).all()
        chain.reset()
        assert guard.blocks == 0

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            GuardedStage(GainStage(0.0), policy="ignore")
