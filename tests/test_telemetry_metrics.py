"""Metric instruments: counters, gauges, histograms, the registry."""

import pytest

from repro.telemetry import (
    DEFAULT_EDGES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_spaced_edges,
    percentiles,
)


class TestLogSpacedEdges:
    def test_default_covers_ns_to_10s(self):
        assert DEFAULT_EDGES[0] == 1.0
        assert DEFAULT_EDGES[-1] == pytest.approx(1e10)
        assert len(DEFAULT_EDGES) == 31

    def test_strictly_increasing(self):
        edges = log_spaced_edges(1.0, 1e6, per_decade=4)
        assert all(b > a for a, b in zip(edges, edges[1:]))

    def test_per_decade_resolution(self):
        edges = log_spaced_edges(1.0, 1000.0, per_decade=1)
        assert edges == pytest.approx((1.0, 10.0, 100.0, 1000.0))

    def test_rejects_bad_ranges(self):
        with pytest.raises(ValueError):
            log_spaced_edges(0.0, 10.0)
        with pytest.raises(ValueError):
            log_spaced_edges(10.0, 1.0)
        with pytest.raises(ValueError):
            log_spaced_edges(1.0, 10.0, per_decade=0)


class TestInstruments:
    def test_counter(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_gauge_last_write_wins(self):
        g = Gauge()
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5

    def test_histogram_stats(self):
        h = Histogram(edges=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.counts == [1, 1, 1, 1]
        assert h.count == 4
        assert h.total == pytest.approx(555.5)
        assert h.min == 0.5 and h.max == 500.0
        assert h.mean == pytest.approx(555.5 / 4)

    def test_histogram_bucket_boundaries(self):
        # Bucket i holds (edges[i-1], edges[i]]: an observation exactly
        # on an edge lands in the bucket the edge closes.
        h = Histogram(edges=(1.0, 10.0))
        h.observe(1.0)
        h.observe(10.0)
        assert h.counts == [1, 1, 0]

    def test_empty_histogram(self):
        h = Histogram()
        assert h.mean == 0.0
        assert h.percentile(50) == 0.0

    def test_percentile_within_observed_range(self):
        h = Histogram()
        for v in (3.0, 4.0, 5.0, 1000.0):
            h.observe(v)
        for q in (0, 25, 50, 95, 100):
            assert h.min <= h.percentile(q) <= h.max

    def test_merge_adds_elementwise(self):
        a, b = Histogram(), Histogram()
        a.observe(5.0)
        b.observe(50.0)
        b.observe(2.0)
        a.merge(b)
        assert a.count == 3
        assert a.total == pytest.approx(57.0)
        assert a.min == 2.0 and a.max == 50.0

    def test_merge_rejects_mismatched_edges(self):
        with pytest.raises(ValueError):
            Histogram(edges=(1.0, 2.0)).merge(Histogram(edges=(1.0, 3.0)))


class TestPercentiles:
    """The shared public quantile helper (PR 10)."""

    def test_raw_sequence_matches_numpy_linear(self):
        import numpy as np

        data = [5.0, 1.0, 9.0, 3.0, 7.0, 2.0]
        ours = percentiles(data, (0, 25, 50, 95, 100))
        theirs = tuple(float(np.percentile(data, q))
                       for q in (0, 25, 50, 95, 100))
        assert ours == pytest.approx(theirs)

    def test_empty_input_returns_zeros(self):
        assert percentiles([], (50, 99)) == (0.0, 0.0)

    def test_histogram_instrument_dispatch(self):
        h = Histogram()
        for v in (3.0, 4.0, 5.0, 1000.0):
            h.observe(v)
        p50, p99 = percentiles(h, (50, 99))
        assert h.min <= p50 <= p99 <= h.max

    def test_snapshot_dict_dispatch(self):
        h = Histogram(edges=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        snap = {"edges": list(h.edges), "counts": list(h.counts),
                "count": h.count, "min": h.min, "max": h.max}
        direct = percentiles(h, (50, 95))
        via_snapshot = percentiles(snap, (50, 95))
        assert via_snapshot == pytest.approx(direct)

    def test_default_quantiles(self):
        assert len(percentiles([1.0, 2.0, 3.0])) == 2

    def test_rejects_non_increasing_edges(self):
        with pytest.raises(ValueError):
            Histogram(edges=(1.0, 1.0))


class TestRegistry:
    def test_point_identity_per_name_and_labels(self):
        reg = MetricsRegistry()
        assert reg.counter("x", a=1) is reg.counter("x", a=1)
        assert reg.counter("x", a=1) is not reg.counter("x", a=2)
        assert reg.counter("x", a=1) is not reg.counter("y", a=1)

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        assert reg.gauge("g", a=1, b=2) is reg.gauge("g", b=2, a=1)

    def test_counter_values(self):
        reg = MetricsRegistry()
        reg.counter("hits", kind="a").inc(2)
        reg.counter("hits", kind="b").inc(5)
        assert reg.counter_values("hits") == {
            (("kind", "a"),): 2, (("kind", "b"),): 5}

    def test_unit_registered_once(self):
        reg = MetricsRegistry()
        reg.histogram("wall", unit="ns", stage="a")
        reg.histogram("wall", stage="b")
        assert reg.unit("wall") == "ns"

    def test_snapshot_is_sorted_and_json_shaped(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a", z=1).inc(2)
        reg.counter("a", z=0).inc(3)
        snap = reg.snapshot()
        assert [c["name"] for c in snap["counters"]] == ["a", "a", "b"]
        assert snap["counters"][0]["labels"] == {"z": 0}
        assert snap["counters"][0]["value"] == 3

    def test_empty_histogram_snapshot_has_null_extremes(self):
        reg = MetricsRegistry()
        reg.histogram("h")
        item = reg.snapshot()["histograms"][0]
        assert item["min"] is None and item["max"] is None
        assert item["count"] == 0

    def test_merge_snapshot(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc(1)
        b.counter("n").inc(2)
        b.gauge("g").set(7)
        b.histogram("h", unit="ns").observe(100.0)
        a.merge(b.snapshot())
        assert a.counter("n").value == 3
        assert a.gauge("g").value == 7
        assert a.histogram("h").count == 1
        assert a.unit("h") == "ns"

    def test_merge_is_order_invariant_for_counters_and_histograms(self):
        parts = []
        for inc, obs in ((1, 10.0), (2, 20.0), (3, 30.0)):
            reg = MetricsRegistry()
            reg.counter("n").inc(inc)
            reg.histogram("h").observe(obs)
            parts.append(reg.snapshot())

        def merged(order):
            out = MetricsRegistry()
            for i in order:
                out.merge(parts[i])
            return out.snapshot()

        assert merged([0, 1, 2]) == merged([2, 0, 1])

    def test_mixed_label_value_types_sort(self):
        reg = MetricsRegistry()
        reg.counter("m", k=1).inc()
        reg.counter("m", k="a").inc()
        assert len(reg.snapshot()["counters"]) == 2
