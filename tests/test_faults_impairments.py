"""Impairment stages: physics, counters, determinism under chunking."""

import numpy as np
import pytest

from repro.faults import (
    AdcSaturationStage,
    FaultSchedule,
    QuantizationStage,
    ResidualSiStage,
    SampleDropStage,
    TapDriftStage,
)


def _stream(stage, x, sizes):
    stage.reset()
    out, pos, i = [], 0, 0
    while pos < x.shape[-1]:
        step = min(sizes[i % len(sizes)], x.shape[-1] - pos)
        out.append(stage.process_block(x[..., pos:pos + step]))
        pos += step
        i += 1
    return np.concatenate(out, axis=-1)


@pytest.fixture
def noise():
    rng = np.random.default_rng(0)
    return rng.standard_normal(4096) + 1j * rng.standard_normal(4096)


class TestAdcSaturation:
    def test_clips_at_rails(self, noise):
        stage = AdcSaturationStage(full_scale=0.5)
        y = stage.process_block(noise)
        assert np.abs(y.real).max() <= 0.5 + 1e-12
        assert np.abs(y.imag).max() <= 0.5 + 1e-12

    def test_clip_fraction_counts(self, noise):
        stage = AdcSaturationStage(full_scale=0.5)
        stage.process_block(noise)
        expected = np.mean((np.abs(noise.real) > 0.5)
                           | (np.abs(noise.imag) > 0.5))
        assert stage.clip_fraction == pytest.approx(expected)

    def test_quiet_signal_untouched(self):
        x = 0.01 * np.ones(64, dtype=complex)
        stage = AdcSaturationStage(full_scale=1.0)
        assert np.array_equal(stage.process_block(x), x)
        assert stage.clip_fraction == 0.0

    def test_reset_clears_counters(self, noise):
        stage = AdcSaturationStage(full_scale=0.1)
        stage.process_block(noise)
        stage.reset()
        assert stage.clip_fraction == 0.0


class TestQuantization:
    def test_error_bounded_by_half_step(self, noise):
        stage = QuantizationStage(bits=8, full_scale=4.0)
        y = stage.process_block(noise)
        err = np.max(np.abs((y - noise).real))
        assert err <= stage.step / 2 + 1e-12

    def test_more_bits_less_error(self, noise):
        coarse = QuantizationStage(bits=4, full_scale=4.0).process_block(noise)
        fine = QuantizationStage(bits=12, full_scale=4.0).process_block(noise)
        assert (np.mean(np.abs(fine - noise) ** 2)
                < np.mean(np.abs(coarse - noise) ** 2) / 100)

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            QuantizationStage(bits=0)


class TestTapDrift:
    def test_chunking_invariant_and_replayable(self, noise):
        sched = FaultSchedule(4)
        stage = TapDriftStage(sched, 20e6, 2.0, 2.0)
        whole = _stream(stage, noise, [4096])
        chunked = _stream(stage, noise, [1, 17, 251, 997])
        assert np.allclose(whole, chunked)

    def test_drift_accumulates(self, noise):
        stage = TapDriftStage(FaultSchedule(5), 20e6, 5.0, 5.0)
        stage.process_block(noise)
        assert stage.drift_db != 0.0
        assert stage.drift_phase_rad != 0.0

    def test_zero_sigma_is_identity(self, noise):
        stage = TapDriftStage(FaultSchedule(6), 20e6, 0.0, 0.0)
        assert np.allclose(stage.process_block(noise), noise)


class TestSampleDrop:
    def test_zero_mode_inserts_zeros(self, noise):
        stage = SampleDropStage(FaultSchedule(7), rate_per_sample=2e-3,
                                mean_burst_samples=16, mode="zero")
        y = stage.process_block(noise)
        assert stage.corrupted_fraction > 0
        assert np.isfinite(y).all()
        assert (y == 0).sum() >= stage.corrupted_fraction * noise.size

    def test_nan_mode_inserts_nans(self, noise):
        stage = SampleDropStage(FaultSchedule(8), rate_per_sample=2e-3,
                                mean_burst_samples=16, mode="nan")
        y = stage.process_block(noise)
        assert np.isnan(y.real).any()

    def test_chunking_invariant(self, noise):
        sched = FaultSchedule(9)
        stage = SampleDropStage(sched, 2e-3, 16, mode="zero")
        whole = _stream(stage, noise, [4096])
        chunked = _stream(stage, noise, [13, 301, 1999])
        assert np.array_equal(whole, chunked)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            SampleDropStage(FaultSchedule(1), mode="garbage")


class TestResidualSi:
    def test_baseline_residual_is_small(self, noise):
        stage = ResidualSiStage(FaultSchedule(10), jump_rate_per_sample=0.0,
                                baseline_residual_db=-50.0)
        y = stage.process_block(noise)
        rel = np.mean(np.abs(y - noise) ** 2) / np.mean(np.abs(noise) ** 2)
        assert 10 * np.log10(rel) == pytest.approx(-50.0, abs=2.0)

    def test_jump_raises_residual_until_retune(self, noise):
        stage = ResidualSiStage(FaultSchedule(11), jump_rate_per_sample=2e-3,
                                jump_residual_db=-8.0)
        y = stage.process_block(noise)
        assert stage.jumped
        assert stage.jump_count >= 1
        rel = np.mean(np.abs(y - noise) ** 2) / np.mean(np.abs(noise) ** 2)
        assert rel > 0.01            # way above the -50 dB baseline
        assert stage.retune()
        assert not stage.jumped
        assert stage.residual_si_db == -50.0

    def test_reset_replays_jump_sequence(self, noise):
        sched = FaultSchedule(12)
        stage = ResidualSiStage(sched, jump_rate_per_sample=1e-3)
        first = _stream(stage, noise, [512])
        count = stage.jump_count
        second = _stream(stage, noise, [512])
        assert np.array_equal(first, second)
        assert stage.jump_count == count
