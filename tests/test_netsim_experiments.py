"""Experiment runners: the paper's headline shapes at reduced scale.

Full-scale numbers live in the benchmarks; these tests assert the
qualitative results (who wins, direction of trends) quickly.
"""

import numpy as np
import pytest

from repro.netsim import (
    cancellation_sweep_experiment,
    fingerprint_experiment,
    latency_sweep_experiment,
    no_cnf_experiment,
    overall_gains_experiment,
    scenario_class_experiment,
    siso_gains_experiment,
)


@pytest.fixture(scope="module")
def overall():
    return overall_gains_experiment(num_clients=24, seed=1)


class TestOverallGains:
    def test_ff_beats_ap_only_3x_median(self, overall):
        # §5.1: "3x increase in median throughput" over the AP alone.
        assert 2.0 <= overall["median_ff_vs_ap"] <= 4.5

    def test_ff_beats_half_duplex(self, overall):
        assert overall["median_ff_vs_hd"] > 1.2

    def test_hd_beats_ap_at_median(self, overall):
        # The HD mesh helps, mostly at the edge.
        assert np.median(overall["ap_gain_vs_hd"]) <= 1.0

    def test_ff_never_much_worse_than_ap(self, overall):
        ratio = overall["fastforward"] / np.maximum(overall["ap_only"], 1e-3)
        assert np.min(ratio[overall["ap_only"] > 0]) > 0.7

    def test_edge_gains_larger(self, overall):
        snr = overall["direct_snr_db"]
        gains = overall["fastforward"] / np.maximum(overall["half_duplex"],
                                                    1e-3)
        edge = gains[snr < 10.0]
        near = gains[snr > 20.0]
        if edge.size and near.size:
            assert np.median(edge) >= np.median(near)


class TestSisoGains:
    def test_median_gain_moderate(self):
        # Fig. 14: 1.6x median (pure SNR gain, no rank expansion).
        data = siso_gains_experiment(num_clients=24, seed=1)
        assert 1.1 <= data["median_ff_vs_hd"] <= 2.2

    def test_tail_gain_larger_than_median(self):
        data = siso_gains_experiment(num_clients=24, seed=1)
        assert data["tail_ff_vs_hd"] >= data["median_ff_vs_hd"]


class TestScenarioClasses:
    def test_fig15_ordering(self):
        data = scenario_class_experiment(num_clients=36, seed=2)
        low = data["low_snr_low_rank"]
        high = data["high_snr_high_rank"]
        if low.size and high.size:
            # Fig. 15: the low-SNR/low-rank class gains most, the
            # high-SNR/high-rank class barely gains.
            assert np.median(low) > np.median(high)
        if high.size:
            assert np.median(high) < 1.6


class TestLatencySweep:
    def test_fig16_shape(self):
        data = latency_sweep_experiment(latencies_ns=(100, 300, 500),
                                        num_clients=12, seed=3)
        gains = data["median_gain"]
        # Monotone collapse; beyond the CP the relay is worse than no
        # relay (AP-only/HD median sits below 1).
        assert gains[0] > gains[2]
        assert gains[2] < 1.0


class TestNoCnf:
    def test_fig17_blind_repeater_median_near_one(self):
        data = no_cnf_experiment(num_clients=16, seed=4)
        # §5.5: "the median gain is small to non-existent" for AF while
        # FF keeps a solid median gain.
        assert data["median_af_vs_hd"] <= data["median_ff_vs_hd"] + 0.35

    def test_fig17_af_tail_still_gains(self):
        data = no_cnf_experiment(num_clients=16, seed=4)
        assert np.percentile(data["af_gain_vs_hd"], 90) > 1.3


class TestCancellationSweep:
    def test_fig18_monotone(self):
        data = cancellation_sweep_experiment(
            cancellations_db=(90, 100, 110), num_clients=12, seed=5)
        gains = data["median_gain"]
        assert gains[0] <= gains[-1] + 1e-9
        assert data["p80_gain"][0] <= data["p80_gain"][-1] + 1e-9


class TestFingerprint:
    def test_fig21_error_rates(self):
        data = fingerprint_experiment(num_locations=12,
                                      packets_per_client=15, seed=6)
        # Aggressive threshold: ~zero false positives; false negatives
        # present but modest.
        assert data["false_positive"].mean() < 0.01
        assert data["false_negative"].mean() < 0.25


class TestUplinkGains:
    def test_relay_helps_uplink_too(self):
        from repro.netsim import uplink_gains_experiment

        data = uplink_gains_experiment(num_clients=16, seed=5)
        assert data["median_ff_vs_ap"] > 1.2
        # The relay brings some previously-dead uplinks back.
        assert data["dead_fixed"] >= 0.0
        assert np.median(data["fastforward"]) > np.median(data["ap_only"])
