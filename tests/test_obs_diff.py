"""Perf-regression diffing: classification, thresholds, CLI exit."""

import json

import pytest

from repro.cli import main
from repro.obs.diff import (
    classify_metric,
    diff_metrics,
    diff_runs,
    flatten_bench,
    load_run,
)
from repro.telemetry import TelemetryCollector
from repro.telemetry.export import write_jsonl


class TestClassify:
    @pytest.mark.parametrize("path,expected", [
        ("parallel_s", "lower"),
        ("span.exec.sweep[jobs=2].total_ns", "lower"),
        ("latency.queue.p99_ms", "lower"),
        ("fairness.max_deviation", "lower"),
        ("frames.shed_rate", "lower"),
        ("parallel_speedup", "higher"),
        ("warm_cache_speedup", "higher"),
        ("frames.carried_fps", "higher"),
        ("cache.hit_rate", "higher"),
        ("block_size", None),
        ("jobs", None),
        ("num_clients", None),
    ])
    def test_direction(self, path, expected):
        assert classify_metric(path) == expected


class TestFlatten:
    def test_nested_dict_to_dotted_paths(self):
        flat = flatten_bench({"a": {"b": 1, "c": 2.5}, "d": 3})
        assert flat == {"a.b": 1.0, "a.c": 2.5, "d": 3.0}

    def test_environment_subtrees_skipped(self):
        flat = flatten_bench({"machine": {"cpus": 8}, "seed": 1,
                              "gates": {"x": 1}, "parallel_s": 2.0})
        assert flat == {"parallel_s": 2.0}

    def test_booleans_not_numbers(self):
        assert flatten_bench({"ok": True, "x": 1}) == {"x": 1.0}


class TestDiffMetrics:
    def test_self_diff_is_clean(self):
        base = {"parallel_s": 10.0, "parallel_speedup": 2.0}
        report = diff_metrics(base, dict(base))
        assert report.ok
        assert not report.regressions

    def test_lower_better_regression(self):
        report = diff_metrics({"parallel_s": 10.0}, {"parallel_s": 20.0})
        (entry,) = report.regressions
        assert entry.metric == "parallel_s"
        assert entry.ratio == pytest.approx(2.0)

    def test_higher_better_regression(self):
        report = diff_metrics({"parallel_speedup": 2.0},
                              {"parallel_speedup": 1.0})
        assert not report.ok

    def test_improvement_not_regression(self):
        report = diff_metrics({"parallel_s": 20.0}, {"parallel_s": 10.0})
        assert report.ok
        assert len(report.improvements) == 1

    def test_within_threshold_is_ok(self):
        report = diff_metrics({"parallel_s": 10.0}, {"parallel_s": 11.0},
                              threshold=0.25)
        assert report.ok and not report.improvements

    def test_unclassified_changes_are_informational(self):
        report = diff_metrics({"jobs": 1.0}, {"jobs": 4.0})
        assert report.ok
        assert report.entries[0].status == "changed"

    def test_added_and_removed(self):
        report = diff_metrics({"old_s": 1.0}, {"new_s": 1.0})
        statuses = {e.metric: e.status for e in report.entries}
        assert statuses == {"old_s": "removed", "new_s": "added"}
        assert report.ok

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            diff_metrics({}, {}, threshold=0.0)

    def test_format_lines_flags_regressions(self):
        report = diff_metrics({"parallel_s": 10.0}, {"parallel_s": 30.0})
        text = "\n".join(report.format_lines())
        assert "REGRESSION" in text and "parallel_s" in text


class TestDiffRuns:
    @staticmethod
    def _bench(tmp_path, name, **overrides):
        record = {"parallel_s": 10.0, "serial_s": 9.0,
                  "parallel_speedup": 0.9,
                  "machine": {"cpus": 1}}
        record.update(overrides)
        path = tmp_path / name
        path.write_text(json.dumps(record))
        return str(path)

    def test_bench_self_diff(self, tmp_path):
        base = self._bench(tmp_path, "base.json")
        assert diff_runs(base, base).ok

    def test_bench_regression_detected(self, tmp_path):
        base = self._bench(tmp_path, "base.json")
        worse = self._bench(tmp_path, "worse.json", parallel_s=25.0)
        report = diff_runs(base, worse)
        assert [e.metric for e in report.regressions] == ["parallel_s"]

    def test_telemetry_runs_diff_on_span_totals(self, tmp_path):
        def export(name, burn):
            tel = TelemetryCollector(origin="diff-test")
            with tel.span("hot.loop"):
                total = 0.0
                for i in range(burn):
                    total += i * 0.5
            path = tmp_path / name
            write_jsonl(tel, path)
            return str(path)

        base = export("a.jsonl", 1000)
        kind, metrics = load_run(base)
        assert kind == "telemetry"
        assert any(m.startswith("span.hot.loop") for m in metrics)
        assert diff_runs(base, base).ok

    def test_kind_mismatch_rejected(self, tmp_path):
        bench = self._bench(tmp_path, "bench.json")
        tel = TelemetryCollector()
        tel.counter("obs.x").inc()
        jsonl = tmp_path / "run.jsonl"
        write_jsonl(tel, jsonl)
        with pytest.raises(ValueError):
            diff_runs(bench, str(jsonl))


class TestCliExit:
    def test_diff_self_passes(self, tmp_path, capsys):
        record = {"parallel_s": 10.0}
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(record))
        assert main(["obs", "diff", str(path), str(path)]) == 0

    def test_diff_regression_exits_2(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        base.write_text(json.dumps({"parallel_s": 10.0}))
        worse = tmp_path / "worse.json"
        worse.write_text(json.dumps({"parallel_s": 21.0}))
        with pytest.raises(SystemExit) as exc:
            main(["obs", "diff", str(base), str(worse)])
        assert exc.value.code == 2

    def test_diff_json_report(self, tmp_path, capsys):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({"parallel_s": 10.0}))
        out = tmp_path / "diff.json"
        main(["obs", "diff", str(path), str(path), "--json", str(out)])
        data = json.loads(out.read_text())
        assert data["regressions"] == 0
