"""Relay <-> faults/supervision wiring at the sample level."""

import numpy as np
import pytest

from repro.core.relay import FastForwardRelay, RelayConfig
from repro.faults import (
    AdcSaturationStage,
    FaultSchedule,
    ResidualSiStage,
    SampleDropStage,
)
from repro.supervision import (
    RelayHealthMonitor,
    RelaySupervisor,
    SupervisorEventKind as K,
)
from repro.utils import make_rng

FS = 20e6


def _siso_relay(seed=0):
    cfg = RelayConfig()
    relay = FastForwardRelay(cfg)
    rng = make_rng(seed)
    n = len(cfg.params.used_subcarriers())

    def h(scale=1.0):
        return scale * (rng.standard_normal(n)
                        + 1j * rng.standard_normal(n)) / np.sqrt(2)

    relay.configure_siso_link(h(0.05), h(), h())
    return relay


@pytest.fixture
def relay():
    return _siso_relay()


@pytest.fixture
def burst():
    rng = make_rng(42)
    return 0.1 * (rng.standard_normal(4096) + 1j * rng.standard_normal(4096))


class TestInputValidation:
    def test_rejects_nonfinite_input(self, relay, burst):
        bad = burst.copy()
        bad[10] = np.inf
        with pytest.raises(ValueError, match="non-finite"):
            relay.process(bad, FS)

    def test_supervised_sanitises_instead(self, relay, burst):
        bad = burst.copy()
        bad[10] = np.nan
        sup = RelaySupervisor()
        y = relay.process(bad, FS, supervisor=sup)
        assert np.isfinite(y).all()

    def test_mimo_rejects_nonfinite(self):
        cfg = RelayConfig()
        relay = FastForwardRelay(cfg)
        rng = make_rng(3)
        n = len(cfg.params.used_subcarriers())
        m = (rng.standard_normal((n, 2, 2))
             + 1j * rng.standard_normal((n, 2, 2)))
        relay.configure_mimo_link(0.05 * m, m, m)
        x = np.zeros((2, 1024), dtype=complex)
        x[0, 5] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            relay.process_mimo(x, FS)


class TestFaultComposition:
    def test_faults_keyword_applies_impairments(self, relay, burst):
        clean = relay.process(burst, FS)
        clip = AdcSaturationStage(full_scale=0.05)
        faulty = relay.process(burst, FS, faults=[clip])
        assert clip.clip_fraction > 0.2
        assert not np.allclose(clean, faulty)

    def test_fault_schedules_continue_across_calls(self, relay, burst):
        sched = FaultSchedule(5)
        drop = SampleDropStage(sched, rate_per_sample=5e-4,
                               mean_burst_samples=64, mode="zero")
        relay.process(burst, FS, faults=[drop])
        first = drop.corrupted_fraction
        relay.process(burst, FS, faults=[drop])
        # The burst process advanced, not replayed: the cursor moved on.
        assert drop._cursor == 2 * burst.size
        assert drop.corrupted_fraction != pytest.approx(0.0) or first == 0.0

    def test_unfaulted_output_reproducible_after_faulted_call(self, relay,
                                                              burst):
        clean = relay.process(burst, FS)
        relay.process(burst, FS,
                      faults=[AdcSaturationStage(full_scale=0.01)])
        again = relay.process(burst, FS)
        assert np.allclose(clean, again)


class TestSupervisedProcessing:
    def test_nan_bursts_are_contained(self, relay, burst):
        sched = FaultSchedule(6)
        drop = SampleDropStage(sched, rate_per_sample=2e-3,
                               mean_burst_samples=32, mode="nan")
        sup = RelaySupervisor()
        y = relay.process(burst, FS, faults=[drop], supervisor=sup)
        assert np.isfinite(y).all()
        assert K.BLOCK_SANITISED in sup.event_kinds()

    def test_clip_fraction_reaches_monitor(self, relay, burst):
        sup = RelaySupervisor(monitor=RelayHealthMonitor(alpha=1.0))
        clip = AdcSaturationStage(full_scale=0.02)
        relay.process(burst, FS, faults=[clip], supervisor=sup)
        assert sup.monitor.value("clip_fraction") == pytest.approx(
            clip.clip_fraction)

    def test_si_jump_reaches_monitor(self, relay, burst):
        sup = RelaySupervisor(monitor=RelayHealthMonitor(alpha=1.0))
        si = ResidualSiStage(FaultSchedule(7), jump_rate_per_sample=2e-3)
        relay.process(burst, FS, faults=[si], supervisor=sup)
        assert si.jumped
        assert sup.monitor.value("residual_si_db") == pytest.approx(
            si.jump_residual_db)

    def test_supervisor_advances_time_with_stream(self, relay, burst):
        sup = RelaySupervisor()
        relay.process(burst, FS, supervisor=sup)
        assert sup.now_s == pytest.approx(burst.size / FS)

    def test_muted_supervisor_silences_output(self, relay, burst):
        sup = RelaySupervisor()
        for i in range(20):                 # drive the ladder to fallback
            sup.monitor.observe(clip_fraction=0.5)
            sup.step(i * 0.2)
        assert not sup.relaying
        y = relay.process(burst, FS, supervisor=sup)
        assert np.all(y == 0)


class TestStaleChannelEvaluation:
    def test_channels_override_matches_configured(self, relay):
        base = relay.destination_snr_db()
        same = relay.destination_snr_db(
            channels=(relay._h_sd, relay._h_sr, relay._h_rd))
        assert np.allclose(base, same)

    def test_drifted_channels_change_snr(self, relay):
        n = relay._h_sr.size
        rng = make_rng(9)
        drifted = relay._h_sr * np.exp(1j * rng.uniform(0, np.pi, n))
        moved = relay.destination_snr_db(
            channels=(relay._h_sd, drifted, relay._h_rd))
        assert not np.allclose(relay.destination_snr_db(), moved)
