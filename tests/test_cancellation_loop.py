"""The positive-feedback relay loop (Fig. 7)."""

import numpy as np
import pytest

from repro.cancellation import RelayLoop, loop_is_stable
from repro.utils import make_rng


def _source(rng, n=3000, power_dbm=-80.0):
    amp = np.sqrt(10.0 ** (power_dbm / 10.0) / 2.0)
    return amp * (rng.standard_normal(n) + 1j * rng.standard_normal(n))


class TestAnalyticCondition:
    def test_below_isolation_stable(self):
        assert loop_is_stable(100.0, 110.0)

    def test_above_isolation_unstable(self):
        assert not loop_is_stable(111.0, 110.0)

    def test_margin_shifts_boundary(self):
        assert loop_is_stable(105.0, 110.0)
        assert not loop_is_stable(105.0, 110.0, margin_db=6.0)


class TestSimulatedLoop:
    def test_stable_with_margin(self):
        rng = make_rng(0)
        res = RelayLoop(100.0, 110.0).run(_source(rng))
        assert res.stable

    def test_unstable_when_gain_exceeds_isolation(self):
        rng = make_rng(1)
        res = RelayLoop(113.0, 110.0).run(_source(rng))
        assert not res.stable

    def test_unstable_loop_saturates(self):
        rng = make_rng(2)
        res = RelayLoop(120.0, 110.0).run(_source(rng), saturation_dbm=30.0)
        assert res.peak_output_power_dbm == pytest.approx(30.0, abs=0.5)

    def test_output_level_matches_amplification(self):
        rng = make_rng(3)
        res = RelayLoop(100.0, 110.0).run(_source(rng, power_dbm=-80.0))
        out_dbm = 10 * np.log10(np.mean(np.abs(res.output) ** 2))
        # -80 dBm + 100 dB, plus a ~0.5 dB wideband residual build-up.
        assert out_dbm == pytest.approx(20.5, abs=1.5)

    def test_loop_gain_reported(self):
        assert RelayLoop(97.0, 110.0).loop_gain_db == pytest.approx(-13.0)

    def test_delay_must_be_positive(self):
        with pytest.raises(ValueError):
            RelayLoop(90.0, 110.0, delay_samples=0)


class TestSteadyState:
    def test_converges_for_stable(self):
        loop = RelayLoop(104.0, 110.0)
        # Power ratio 10^(-6/10) ~ 0.25: power build-up ~1/(1-0.25).
        assert loop.steady_state_residual_gain() == pytest.approx(4.0 / 3.0,
                                                                  rel=0.02)

    def test_infinite_for_unstable(self):
        assert RelayLoop(111.0, 110.0).steady_state_residual_gain() == np.inf

    def test_simulation_matches_formula(self):
        rng = make_rng(4)
        loop = RelayLoop(104.0, 110.0)
        res = loop.run(_source(rng, power_dbm=-85.0))
        out_power = np.mean(np.abs(res.output[500:]) ** 2)
        expected = 10.0 ** ((-85.0 + 104.0) / 10.0) \
            * loop.steady_state_residual_gain()
        assert 10 * np.log10(out_power) == pytest.approx(
            10 * np.log10(expected), abs=1.5)
