"""Construct-and-forward filter math (Eq. 1 and Eq. 2)."""

import numpy as np
import pytest

from repro.core import (
    mimo_cnf_filter,
    mimo_effective_channel,
    mimo_stream_sinrs_with_relay,
    siso_cnf_phase,
    siso_destination_snr,
)
from repro.core.cnf_filter import _unitary_from_params, band_phase_alignment
from repro.utils import make_rng


def _random_channels(rng, n=16):
    h = lambda: rng.standard_normal(n) + 1j * rng.standard_normal(n)
    return h(), h(), h()


class TestSisoPhase:
    def test_unit_modulus(self):
        rng = make_rng(0)
        f = siso_cnf_phase(*_random_channels(rng))
        assert np.allclose(np.abs(f), 1.0)

    def test_aligns_relay_path_with_direct(self):
        rng = make_rng(1)
        h_sd, h_sr, h_rd = _random_channels(rng)
        f = siso_cnf_phase(h_sd, h_sr, h_rd)
        combined = h_rd * f * h_sr
        # Relayed term now points along the direct term everywhere.
        phase_error = np.angle(combined * np.conj(h_sd))
        assert np.abs(phase_error).max() < 1e-9

    def test_is_the_optimum(self):
        rng = make_rng(2)
        h_sd, h_sr, h_rd = _random_channels(rng, n=8)
        f_opt = siso_cnf_phase(h_sd, h_sr, h_rd)
        best = np.abs(h_sd + h_rd * f_opt * h_sr)
        for _ in range(50):
            f_rand = np.exp(2j * np.pi * rng.random(8))
            other = np.abs(h_sd + h_rd * f_rand * h_sr)
            assert np.all(best >= other - 1e-9)

    def test_zero_relay_path_defaults_to_one(self):
        f = siso_cnf_phase(np.ones(4), np.zeros(4), np.ones(4))
        assert np.allclose(f, 1.0)


class TestSisoSnr:
    def test_constructive_beats_blind(self):
        rng = make_rng(3)
        h_sd, h_sr, h_rd = [0.001 * h for h in _random_channels(rng)]
        f_cnf = siso_cnf_phase(h_sd, h_sr, h_rd)
        snr_cnf = siso_destination_snr(h_sd, h_sr, h_rd, f_cnf, 40.0)
        snr_blind = siso_destination_snr(h_sd, h_sr, h_rd,
                                         np.ones_like(f_cnf), 40.0)
        assert np.mean(snr_cnf) > np.mean(snr_blind)

    def test_relay_noise_counted(self):
        h = np.ones(4) * 1e-4
        f = np.ones(4)
        quiet = siso_destination_snr(h, h, h, f, 60.0,
                                     relay_noise_floor_dbm=-120.0)
        noisy = siso_destination_snr(h, h, h, f, 60.0,
                                     relay_noise_floor_dbm=-80.0)
        assert np.all(quiet > noisy)

    def test_zero_filter_recovers_direct_only(self):
        rng = make_rng(4)
        h_sd, h_sr, h_rd = [0.001 * h for h in _random_channels(rng)]
        snr = siso_destination_snr(h_sd, h_sr, h_rd, np.zeros_like(h_sd), 60.0)
        direct = 10 * np.log10(np.abs(h_sd) ** 2 * 100.0 / 1e-9)
        assert np.allclose(snr, direct, atol=1e-9)


class TestUnitaryParametrisation:
    def test_produces_unitary(self):
        rng = make_rng(5)
        for _ in range(10):
            u = _unitary_from_params(rng.standard_normal(4), 2)
            assert np.allclose(u @ u.conj().T, np.eye(2), atol=1e-10)

    def test_zero_params_is_identity(self):
        assert np.allclose(_unitary_from_params(np.zeros(4), 2), np.eye(2))


class TestMimoCnf:
    def _draw(self, rng, scale=1e-3):
        g = lambda: scale * (rng.standard_normal((2, 2))
                             + 1j * rng.standard_normal((2, 2)))
        return g(), g(), g()

    def test_returns_unitary(self):
        rng = make_rng(6)
        h_sd, h_sr, h_rd = self._draw(rng)
        f = mimo_cnf_filter(h_sd, h_sr, h_rd, 40.0)
        assert np.allclose(f @ f.conj().T, np.eye(2), atol=1e-8)

    def test_beats_identity_filter(self):
        rng = make_rng(7)
        wins = 0
        for _ in range(10):
            h_sd, h_sr, h_rd = self._draw(rng)
            f = mimo_cnf_filter(h_sd, h_sr, h_rd, 40.0)
            det_opt = abs(np.linalg.det(
                mimo_effective_channel(h_sd, h_sr, h_rd, f, 40.0)))
            det_eye = abs(np.linalg.det(
                mimo_effective_channel(h_sd, h_sr, h_rd, np.eye(2), 40.0)))
            wins += det_opt >= det_eye - 1e-12
        assert wins == 10

    def test_refinement_improves_on_init(self):
        rng = make_rng(8)
        h_sd, h_sr, h_rd = self._draw(rng)
        f0 = mimo_cnf_filter(h_sd, h_sr, h_rd, 40.0, refine=False)
        f1 = mimo_cnf_filter(h_sd, h_sr, h_rd, 40.0, refine=True)
        d0 = abs(np.linalg.det(mimo_effective_channel(h_sd, h_sr, h_rd, f0, 40.0)))
        d1 = abs(np.linalg.det(mimo_effective_channel(h_sd, h_sr, h_rd, f1, 40.0)))
        assert d1 >= d0 - 1e-12

    def test_antenna_count_mismatch(self):
        with pytest.raises(ValueError):
            mimo_cnf_filter(np.eye(2), np.ones((3, 2)), np.ones((2, 2)), 40.0)

    def test_rank_expansion_through_pinhole(self):
        # The flagship effect: direct channel rank-1, relay adds an
        # independent path, the combined channel supports two streams.
        from repro.channel import pinhole_mimo
        from repro.phy.mimo import effective_rank

        rng = make_rng(9)
        h_sd = 1e-3 * pinhole_mimo(2, 2, leakage=0.0, rng=rng)
        h_sr = 1e-2 * (rng.standard_normal((2, 2))
                       + 1j * rng.standard_normal((2, 2)))
        h_rd = 1e-2 * (rng.standard_normal((2, 2))
                       + 1j * rng.standard_normal((2, 2)))
        f = mimo_cnf_filter(h_sd, h_sr, h_rd, 40.0)
        h_eff = mimo_effective_channel(h_sd, h_sr, h_rd, f, 40.0)
        assert effective_rank(h_sd, threshold_db=40.0) == 1
        assert effective_rank(h_eff, threshold_db=40.0) == 2
        # The pinhole's second singular value is exactly zero; the relay
        # path reopens it.
        sv_direct = np.linalg.svd(h_sd, compute_uv=False)
        sv_eff = np.linalg.svd(h_eff, compute_uv=False)
        assert sv_direct[1] < 1e-12
        assert sv_eff[1] > 1e-4


class TestStreamSinrs:
    def test_relay_lifts_both_streams(self):
        from repro.channel import pinhole_mimo

        rng = make_rng(10)
        h_sd = 3e-4 * pinhole_mimo(2, 2, leakage=0.02, rng=rng)
        h_sr = 1e-2 * (rng.standard_normal((2, 2))
                       + 1j * rng.standard_normal((2, 2)))
        h_rd = 1e-2 * (rng.standard_normal((2, 2))
                       + 1j * rng.standard_normal((2, 2)))
        f = mimo_cnf_filter(h_sd, h_sr, h_rd, 37.0)
        with_relay = mimo_stream_sinrs_with_relay(h_sd, h_sr, h_rd, f, 37.0)
        without = mimo_stream_sinrs_with_relay(
            h_sd, np.zeros((2, 2)), h_rd, f, 0.0)
        assert np.sort(with_relay)[0] > np.sort(without)[0]

    def test_band_phase_alignment_shape(self):
        rng = make_rng(11)
        n_sc = 7
        h = lambda: 1e-3 * (rng.standard_normal((n_sc, 2, 2))
                            + 1j * rng.standard_normal((n_sc, 2, 2)))
        h_sd, h_sr, h_rd = h(), h(), h()
        f0 = np.eye(2, dtype=complex)
        phases = band_phase_alignment(h_sd, h_sr, h_rd, f0, 30.0)
        assert phases.shape == (n_sc,)
        assert np.all((phases >= 0) & (phases < 2 * np.pi))
