"""Rolling series ring buffers and the burn-rate SLO engine."""

import json

import pytest

from repro.obs.series import DEFAULT_RETENTION, Series, SeriesRecorder
from repro.obs.slo import (
    DEFAULT_WINDOWS,
    SloEngine,
    SloSpec,
    SloWindow,
    default_service_slos,
    load_slo_specs,
)


class TestSeries:
    def test_retention_bounds_memory(self):
        s = Series("x", retention=4)
        for i in range(10):
            s.sample(i, float(i))
        assert len(s.points) == 4
        assert [v for _, v in s.points] == [6.0, 7.0, 8.0, 9.0]

    def test_window_is_half_open(self):
        s = Series("x")
        for i in range(5):
            s.sample(float(i), float(i))
        # (now - span, now]: t=2 excluded, t=3 and t=4 included.
        assert s.window(4.0, 2.0) == [3.0, 4.0]

    def test_latest(self):
        s = Series("x")
        assert s.latest is None
        s.sample(1.0, 42.0)
        assert s.latest == 42.0


class TestSeriesRecorder:
    def test_get_or_create(self):
        rec = SeriesRecorder()
        a = rec.series("svc.a")
        assert rec.series("svc.a") is a
        assert "svc.a" in rec
        assert rec.names() == ["svc.a"]

    def test_snapshot_is_sorted_and_plain(self):
        rec = SeriesRecorder()
        rec.sample("b", 1.0, 2.0)
        rec.sample("a", 1.0, 3.0, unit="s")
        snap = rec.snapshot()
        assert list(snap) == ["a", "b"]
        assert snap["a"] == {"unit": "s", "points": [[1.0, 3.0]]}

    def test_jsonl_round_trip(self, tmp_path):
        rec = SeriesRecorder(retention=16)
        for i in range(20):
            rec.sample("svc.x", i * 0.1, float(i), unit="s")
        rec.sample("svc.y", 0.5, 1.0)
        path = tmp_path / "series.jsonl"
        lines = rec.write_jsonl(path)
        assert lines == 16 + 1          # retention-trimmed + one y
        loaded = SeriesRecorder.load_jsonl(path)
        assert loaded.retention == 16
        assert loaded.snapshot() == rec.snapshot()

    def test_load_rejects_unknown_record_type(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"type": "bogus"}) + "\n")
        with pytest.raises(ValueError):
            SeriesRecorder.load_jsonl(path)

    def test_default_retention(self):
        assert SeriesRecorder().retention == DEFAULT_RETENTION


class TestSloSpec:
    def test_objective_validation(self):
        with pytest.raises(ValueError):
            SloSpec(name="x", series="s", objective="between", target=1.0)
        with pytest.raises(ValueError):
            SloSpec(name="x", series="s", objective="le", target=1.0,
                    budget=0.0)

    def test_bad_fraction(self):
        spec = SloSpec(name="lat", series="s", objective="le", target=0.05)
        assert spec.bad_fraction([0.01, 0.10, 0.20, 0.02]) == 0.5
        assert spec.bad_fraction([]) == 0.0

    def test_ge_objective(self):
        spec = SloSpec(name="avail", series="s", objective="ge", target=1.0)
        assert spec.is_bad(0.5)
        assert not spec.is_bad(1.0)

    def test_dict_round_trip(self):
        spec = SloSpec(name="x", series="s", objective="ge", target=2.0,
                       budget=0.2)
        assert SloSpec.from_dict(spec.as_dict()) == spec

    def test_default_service_slos_shape(self):
        specs = default_service_slos()
        assert [s.name for s in specs] == \
            ["frame-latency", "shed-rate", "chain-availability"]
        assert all(s.windows == DEFAULT_WINDOWS for s in specs)


def _spec(budget=0.1, min_samples=4):
    return SloSpec(name="lat", series="svc.lat", objective="le",
                   target=1.0, budget=budget, min_samples=min_samples,
                   windows=(SloWindow(long_s=1.0, short_s=0.3,
                                      burn_threshold=1.0),))


def _feed(recorder, t0, values, dt=0.1):
    for i, v in enumerate(values):
        recorder.sample("svc.lat", t0 + i * dt, v)


class TestSloEngine:
    def test_fires_when_both_windows_burn(self):
        rec = SeriesRecorder()
        engine = SloEngine([_spec()])
        _feed(rec, 0.0, [0.5] * 10)           # healthy
        assert engine.evaluate(rec, 0.9) == []
        _feed(rec, 1.0, [5.0] * 10)           # hard breach
        transitions = engine.evaluate(rec, 1.9)
        assert [t.kind for t in transitions] == ["firing"]
        assert engine.firing == ["lat"]

    def test_resolves_when_burn_stops(self):
        rec = SeriesRecorder()
        engine = SloEngine([_spec()])
        _feed(rec, 0.0, [5.0] * 10)
        engine.evaluate(rec, 0.9)
        assert engine.firing == ["lat"]
        _feed(rec, 1.0, [0.5] * 15)
        engine.evaluate(rec, 2.4)             # short+long windows clean
        assert engine.firing == []
        kinds = [a.kind for a in engine.alerts]
        assert kinds == ["firing", "resolved"]

    def test_short_window_gates_stale_breaches(self):
        rec = SeriesRecorder()
        engine = SloEngine([_spec()])
        # Bad samples only in the long window, none recent: no page.
        _feed(rec, 0.0, [5.0] * 6)
        _feed(rec, 0.7, [0.5] * 4, dt=0.05)
        engine.evaluate(rec, 0.9)
        assert engine.firing == []

    def test_min_samples_suppresses_cold_start(self):
        rec = SeriesRecorder()
        engine = SloEngine([_spec(min_samples=8)])
        _feed(rec, 0.0, [5.0] * 3)
        engine.evaluate(rec, 0.2)
        assert engine.firing == []

    def test_same_input_gives_identical_stream(self):
        def run():
            rec = SeriesRecorder()
            engine = SloEngine([_spec()])
            _feed(rec, 0.0, [0.5, 5.0, 5.0, 5.0, 0.5, 5.0, 5.0, 5.0])
            for k in range(1, 9):
                engine.evaluate(rec, k * 0.1)
            return engine.alert_stream()

        assert run() == run()

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            SloEngine([_spec(), _spec()])

    def test_status_projection(self):
        rec = SeriesRecorder()
        engine = SloEngine([_spec()])
        _feed(rec, 0.0, [5.0] * 10)
        engine.evaluate(rec, 0.9)
        status = engine.status()
        assert status["firing"] == ["lat"]
        assert status["state"]["lat"]["firing"] is True
        assert status["alerts"][0]["kind"] == "firing"
        assert status["specs"][0]["name"] == "lat"

    def test_alerts_mirrored_into_telemetry(self):
        from repro.telemetry import TelemetryCollector

        tel = TelemetryCollector()
        rec = SeriesRecorder()
        engine = SloEngine([_spec()], telemetry=tel)
        _feed(rec, 0.0, [5.0] * 10)
        engine.evaluate(rec, 0.9)
        values = tel.metrics.counter_values("obs.slo.alerts")
        assert sum(values.values()) == 1
        assert [e["name"] for e in tel.events] == ["obs.slo.alert"]


class TestLoadSpecs:
    def test_list_and_wrapper_forms(self, tmp_path):
        spec = {"name": "x", "series": "s", "objective": "le",
                "target": 1.0}
        p1 = tmp_path / "list.json"
        p1.write_text(json.dumps([spec]))
        p2 = tmp_path / "wrapped.json"
        p2.write_text(json.dumps({"slos": [spec]}))
        assert load_slo_specs(p1) == load_slo_specs(p2)
        (loaded,) = load_slo_specs(p1)
        assert loaded.windows == DEFAULT_WINDOWS
