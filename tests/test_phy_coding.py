"""The coding chain: scrambler, convolutional code, Viterbi, puncturing,
interleaver."""

import numpy as np
import pytest

from repro.phy.coding import (
    BlockInterleaver,
    ConvolutionalEncoder,
    PUNCTURE_PATTERNS,
    Scrambler,
    ViterbiDecoder,
    coded_length,
    depuncture,
    descramble,
    puncture,
    scramble,
)
from repro.utils import make_rng


class TestScrambler:
    def test_involution(self):
        rng = make_rng(0)
        bits = rng.integers(0, 2, 503)
        assert np.array_equal(descramble(scramble(bits)), bits)

    def test_different_seeds_differ(self):
        bits = np.zeros(64, dtype=int)
        assert not np.array_equal(scramble(bits, seed=0x5D),
                                  scramble(bits, seed=0x24))

    def test_sequence_period_127(self):
        seq = Scrambler(0x5D).sequence(254)
        assert np.array_equal(seq[:127], seq[127:])

    def test_sequence_is_balanced(self):
        seq = Scrambler(0x7F).sequence(127)
        assert seq.sum() == 64  # maximal-length LFSR property

    def test_zero_seed_rejected(self):
        with pytest.raises(ValueError):
            Scrambler(0)


class TestConvolutionalEncoder:
    def test_rate_half_output_length(self):
        enc = ConvolutionalEncoder()
        out = enc.encode(np.zeros(10, dtype=int), terminate=False)
        assert out.size == 20

    def test_termination_appends_tail(self):
        enc = ConvolutionalEncoder()
        out = enc.encode(np.ones(10, dtype=int), terminate=True)
        assert out.size == 2 * (10 + 6)

    def test_known_impulse_response(self):
        # A single 1 followed by zeros produces the generator taps.
        enc = ConvolutionalEncoder()
        out = enc.encode(np.array([1, 0, 0, 0, 0, 0, 0]), terminate=False)
        g0 = out[0::2]
        g1 = out[1::2]
        # 133 octal = 1011011, 171 octal = 1111001 (MSB = current bit).
        assert list(g0) == [1, 0, 1, 1, 0, 1, 1]
        assert list(g1) == [1, 1, 1, 1, 0, 0, 1]

    def test_linearity(self):
        rng = make_rng(1)
        enc = ConvolutionalEncoder()
        a = rng.integers(0, 2, 40)
        b = rng.integers(0, 2, 40)
        lhs = enc.encode((a ^ b), terminate=False)
        rhs = enc.encode(a, terminate=False) ^ enc.encode(b, terminate=False)
        assert np.array_equal(lhs, rhs)

    def test_transitions_consistent_with_encode(self):
        enc = ConvolutionalEncoder()
        next_state, outputs = enc.transitions()
        # Walk the tables for a random message and compare.
        rng = make_rng(2)
        bits = rng.integers(0, 2, 30)
        state = 0
        walked = []
        for b in bits:
            out = outputs[state, b]
            walked.extend([(out >> 1) & 1, out & 1])
            state = next_state[state, b]
        direct = enc.encode(bits, terminate=False)
        assert np.array_equal(np.array(walked), direct)


class TestViterbi:
    def test_decodes_clean_stream(self):
        rng = make_rng(3)
        bits = rng.integers(0, 2, 200)
        coded = ConvolutionalEncoder().encode(bits)
        decoded = ViterbiDecoder().decode_hard(coded)
        assert np.array_equal(decoded, bits)

    def test_corrects_bit_errors(self):
        rng = make_rng(4)
        bits = rng.integers(0, 2, 300)
        coded = ConvolutionalEncoder().encode(bits)
        corrupted = coded.copy()
        flips = rng.choice(corrupted.size, size=12, replace=False)
        corrupted[flips] ^= 1
        decoded = ViterbiDecoder().decode_hard(corrupted)
        assert np.array_equal(decoded, bits)

    def test_soft_beats_hard(self):
        rng = make_rng(5)
        bits = rng.integers(0, 2, 2000)
        coded = ConvolutionalEncoder().encode(bits)
        tx = 1.0 - 2.0 * coded
        noisy = tx + 0.9 * rng.standard_normal(tx.size)
        dec = ViterbiDecoder()
        soft = dec.decode(2.0 * noisy)
        hard = dec.decode_hard((noisy < 0).astype(int))
        assert (soft != bits).sum() <= (hard != bits).sum()

    def test_odd_llr_count_rejected(self):
        with pytest.raises(ValueError):
            ViterbiDecoder().decode(np.ones(5))

    def test_empty_input(self):
        assert ViterbiDecoder().decode(np.array([])).size == 0


class TestPuncturing:
    @pytest.mark.parametrize("rate", sorted(PUNCTURE_PATTERNS),
                             ids=lambda r: str(r))
    def test_rate_achieved(self, rate):
        mother = np.arange(240)
        kept = puncture(mother, rate)
        assert kept.size / mother.size == pytest.approx(
            (1 / 2) / float(rate), rel=1e-6)

    def test_depuncture_restores_positions(self):
        rng = make_rng(6)
        from fractions import Fraction

        mother = rng.standard_normal(48)
        kept = puncture(mother, Fraction(3, 4))
        restored = depuncture(kept, Fraction(3, 4), 48)
        mask = restored != 0
        assert np.allclose(restored[mask], mother[mask])

    def test_punctured_stream_still_decodes(self):
        from fractions import Fraction

        rng = make_rng(7)
        bits = rng.integers(0, 2, 200)
        coded = ConvolutionalEncoder().encode(bits)
        kept = puncture(coded, Fraction(3, 4))
        llrs = depuncture(1.0 - 2.0 * kept, Fraction(3, 4), coded.size)
        decoded = ViterbiDecoder().decode(llrs)
        assert np.array_equal(decoded, bits)

    def test_unsupported_rate(self):
        with pytest.raises(ValueError):
            puncture(np.ones(8), 0.9)

    def test_coded_length(self):
        from fractions import Fraction

        assert coded_length(100, Fraction(1, 2)) == 212
        assert coded_length(100, Fraction(3, 4)) < 212


class TestInterleaver:
    def test_roundtrip(self):
        rng = make_rng(8)
        inter = BlockInterleaver(52 * 4, 4, num_columns=13)
        bits = rng.integers(0, 2, 52 * 4)
        assert np.array_equal(inter.deinterleave(inter.interleave(bits)), bits)

    def test_is_permutation(self):
        inter = BlockInterleaver(52, 1, num_columns=13)
        out = inter.interleave(np.arange(52))
        assert sorted(out) == list(range(52))

    def test_disperses_adjacent_bits(self):
        inter = BlockInterleaver(52 * 6, 6, num_columns=13)
        out = inter.interleave(np.arange(52 * 6))
        positions = np.empty(52 * 6, dtype=int)
        positions[out] = np.arange(52 * 6)
        # Adjacent coded bits must land far apart (> one subcarrier).
        gaps = np.abs(np.diff(positions[:20]))
        assert gaps.min() > 6

    def test_stream_roundtrip(self):
        rng = make_rng(9)
        inter = BlockInterleaver(52, 1, num_columns=13)
        bits = rng.integers(0, 2, 52 * 5)
        assert np.array_equal(
            inter.deinterleave_stream(inter.interleave_stream(bits)), bits)

    def test_indivisible_columns_rejected(self):
        with pytest.raises(ValueError):
            BlockInterleaver(52, 1, num_columns=16)

    def test_wrong_length_rejected(self):
        inter = BlockInterleaver(52, 1, num_columns=13)
        with pytest.raises(ValueError):
            inter.interleave(np.zeros(51))
