"""PSD and the windowed linear-convolution frequency-response applier."""

import numpy as np
import pytest

from repro.dsp import band_power, occupied_bandwidth, psd
from repro.dsp.spectrum import apply_frequency_response
from repro.utils import make_rng, signal_power


class TestPsd:
    def test_total_power_parseval(self):
        rng = make_rng(0)
        x = rng.standard_normal(4096) + 1j * rng.standard_normal(4096)
        freqs, density = psd(x, 1e6)
        total = np.sum(density) * (freqs[1] - freqs[0])
        assert total == pytest.approx(signal_power(x), rel=0.05)

    def test_tone_lands_in_right_bin(self):
        fs, f0 = 1e6, 125e3
        n = np.arange(4096)
        x = np.exp(2j * np.pi * f0 / fs * n)
        freqs, density = psd(x, fs, nfft=512)
        assert abs(freqs[np.argmax(density)] - f0) < fs / 512

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            psd(np.array([], dtype=complex), 1e6)


class TestBandPower:
    def test_tone_power_in_band(self):
        fs = 1e6
        n = np.arange(8192)
        x = np.exp(2j * np.pi * 0.1 * n)  # 100 kHz
        inband = band_power(x, fs, 50e3, 150e3)
        assert inband == pytest.approx(1.0, rel=0.05)

    def test_out_of_band_is_small(self):
        fs = 1e6
        n = np.arange(8192)
        x = np.exp(2j * np.pi * 0.1 * n)
        assert band_power(x, fs, 200e3, 400e3) < 0.01

    def test_invalid_band(self):
        with pytest.raises(ValueError):
            band_power(np.ones(64, dtype=complex), 1e6, 2e5, 1e5)


class TestOccupiedBandwidth:
    def test_narrowband_tone(self):
        fs = 1e6
        n = np.arange(4096)
        x = np.exp(2j * np.pi * 0.25 * n)
        assert occupied_bandwidth(x, fs) < 50e3

    def test_wideband_noise(self):
        rng = make_rng(1)
        x = rng.standard_normal(8192) + 1j * rng.standard_normal(8192)
        assert occupied_bandwidth(x, 1e6) > 0.9e6

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            occupied_bandwidth(np.ones(64, dtype=complex), 1e6, fraction=1.5)


class TestApplyFrequencyResponse:
    def test_flat_response_is_identity_in_band(self):
        # Interior comparison: zero-padding a circularly band-limited
        # block leaks at the edges (rectangular-window truncation), but
        # the interior must pass through untouched.
        rng = make_rng(2)
        x = rng.standard_normal(1024) + 1j * rng.standard_normal(1024)
        spec = np.fft.fft(x)
        f = np.fft.fftfreq(1024)
        spec[np.abs(f) > 0.2] = 0
        x = np.fft.ifft(spec)
        y = apply_frequency_response(x, lambda freqs: np.ones_like(freqs,
                                                                   dtype=complex), 1e6)
        assert np.allclose(y[64:-64], x[64:-64], atol=1e-3)

    def test_delay_response_shifts(self):
        rng = make_rng(3)
        x = rng.standard_normal(1024) + 1j * rng.standard_normal(1024)
        spec = np.fft.fft(x)
        f = np.fft.fftfreq(1024)
        spec[np.abs(f) > 0.2] = 0
        x = np.fft.ifft(spec)
        fs = 1e6
        delay = 3.0 / fs
        y = apply_frequency_response(
            x, lambda freqs: np.exp(-2j * np.pi * freqs * delay), fs)
        assert np.allclose(y[64:-64], x[61:-67], atol=1e-3)

    def test_no_circular_wraparound(self):
        # Content at the end of the block must not leak to the start.
        x = np.zeros(512, dtype=complex)
        x[500] = 1.0
        fs = 1e6
        y = apply_frequency_response(
            x, lambda freqs: np.exp(-2j * np.pi * freqs * 5 / fs), fs)
        assert np.abs(y[:100]).max() < 1e-6

    def test_invalid_rolloff(self):
        with pytest.raises(ValueError):
            apply_frequency_response(np.ones(8, dtype=complex),
                                     lambda f: np.ones_like(f, dtype=complex),
                                     1e6, flat_fraction=0.5, stop_fraction=0.4)
