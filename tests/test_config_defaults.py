"""Regression: dataclass config defaults must not be shared objects.

``params: OfdmParams = WIFI_20MHZ`` as a plain class-attribute default
hands every config instance the *same* object.  ``OfdmParams`` is frozen
so sharing could not corrupt state, but the pattern is a trap for any
future mutable field — both configs now use ``default_factory``.
"""

from dataclasses import MISSING, fields

from repro.core.relay import RelayConfig
from repro.phy.params import WIFI_20MHZ, WIFI_20MHZ_LONG_CP, OfdmParams
from repro.phy.transceiver import TxConfig


def _params_field(config_cls):
    (f,) = [f for f in fields(config_cls) if f.name == "params"]
    return f


class TestRelayConfigDefaults:
    def test_params_built_by_factory(self):
        f = _params_field(RelayConfig)
        assert f.default is MISSING
        assert f.default_factory is not MISSING
        assert f.default_factory() == WIFI_20MHZ

    def test_default_params_value(self):
        cfg = RelayConfig()
        assert isinstance(cfg.params, OfdmParams)
        assert cfg.params == WIFI_20MHZ

    def test_instances_stay_independent(self):
        a = RelayConfig()
        b = RelayConfig(params=WIFI_20MHZ_LONG_CP)
        assert a.params.cp_len == WIFI_20MHZ.cp_len
        assert b.params.cp_len == WIFI_20MHZ_LONG_CP.cp_len


class TestTxConfigDefaults:
    def test_params_built_by_factory(self):
        f = _params_field(TxConfig)
        assert f.default is MISSING
        assert f.default_factory is not MISSING
        assert f.default_factory() == WIFI_20MHZ

    def test_instances_stay_independent(self):
        a = TxConfig()
        b = TxConfig(params=WIFI_20MHZ_LONG_CP)
        assert a.params == WIFI_20MHZ
        assert b.params.cp_len == WIFI_20MHZ_LONG_CP.cp_len
