"""Coverage heatmaps (Figs. 1-2 machinery, small grid)."""

import numpy as np
import pytest

from repro.netsim import Testbed, coverage_heatmap, paper_scenarios


@pytest.fixture(scope="module")
def result():
    testbed = Testbed(paper_scenarios()[0], seed=0)
    return coverage_heatmap(testbed, spacing_m=2.0, seed=1)


class TestHeatmap:
    def test_fields_cover_grid(self, result):
        n = len(result.positions)
        assert result.snr_ap_only_db.shape == (n,)
        assert result.snr_with_ff_db.shape == (n,)
        assert result.streams_ap_only.shape == (n,)
        assert result.streams_with_ff.shape == (n,)

    def test_relay_improves_median_snr(self, result):
        # Fig. 1's story: the FF relay lifts most of the home.
        assert result.median_improvement_db() > 3.0

    def test_relay_never_collapses_snr(self, result):
        # CNF relaying should not hurt anyone appreciably.
        worst = np.min(result.snr_with_ff_db - result.snr_ap_only_db)
        assert worst > -3.0

    def test_relay_expands_stream_coverage(self, result):
        # Fig. 2's story: more of the home supports 2 streams.
        assert (result.fraction_full_rank(with_ff=True)
                > result.fraction_full_rank(with_ff=False))

    def test_stream_counts_in_range(self, result):
        assert set(np.unique(result.streams_ap_only)) <= {0, 1, 2}
        assert set(np.unique(result.streams_with_ff)) <= {0, 1, 2}

    def test_edge_gets_biggest_lift(self, result):
        improvement = result.snr_with_ff_db - result.snr_ap_only_db
        order = np.argsort(result.snr_ap_only_db)
        worst_quartile = improvement[order[: len(order) // 4]]
        best_quartile = improvement[order[-len(order) // 4:]]
        assert worst_quartile.mean() > best_quartile.mean()
