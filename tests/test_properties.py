"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import (
    half_duplex_throughput_mbps,
    select_amplification_db,
    siso_cnf_phase,
)
from repro.core.latency import isi_useful_fraction
from repro.phy.coding import (
    BlockInterleaver,
    ConvolutionalEncoder,
    ViterbiDecoder,
    descramble,
    scramble,
)
from repro.phy.modulation import MODULATIONS
from repro.phy.rates import effective_snr_db, phy_rate_mbps
from repro.utils import db_to_linear, db_to_power, linear_to_db, power_to_db


bits_arrays = arrays(np.int64, st.integers(8, 200),
                     elements=st.integers(0, 1))

finite_db = st.floats(-80.0, 80.0, allow_nan=False)

complex_arrays = arrays(
    np.complex128, st.integers(4, 64),
    elements=st.complex_numbers(min_magnitude=1e-3, max_magnitude=10.0,
                                allow_nan=False, allow_infinity=False))


class TestUnitRoundtrips:
    @given(finite_db)
    def test_amplitude_db_roundtrip(self, db):
        assert np.isclose(linear_to_db(db_to_linear(db)), db, atol=1e-9)

    @given(finite_db)
    def test_power_db_roundtrip(self, db):
        assert np.isclose(power_to_db(db_to_power(db)), db, atol=1e-9)

    @given(finite_db)
    def test_amplitude_is_sqrt_power(self, db):
        assert np.isclose(db_to_linear(db) ** 2, db_to_power(db), rtol=1e-9)


class TestCodingInvariants:
    @given(bits_arrays, st.integers(1, 127))
    @settings(max_examples=30, deadline=None)
    def test_scrambler_involution(self, bits, seed):
        assert np.array_equal(descramble(scramble(bits, seed), seed), bits)

    @given(bits_arrays)
    @settings(max_examples=15, deadline=None)
    def test_viterbi_inverts_encoder(self, bits):
        coded = ConvolutionalEncoder().encode(bits)
        assert np.array_equal(ViterbiDecoder().decode_hard(coded), bits)

    @given(st.integers(0, 5000))
    @settings(max_examples=30, deadline=None)
    def test_interleaver_bijective(self, seed):
        rng = np.random.default_rng(seed)
        inter = BlockInterleaver(52 * 2, 2, num_columns=13)
        bits = rng.integers(0, 2, 104)
        out = inter.deinterleave(inter.interleave(bits))
        assert np.array_equal(out, bits)


class TestModulationInvariants:
    @given(st.sampled_from(MODULATIONS), st.integers(0, 10000))
    @settings(max_examples=40, deadline=None)
    def test_mod_demod_roundtrip(self, mod, seed):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, 10 * mod.bits_per_symbol)
        assert np.array_equal(mod.demodulate_hard(mod.modulate(bits)), bits)

    @given(st.sampled_from(MODULATIONS))
    def test_constellation_zero_mean(self, mod):
        assert abs(np.mean(mod.points)) < 1e-9


class TestCnfInvariants:
    @given(complex_arrays, st.integers(0, 10000))
    @settings(max_examples=30, deadline=None)
    def test_cnf_never_destructive(self, h_sd, seed):
        # With the optimal phase filter the combined channel magnitude is
        # at least the direct magnitude at every subcarrier.
        rng = np.random.default_rng(seed)
        n = h_sd.size
        h_sr = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        h_rd = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        f = siso_cnf_phase(h_sd, h_sr, h_rd)
        combined = np.abs(h_sd + h_rd * f * h_sr)
        assert np.all(combined >= np.abs(h_sd) - 1e-12)
        assert np.all(combined >= np.abs(h_rd * h_sr) - 1e-12)

    @given(st.floats(50.0, 120.0), st.floats(40.0, 120.0))
    def test_amplification_below_both_caps(self, canc, att):
        a = select_amplification_db(canc, att)
        assert a <= canc - 3.0 + 1e-9
        assert a <= att - 3.0 + 1e-9
        assert a >= 0.0


class TestRateInvariants:
    @given(st.floats(-20.0, 50.0), st.floats(0.0, 10.0))
    def test_rate_monotone(self, snr, delta):
        assert phy_rate_mbps(snr + delta) >= phy_rate_mbps(snr)

    @given(arrays(np.float64, st.integers(1, 64),
                  elements=st.floats(-10.0, 40.0)))
    @settings(max_examples=40)
    def test_eesm_bounded_by_extremes(self, snrs):
        eff = effective_snr_db(snrs)
        assert snrs.min() - 1e-6 <= eff <= snrs.max() + 1e-6


class TestSchedulingInvariants:
    @given(st.floats(0.0, 200.0), st.floats(0.0, 200.0), st.floats(0.0, 200.0))
    def test_half_duplex_bounds(self, direct, r1, r2):
        t = half_duplex_throughput_mbps(direct, r1, r2)
        assert t >= direct
        # Tolerance covers float rounding at denormal-scale rates.
        assert t <= max(direct, min(r1, r2)) * (1.0 + 1e-12) + 1e-12

    @given(st.floats(0.0, 1e-5), st.floats(0.0, 1e-5))
    def test_isi_fraction_monotone(self, a, b):
        lo, hi = sorted((a, b))
        assert isi_useful_fraction(hi) <= isi_useful_fraction(lo) + 1e-12


class TestOfdmInvariants:
    @given(st.integers(0, 10000))
    @settings(max_examples=20, deadline=None)
    def test_ofdm_roundtrip(self, seed):
        from repro.phy import OfdmDemodulator, OfdmModulator, QPSK, WIFI_20MHZ

        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, 2 * WIFI_20MHZ.num_data_subcarriers)
        data = QPSK.modulate(bits)
        wave = OfdmModulator(WIFI_20MHZ).modulate(data)
        back = OfdmDemodulator(WIFI_20MHZ).demodulate(wave).ravel()
        assert np.allclose(back, data, atol=1e-9)

    @given(st.integers(0, 10000), st.integers(0, 7))
    @settings(max_examples=20, deadline=None)
    def test_cp_makes_shift_a_rotation(self, seed, shift):
        # Any delay within the CP appears as a pure per-subcarrier
        # rotation: equalising with the known ramp restores the data.
        from repro.phy import OfdmDemodulator, OfdmModulator, QPSK, WIFI_20MHZ

        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, 2 * WIFI_20MHZ.num_data_subcarriers)
        data = QPSK.modulate(bits)
        wave = OfdmModulator(WIFI_20MHZ).modulate(data)
        delayed = np.roll(wave, shift)
        got = OfdmDemodulator(WIFI_20MHZ).demodulate(delayed).ravel()
        idx = np.asarray(WIFI_20MHZ.data_subcarriers, dtype=float)
        ramp = np.exp(-2j * np.pi * idx * shift / 64)
        assert np.allclose(got / ramp, data, atol=1e-6)


class TestFeedbackInvariants:
    @given(st.integers(0, 5000), st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_phase_error_bound(self, seed, bits):
        from repro.ident import quantize_channel

        rng = np.random.default_rng(seed)
        h = rng.standard_normal(16) + 1j * rng.standard_normal(16)
        q = quantize_channel(h, phase_bits=bits)
        err = np.abs(np.angle(q * np.conj(h)))
        assert err.max() <= np.pi / (2 ** bits) + 1e-9


class TestChannelEvolveInvariants:
    @given(st.integers(0, 5000),
           st.floats(0.0, 1.0, allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_evolve_preserves_delay_and_shape(self, seed, rho):
        from repro.channel import MultipathChannel

        rng = np.random.default_rng(seed)
        taps = rng.standard_normal(4) + 1j * rng.standard_normal(4)
        chan = MultipathChannel(taps, extra_delay_samples=3)
        evolved = chan.evolve(rho, rng)
        assert evolved.taps.shape == chan.taps.shape
        assert evolved.extra_delay_samples == 3


class TestDecompositionInvariants:
    @given(st.integers(0, 2000), st.floats(0.0, 35e-9))
    @settings(max_examples=10, deadline=None)
    def test_realizable_ramps_fit_deeply(self, seed, tau):
        # Delay ramps within the pre-filter's causal span (0..37.5 ns)
        # decompose to deep fits; advance ramps and longer delays are
        # fundamentally unrealisable (covered by the relay's slide
        # search instead).
        from repro.core import decompose_cnf_filter
        from repro.phy.params import WIFI_20MHZ

        freqs = WIFI_20MHZ.subcarrier_freqs_hz()
        target = np.exp(-2j * np.pi * freqs * tau)
        d = decompose_cnf_filter(freqs, target)
        assert d.fit_error_db < -40.0
