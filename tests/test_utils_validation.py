"""Argument validation helpers."""

import numpy as np
import pytest

from repro.utils import (
    ensure_complex_1d,
    ensure_finite,
    ensure_in_range,
    ensure_positive,
    ensure_shape,
)


class TestEnsureComplex1d:
    def test_accepts_real_input(self):
        out = ensure_complex_1d([1.0, 2.0])
        assert out.dtype == complex

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="must be 1-D"):
            ensure_complex_1d(np.ones((2, 2)))

    def test_name_in_message(self):
        with pytest.raises(ValueError, match="waveform"):
            ensure_complex_1d(np.ones((2, 2)), name="waveform")


class TestEnsurePositive:
    def test_accepts_positive(self):
        assert ensure_positive(0.1) == 0.1

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            ensure_positive(0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ensure_positive(-3)


class TestEnsureInRange:
    def test_bounds_inclusive(self):
        assert ensure_in_range(0.0, 0.0, 1.0) == 0.0
        assert ensure_in_range(1.0, 0.0, 1.0) == 1.0

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            ensure_in_range(1.5, 0.0, 1.0)


class TestEnsureShape:
    def test_accepts_matching(self):
        out = ensure_shape(np.zeros((2, 3)), (2, 3))
        assert out.shape == (2, 3)

    def test_rejects_mismatch(self):
        with pytest.raises(ValueError):
            ensure_shape(np.zeros(4), (5,))


class TestEnsureFinite:
    def test_accepts_finite_complex(self):
        x = np.array([1 + 1j, 2.0, -3j])
        assert ensure_finite(x) is not None

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="1 non-finite of 3"):
            ensure_finite(np.array([1.0, np.nan, 2.0]), "stream")

    def test_rejects_inf_in_imaginary_part(self):
        with pytest.raises(ValueError, match="non-finite"):
            ensure_finite(np.array([1.0 + 1j * np.inf, 0.0]))

    def test_error_names_the_argument(self):
        with pytest.raises(ValueError, match="rx_block"):
            ensure_finite(np.array([np.inf]), "rx_block")
