"""The PHY-throughput model."""

import numpy as np
import pytest

from repro.netsim import (
    ap_only_mimo_rate,
    ap_only_siso_rate,
    mimo_rate_mbps,
    siso_rate_mbps,
    snr_field_db,
)
from repro.netsim.throughput import usable_streams
from repro.utils import make_rng


def _flat_mimo(h_matrix, n_sc=56):
    return np.broadcast_to(h_matrix, (n_sc, *h_matrix.shape)).copy()


def _noise_cov(n_sc=56, n_rx=2, floor_dbm=-90.0):
    noise = 10.0 ** (floor_dbm / 10.0)
    return np.broadcast_to(noise * np.eye(n_rx), (n_sc, n_rx, n_rx)).copy()


class TestSisoRates:
    def test_strong_channel_gets_top_mcs(self):
        # -55 dBm received over -90 floor = 35 dB SNR -> max rate.
        h = np.full(56, 10 ** (-55.0 / 20.0), dtype=complex)
        assert ap_only_siso_rate(h) > 90.0

    def test_dead_channel_zero(self):
        h = np.full(56, 1e-7, dtype=complex)
        assert ap_only_siso_rate(h) == 0.0

    def test_rate_from_snrs_monotone(self):
        low = siso_rate_mbps(np.full(56, 8.0))
        high = siso_rate_mbps(np.full(56, 24.0))
        assert high > low

    def test_snr_field_matches_budget(self):
        h = np.full(56, 10 ** (-70.0 / 20.0), dtype=complex)
        assert snr_field_db(h) == pytest.approx(40.0, abs=0.2)


class TestMimoRates:
    def test_two_streams_when_well_conditioned(self):
        amp = 10 ** (-60.0 / 20.0)
        h = _flat_mimo(amp * np.eye(2, dtype=complex))
        rate2 = mimo_rate_mbps(h, _noise_cov())
        rate1 = ap_only_siso_rate(np.full(56, amp, dtype=complex))
        assert rate2 > 1.5 * rate1

    def test_pinhole_falls_back_to_beamforming(self):
        amp = 10 ** (-60.0 / 20.0)
        keyhole = amp * np.array([[1.0, 1.0], [1.0, 1.0]]) / np.sqrt(2)
        h = _flat_mimo(keyhole.astype(complex))
        rate = mimo_rate_mbps(h, _noise_cov())
        # Beamforming mode rescues the rank-1 channel: nonzero rate
        # despite unusable spatial multiplexing.
        assert rate > 50.0

    def test_beamforming_harvests_array_gain(self):
        amp = 10 ** (-85.0 / 20.0)  # weak: 5 dB per-element SNR
        keyhole = amp * np.ones((2, 2), dtype=complex)
        h = _flat_mimo(keyhole)
        rate = mimo_rate_mbps(h, _noise_cov())
        single = ap_only_siso_rate(np.full(56, amp, dtype=complex))
        assert rate > single

    def test_ap_only_wrapper(self):
        rng = make_rng(0)
        h = _flat_mimo(1e-3 * (rng.standard_normal((2, 2))
                               + 1j * rng.standard_normal((2, 2))))
        assert ap_only_mimo_rate(h) == mimo_rate_mbps(h, _noise_cov())


class TestUsableStreams:
    def test_strong_full_rank_two(self):
        amp = 10 ** (-60.0 / 20.0)
        h = _flat_mimo(amp * np.eye(2, dtype=complex))
        assert usable_streams(h, _noise_cov()) == 2

    def test_pinhole_one(self):
        amp = 10 ** (-60.0 / 20.0)
        h = _flat_mimo(amp * np.ones((2, 2), dtype=complex))
        assert usable_streams(h, _noise_cov()) == 1

    def test_dead_zero(self):
        h = _flat_mimo(1e-7 * np.eye(2, dtype=complex))
        assert usable_streams(h, _noise_cov()) == 0
