"""Signal-domain probes: diagnostics, taps and the latency ledger.

The contracts under test:

* quantisation makes published floats dyadic (exact, associative sums);
* decimation keys to absolute stream position, so block chunking never
  changes a published value;
* taps are transparent — the relay output is bit-identical with and
  without probes attached;
* all three relay tap sites report EVM, cancellation depth and their
  cumulative latency against the CP budget;
* the probes *localize* degradation (the demo doubles as the test).
"""

import runpy
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core import FastForwardRelay, RelayConfig
from repro.phy.params import WIFI_20MHZ
from repro.netsim import Testbed, paper_scenarios
from repro.probes import (
    ALWAYS,
    BUDGET_COMPONENTS,
    DEFAULT_POLICY,
    DecimationPolicy,
    EVM_FLOOR_DB,
    EvmProbe,
    LatencyAccountant,
    PaprProbe,
    ProbeSet,
    SITES,
    SegmentBuffer,
    SpectrumProbe,
    make_reference_frame,
    quantize,
)


def _relay_and_frame(seed=5, n_symbols=24):
    testbed = Testbed(paper_scenarios()[0], seed=seed)
    rng = np.random.default_rng(42)
    client = testbed.client_positions(1, rng=rng)[0]
    cfg = RelayConfig(params=testbed.params, use_decomposition=False)
    relay = FastForwardRelay(cfg)
    relay.configure_siso_link(*testbed.siso_triple(client, rng))
    frame = make_reference_frame(testbed.params, n_symbols=n_symbols, rng=7)
    return relay, frame, testbed.params, cfg


class TestQuantize:
    def test_dyadic_multiple(self):
        q = quantize(1 / 3)
        assert q * (1 << 20) == round(q * (1 << 20))
        assert abs(q - 1 / 3) <= 2.0 ** -21

    def test_sums_are_exact_in_any_order(self):
        rng = np.random.default_rng(0)
        values = [quantize(v) for v in rng.normal(size=64)]
        forward = 0.0
        for v in values:
            forward += v
        backward = 0.0
        for v in reversed(values):
            backward += v
        assert forward == backward          # bitwise, not approx

    def test_non_finite_passthrough(self):
        assert quantize(float("inf")) == float("inf")
        assert np.isnan(quantize(float("nan")))

    def test_custom_bits(self):
        assert quantize(0.3, bits=2) == 0.25


class TestDecimationPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            DecimationPolicy(window=0, period=4)
        with pytest.raises(ValueError):
            DecimationPolicy(window=8, period=4)

    def test_mask_is_absolute_position(self):
        policy = DecimationPolicy(window=2, period=5)
        mask = policy.mask(np.arange(10))
        assert mask.tolist() == [True, True, False, False, False,
                                 True, True, False, False, False]
        assert policy.analyze(6) and not policy.analyze(7)

    def test_always_analyses_everything(self):
        assert ALWAYS.mask(np.arange(100)).all()

    def test_default_duty_cycle(self):
        mask = DEFAULT_POLICY.mask(np.arange(1024 * 10))
        assert mask.mean() == pytest.approx(4 / 1024)


class TestSegmentBuffer:
    def test_chunking_invariance(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=1000) + 1j * rng.normal(size=1000)
        whole = SegmentBuffer(64)
        idx_a, seg_a = whole.feed(x)

        chunked = SegmentBuffer(64)
        parts = []
        for i in range(0, x.size, 37):
            parts.append(chunked.feed(x[i:i + 37]))
        idx_b = np.concatenate([p[0] for p in parts])
        seg_b = np.concatenate([p[1] for p in parts])
        np.testing.assert_array_equal(idx_a, idx_b)
        np.testing.assert_array_equal(seg_a, seg_b)

    def test_carry_across_calls(self):
        buf = SegmentBuffer(8)
        idx, seg = buf.feed(np.ones(5, dtype=complex))
        assert idx.size == 0 and seg.shape == (0, 8)
        idx, seg = buf.feed(np.ones(11, dtype=complex))
        assert idx.tolist() == [0, 1] and seg.shape == (2, 8)

    def test_mimo_blocks_probe_stream_zero(self):
        buf = SegmentBuffer(4)
        block = np.stack([np.arange(8), 100 + np.arange(8)]).astype(complex)
        _, seg = buf.feed(block)
        np.testing.assert_array_equal(seg.ravel(), np.arange(8))

    def test_validation(self):
        with pytest.raises(ValueError):
            SegmentBuffer(0)

    def test_feed_kept_matches_feed_plus_mask(self):
        # The copy-free path must select exactly what feed() + the
        # policy mask would, at any chunk layout (61 ∤ 7 exercises the
        # kept-carry-segment branch repeatedly).
        rng = np.random.default_rng(9)
        x = rng.normal(size=997) + 1j * rng.normal(size=997)
        policy = DecimationPolicy(window=2, period=5)
        idx_all, seg_all = SegmentBuffer(7).feed(x)
        keep = policy.mask(idx_all)
        buf = SegmentBuffer(7)
        parts = [buf.feed_kept(x[i:i + 61], policy)
                 for i in range(0, x.size, 61)]
        got_i = np.concatenate([p[0] for p in parts])
        got_s = np.concatenate([p[1] for p in parts])
        np.testing.assert_array_equal(got_i, idx_all[keep])
        np.testing.assert_array_equal(got_s, seg_all[keep])


class TestEvmProbe:
    def test_clean_reference_sits_on_the_floor(self):
        frame = make_reference_frame(WIFI_20MHZ, n_symbols=8, rng=1)
        probe = EvmProbe(WIFI_20MHZ, frame, policy=ALWAYS)
        probe.process(frame.iq)
        assert probe.windows > 0
        assert probe.evm_rms_db == EVM_FLOOR_DB
        assert (probe.per_subcarrier_db() == EVM_FLOOR_DB).all()

    def test_noise_raises_evm_monotonically(self):
        frame = make_reference_frame(WIFI_20MHZ, n_symbols=8, rng=1)
        levels = []
        for sigma in (0.01, 0.1):
            rng = np.random.default_rng(9)
            noisy = frame.iq + sigma * (
                rng.normal(size=frame.iq.size)
                + 1j * rng.normal(size=frame.iq.size))
            probe = EvmProbe(WIFI_20MHZ, frame, policy=ALWAYS)
            probe.process(noisy)
            levels.append(probe.evm_rms_db)
        assert EVM_FLOOR_DB < levels[0] < levels[1] < 0.0

    def test_scalar_gain_is_absorbed_by_the_equaliser(self):
        frame = make_reference_frame(WIFI_20MHZ, n_symbols=8, rng=1)
        probe = EvmProbe(WIFI_20MHZ, frame, policy=ALWAYS)
        probe.process(3.7j * frame.iq)       # pure LTI: gain and rotation
        assert probe.evm_rms_db == EVM_FLOOR_DB

    def test_reference_shape_mismatch_rejected(self):
        frame = make_reference_frame(WIFI_20MHZ, n_symbols=4, rng=1)
        bad = type(frame)(params=frame.params, grid=frame.grid[:, :10],
                          iq=frame.iq)
        with pytest.raises(ValueError, match="tones"):
            EvmProbe(WIFI_20MHZ, bad, policy=ALWAYS)

    def test_constellation_points_are_quantised(self):
        frame = make_reference_frame(WIFI_20MHZ, n_symbols=8, rng=1)
        probe = EvmProbe(WIFI_20MHZ, frame, policy=ALWAYS)
        probe.process(frame.iq)
        assert probe.constellation
        for i, q in probe.constellation:
            assert i == quantize(i) and q == quantize(q)


class TestSpectrumAndPapr:
    def test_empty_probe_reports_none(self):
        probe = SpectrumProbe(WIFI_20MHZ)
        assert probe.cancellation_depth_db is None
        assert probe.oob_leakage_db is None
        assert probe.flatness is None
        assert probe.occupancy is None
        assert probe.psd_db() is None
        assert PaprProbe().papr_db is None

    def test_ofdm_signal_concentrates_in_band(self):
        frame = make_reference_frame(WIFI_20MHZ, n_symbols=16, rng=2)
        buf = SegmentBuffer(WIFI_20MHZ.fft_size)
        probe = SpectrumProbe(WIFI_20MHZ)
        _, segments = buf.feed(frame.iq)
        probe.accumulate(segments)
        assert probe.cancellation_depth_db > 5.0
        assert probe.occupancy > 0.8
        assert probe.snr_ewma_db is not None

    def test_white_residual_si_shrinks_the_depth(self):
        frame = make_reference_frame(WIFI_20MHZ, n_symbols=16, rng=2)
        rng = np.random.default_rng(4)
        noisy = frame.iq + 0.3 * (rng.normal(size=frame.iq.size)
                                  + 1j * rng.normal(size=frame.iq.size))
        depths = []
        for signal in (frame.iq, noisy):
            buf = SegmentBuffer(WIFI_20MHZ.fft_size)
            probe = SpectrumProbe(WIFI_20MHZ)
            probe.accumulate(buf.feed(signal)[1])
            depths.append(probe.cancellation_depth_db)
        assert depths[1] < depths[0] - 3.0

    def test_constant_envelope_papr_is_zero(self):
        probe = PaprProbe()
        probe.accumulate(np.ones((4, 64), dtype=complex))
        assert probe.papr_db == pytest.approx(0.0, abs=1e-9)


class TestLatencyAccountant:
    def test_ledger_fits_the_wifi_cp(self):
        acct = LatencyAccountant(WIFI_20MHZ)
        assert acct.cp_ns == pytest.approx(400.0)
        assert acct.total_ns < acct.cp_ns
        assert acct.fits_cp
        assert acct.margin_ns == pytest.approx(acct.cp_ns - acct.total_ns)

    def test_waterfall_is_cumulative_and_ordered(self):
        acct = LatencyAccountant(WIFI_20MHZ)
        rows = acct.waterfall()
        assert [r["component"] for r in rows] == \
            [c for c, _, _ in BUDGET_COMPONENTS]
        running = 0.0
        for row in rows:
            running = quantize(running + row["ns"])
            assert row["cumulative_ns"] == running
        assert rows[-1]["cumulative_ns"] == pytest.approx(acct.total_ns)

    def test_every_site_reaches_a_cumulative_delay(self):
        cumulative = LatencyAccountant(WIFI_20MHZ).cumulative_ns()
        assert set(cumulative) == set(SITES)
        assert cumulative["post-si-cancellation"] \
            <= cumulative["post-cnf"] \
            <= cumulative["post-amplification"]

    def test_realised_lookahead_observed_from_chain(self):
        relay, _, params, _ = _relay_and_frame()
        acct = LatencyAccountant(params)
        acct.observe_chain(relay.make_siso_chain(),
                           sample_rate_hz=params.bandwidth_hz)
        realised = acct.realised_ns()
        assert "cnf-filter" in realised
        assert all(v >= 0.0 for v in realised.values())


class TestProbeSetOnRelay:
    def test_taps_are_transparent(self):
        relay, frame, params, cfg = _relay_and_frame()
        plain = relay.process(frame.iq)
        probes = ProbeSet(params, reference=frame, policy=ALWAYS,
                          budget=cfg.latency)
        probed = relay.process(frame.iq, probes=probes)
        np.testing.assert_array_equal(plain, probed)

    def test_all_three_sites_report(self):
        relay, frame, params, cfg = _relay_and_frame()
        probes = ProbeSet(params, reference=frame, policy=ALWAYS,
                          budget=cfg.latency)
        relay.process(frame.iq, probes=probes)
        summary = probes.summary()
        for site in SITES:
            assert f"{site}.evm_rms_db" in summary
            assert f"{site}.cancellation_depth_db" in summary
            assert f"latency.cumulative_ns.{site}" in summary
        assert summary["latency.cp_ns"] == pytest.approx(400.0)
        assert summary["latency.margin_ns"] > 0.0

    def test_summary_is_block_size_invariant(self):
        relay, frame, params, cfg = _relay_and_frame()
        summaries = []
        for block_size in (512, 4096, None):
            probes = ProbeSet(params, reference=frame, policy=ALWAYS,
                              budget=cfg.latency)
            chain = relay.make_siso_chain(block_size=block_size) \
                if block_size else relay.make_siso_chain()
            probed = probes.instrument(chain,
                                       sample_rate_hz=params.bandwidth_hz)
            probed.reset()
            if block_size:
                for i in range(0, frame.iq.size, block_size):
                    probed.process_block(frame.iq[i:i + block_size])
                probed.flush()
            else:
                probed.run(frame.iq)
            summaries.append(probes.summary())
        assert summaries[0] == summaries[1] == summaries[2]

    def test_accumulators_survive_chain_reset(self):
        relay, frame, params, cfg = _relay_and_frame()
        probes = ProbeSet(params, reference=frame, policy=ALWAYS,
                          budget=cfg.latency)
        relay.process(frame.iq, probes=probes)
        first = probes.site("post-cnf").samples
        relay.process(frame.iq, probes=probes)   # process() resets the chain
        assert probes.site("post-cnf").samples == 2 * first
        probes.reset()
        assert probes.site("post-cnf").samples == 0

    def test_unknown_tap_label_rejected(self):
        relay, _, _, _ = _relay_and_frame()
        chain = relay.make_siso_chain()
        with pytest.raises(ValueError, match="no-such-stage"):
            chain.with_taps({"no-such-stage": object()})

    def test_instrument_skips_labels_absent_from_chain(self):
        relay, frame, params, cfg = _relay_and_frame()
        probes = ProbeSet(params, reference=frame, policy=ALWAYS,
                          budget=cfg.latency)
        probed = probes.instrument(
            relay.make_siso_chain(), sample_rate_hz=params.bandwidth_hz,
            site_labels={"cnf-filter": "post-cnf",
                         "not-a-stage": "nowhere"})
        assert any(label.startswith("probe:") for label in probed.labels)


def test_link_health_demo_localizes_the_fault(capsys):
    """The example is the integration test: probes must point at the
    stage the drift was spliced behind."""
    demo = Path(__file__).resolve().parent.parent / "examples" \
        / "link_health_demo.py"
    argv = sys.argv
    sys.argv = [str(demo)]
    try:
        runpy.run_path(str(demo), run_name="__main__")
    finally:
        sys.argv = argv
    out = capsys.readouterr().out
    assert "degradation enters here" in out
    assert "probes localize the drift" in out
