"""Telemetry wired through the runtime, relay, supervisor and netsim."""

import collections

import numpy as np
import pytest

from repro.core.relay import FastForwardRelay, RelayConfig
from repro.runtime.chain import Chain, ChainTrace, FunctionStage, GainStage
from repro.supervision import (
    RelayHealthMonitor,
    RelaySupervisor,
    SupervisorPolicy,
)
from repro.telemetry import (
    NullCollector,
    TelemetryCollector,
    current_collector,
    use_collector,
)


def _siso_relay(seed=0, n_sc=None):
    rng = np.random.default_rng(seed)
    relay = FastForwardRelay(RelayConfig())
    n_sc = n_sc or len(relay.config.params.subcarrier_freqs_hz())

    def h():
        return rng.normal(size=n_sc) + 1j * rng.normal(size=n_sc)

    relay.configure_siso_link(h(), h(), h())
    return relay


class TestChainTraceAdapter:
    def _chain(self):
        return Chain([FunctionStage(lambda x: x, name="identity"),
                      GainStage(6.0)])

    def test_trace_without_collector_keeps_legacy_shape(self):
        chain = self._chain()
        trace = ChainTrace()
        chain.run(np.ones(256, dtype=complex), trace=trace)
        assert trace.stages["identity"].calls == 1
        assert trace.stages["identity"].samples_in == 256
        assert trace.collector is None

    def test_trace_feeds_collector(self):
        tel = TelemetryCollector()
        chain = self._chain()
        chain.run(np.ones(256, dtype=complex), trace=ChainTrace(collector=tel))
        calls = tel.metrics.counter_values("runtime.stage.calls")
        assert calls == {(("stage", "identity"),): 1,
                         (("stage", "amplify"),): 1}
        samples = tel.metrics.counter_values("runtime.stage.samples")
        assert samples[(("stage", "identity"),)] == 256
        hist = tel.histogram("runtime.stage.wall_ns", stage="identity")
        assert hist.count == 1
        assert tel.metrics.unit("runtime.stage.wall_ns") == "ns"

    def test_null_collector_is_dropped(self):
        trace = ChainTrace(collector=NullCollector())
        assert trace.collector is None

    def test_trace_results_unchanged_by_collector(self):
        x = np.arange(512, dtype=complex)
        plain, instrumented = ChainTrace(), ChainTrace(
            collector=TelemetryCollector())
        a = self._chain().run(x, trace=plain)
        b = self._chain().run(x, trace=instrumented)
        np.testing.assert_array_equal(a, b)
        assert plain.stages["amplify"].samples_in == \
            instrumented.stages["amplify"].samples_in


class TestRelayTelemetry:
    def test_process_records_span_and_counters(self):
        relay = _siso_relay()
        x = np.ones(4096, dtype=complex)
        tel = TelemetryCollector()
        relay.process(x, telemetry=tel)
        assert [s["name"] for s in tel.spans] == ["relay.process"]
        assert tel.spans[0]["labels"] == {"mode": "siso"}
        assert tel.counter("relay.samples", mode="siso").value == 4096
        # The auto-created ChainTrace fed per-stage metrics too.
        assert tel.metrics.counter_values("runtime.stage.calls")

    def test_ambient_collector_used_by_default(self):
        relay = _siso_relay()
        x = np.ones(2048, dtype=complex)
        with use_collector(TelemetryCollector()) as tel:
            relay.process(x)
        assert tel.counter("relay.samples", mode="siso").value == 2048

    def test_explicit_trace_still_honoured(self):
        relay = _siso_relay()
        trace = ChainTrace()
        tel = TelemetryCollector()
        relay.process(np.ones(2048, dtype=complex), trace=trace,
                      telemetry=tel)
        assert trace.stages            # caller's trace got the stats
        assert trace.collector is None  # and was not silently rewired

    def test_output_identical_with_and_without_telemetry(self):
        relay = _siso_relay(seed=3)
        rng = np.random.default_rng(7)
        x = rng.normal(size=8192) + 1j * rng.normal(size=8192)
        y_plain = relay.process(x)
        y_instr = relay.process(x, telemetry=TelemetryCollector())
        np.testing.assert_array_equal(y_plain, y_instr)

    def test_uninstrumented_records_nothing(self):
        relay = _siso_relay()
        assert isinstance(current_collector(), NullCollector)
        relay.process(np.ones(1024, dtype=complex))   # must not raise


class TestSupervisorTelemetry:
    def _drive_ladder(self, tel):
        sup = RelaySupervisor(
            monitor=RelayHealthMonitor(alpha=1.0),
            policy=SupervisorPolicy(retune_retry_budget=1,
                                    escalation_hold_s=0.0,
                                    recovery_hold_s=0.2),
            retune=lambda t: False, telemetry=tel)
        for i in range(30):
            sup.monitor.observe(residual_si_db=-10.0)
            sup.step(i * 0.1)
        for i in range(30, 40):
            sup.monitor.observe(residual_si_db=-50.0, clip_fraction=0.0)
            sup.step(i * 0.1)
        return sup

    def test_transition_counters_match_event_log(self):
        # The regression contract: per-kind telemetry counters must
        # equal the typed event log's kind histogram, transition for
        # transition.
        tel = TelemetryCollector()
        sup = self._drive_ladder(tel)
        assert len(sup.events) > 3     # the ladder actually moved
        expected = collections.Counter(k.value for k in sup.event_kinds())
        recorded = {labels[0][1]: value for labels, value in
                    tel.metrics.counter_values(
                        "supervision.transitions").items()}
        assert recorded == dict(expected)

    def test_structured_events_mirror_log(self):
        tel = TelemetryCollector()
        sup = self._drive_ladder(tel)
        assert len(tel.events) == len(sup.events)
        for ev, logged in zip(tel.events, sup.events):
            assert ev["name"] == "supervision.transition"
            assert ev["labels"]["kind"] == logged.kind.value
            assert ev["labels"]["state"] == logged.state.value

    def test_ambient_collector_used_when_not_passed(self):
        with use_collector(TelemetryCollector()) as tel:
            sup = RelaySupervisor(monitor=RelayHealthMonitor(alpha=1.0))
            sup.monitor.observe(residual_si_db=-10.0)
            sup.step(0.0)
        assert tel.metrics.counter_values("supervision.transitions")

    def test_no_collector_no_cost(self):
        sup = RelaySupervisor(monitor=RelayHealthMonitor(alpha=1.0))
        sup.monitor.observe(residual_si_db=-10.0)
        sup.step(0.0)
        assert sup.events              # typed log unaffected


class TestNetsimTelemetry:
    def test_experiment_runs_under_span(self):
        from repro.netsim import overall_gains_experiment

        with use_collector(TelemetryCollector()) as tel:
            overall_gains_experiment(num_clients=2, seed=1, jobs=1)
        names = [s["name"] for s in tel.spans]
        assert "netsim.experiment" in names
        exp = [s for s in tel.spans if s["name"] == "netsim.experiment"]
        assert exp[0]["labels"] == {"experiment": "overall-gains"}
        # The sweep span nests inside the experiment span.
        assert "exec.sweep" in names

    def test_coverage_heatmap_span(self):
        from repro.netsim import Testbed, coverage_heatmap, paper_scenarios

        testbed = Testbed(paper_scenarios()[0], seed=7)
        with use_collector(TelemetryCollector()) as tel:
            coverage_heatmap(testbed, spacing_m=10.0, seed=7, jobs=1)
        exp = [s for s in tel.spans if s["name"] == "netsim.experiment"]
        assert exp and exp[0]["labels"] == {"experiment": "coverage"}


class TestReportCli:
    def test_report_renders_tables(self, capsys):
        from repro.cli import main

        assert main(["report", "gains", "--clients", "2", "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "## Spans" in out
        assert "netsim.experiment" in out
        assert "exec.tasks.total" in out

    def test_report_writes_valid_exports(self, tmp_path, capsys):
        from repro.cli import main
        from repro.telemetry import validate_chrome_trace, validate_jsonl

        jsonl = tmp_path / "run.jsonl"
        trace = tmp_path / "trace.json"
        assert main(["report", "gains", "--clients", "2",
                     "--jsonl", str(jsonl), "--trace", str(trace)]) == 0
        assert validate_jsonl(jsonl)["records"] > 0
        summary = validate_chrome_trace(trace)
        assert summary["by_phase"]["X"] >= 2   # experiment + sweep spans

    def test_report_from_file(self, tmp_path, capsys):
        from repro.cli import main
        from repro.telemetry import TelemetryCollector, write_jsonl

        tel = TelemetryCollector(origin="saved")
        tel.counter("tasks", fn="demo").inc(7)
        path = tmp_path / "saved.jsonl"
        write_jsonl(tel, path)
        assert main(["report", "--from", str(path)]) == 0
        out = capsys.readouterr().out
        assert "origin: saved" in out
        assert "fn=demo" in out

    def test_report_csv(self, tmp_path, capsys):
        from repro.cli import main
        from repro.telemetry import TelemetryCollector, write_jsonl

        tel = TelemetryCollector()
        tel.counter("n").inc()
        path = tmp_path / "saved.jsonl"
        write_jsonl(tel, path)
        assert main(["report", "--from", str(path), "--csv"]) == 0
        assert "section,name,labels" in capsys.readouterr().out

    def test_report_without_experiment_or_file_errors(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["report"])
