"""The per-packet relay control plane (§6)."""

import numpy as np
import pytest

from repro.ident import RelayController, SignatureBook
from repro.phy.params import WIFI_20MHZ
from repro.phy.preamble import stf_time_symbol, stf_tone_indices
from repro.utils import awgn_like, make_rng


def _h(rng, n=56):
    h = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    return h / np.sqrt(np.mean(np.abs(h) ** 2))


def _stf_through(h_used):
    params = WIFI_20MHZ
    stf = stf_time_symbol(params)
    used = list(params.used_subcarriers())
    grid = np.fft.fft(np.tile(stf, 4))
    h_full = np.ones(params.fft_size, dtype=complex)
    for tone in stf_tone_indices(params):
        h_full[tone % params.fft_size] = h_used[used.index(tone)]
    return np.fft.ifft(grid * h_full)[:16]


@pytest.fixture
def controller():
    rng = make_rng(0)
    ctl = RelayController(book=SignatureBook(seed=9))
    ctl.observe_ap_packet(_h(rng), now_s=0.0)
    channels = {}
    for cid in ("alice", "bob"):
        direct = _h(rng)
        to_relay = _h(rng)
        ctl.observe_sounding(cid, direct, to_relay, now_s=0.0)
        channels[cid] = (direct, to_relay)
    return ctl, channels


def _downlink_stream(ctl, client, rng, prefix=60):
    field = ctl.book.prepend_field(client)
    stream = np.concatenate([np.zeros(prefix, dtype=complex), field,
                             np.zeros(150, dtype=complex)])
    return stream + awgn_like(stream, 1e-3, rng)


class TestDownlinkDecisions:
    def test_own_packet_relayed_with_right_filter(self, controller):
        ctl, channels = controller
        rng = make_rng(1)
        decision = ctl.decide_downlink(_downlink_stream(ctl, "bob", rng),
                                       now_s=0.01)
        assert decision.relay
        assert decision.client_id == "bob"
        assert decision.direction == "downlink"
        h_sd, h_sr, h_rd = decision.channels
        assert np.allclose(h_sd, channels["bob"][0])
        assert np.allclose(h_rd, channels["bob"][1])

    def test_foreign_packet_ignored(self, controller):
        ctl, _ = controller
        rng = make_rng(2)
        # A neighbour AP's packet: a signature from a different book.
        foreign = SignatureBook(seed=77)
        stream = np.concatenate([
            np.zeros(60, dtype=complex), foreign.prepend_field("eve"),
            np.zeros(150, dtype=complex)])
        stream += awgn_like(stream, 1e-3, rng)
        decision = ctl.decide_downlink(stream, now_s=0.01)
        assert not decision.relay
        assert "no signature" in decision.reason

    def test_stale_channels_block_relaying(self, controller):
        ctl, _ = controller
        rng = make_rng(3)
        decision = ctl.decide_downlink(_downlink_stream(ctl, "alice", rng),
                                       now_s=10.0)  # >> 3 intervals
        assert not decision.relay
        assert decision.client_id == "alice"
        assert "stale" in decision.reason

    def test_noise_only_ignored(self, controller):
        ctl, _ = controller
        rng = make_rng(4)
        decision = ctl.decide_downlink(
            awgn_like(np.zeros(400), 1.0, rng), now_s=0.01)
        assert not decision.relay


class TestUplinkDecisions:
    def test_known_client_relayed(self, controller):
        ctl, channels = controller
        stf = _stf_through(channels["alice"][1])
        decision = ctl.decide_uplink(stf, now_s=0.01)
        assert decision.relay
        assert decision.client_id == "alice"
        assert decision.direction == "uplink"
        # Uplink triple: (direct, client->relay, relay->AP).
        h_sd, h_sr, h_rd = decision.channels
        assert np.allclose(h_sd, channels["alice"][0])
        assert np.allclose(h_sr, channels["alice"][1])

    def test_unknown_transmitter_passed(self, controller):
        ctl, _ = controller
        rng = make_rng(5)
        stranger = _h(rng)
        decision = ctl.decide_uplink(_stf_through(stranger), now_s=0.01)
        assert not decision.relay
        assert "threshold" in decision.reason

    def test_no_clients_registered(self):
        ctl = RelayController()
        decision = ctl.decide_uplink(np.zeros(16, dtype=complex), now_s=0.0)
        assert not decision.relay


class TestChannelsWithRetry:
    def _fresh_controller(self):
        ctl = RelayController()
        ctl.register_client("alice")
        return ctl

    def test_fresh_channels_need_no_polls(self, controller):
        ctl, _ = controller
        channels, attempts = ctl.channels_with_retry("alice", now_s=0.01)
        assert channels is not None
        assert attempts == []

    def test_stale_state_triggers_polls_with_backoff(self):
        ctl = self._fresh_controller()
        times = []

        def poll(client_id, t):
            times.append(t)
            return False                       # replies keep getting lost

        channels, attempts = ctl.channels_with_retry(
            "alice", now_s=1.0, poll=poll, max_retries=3,
            initial_backoff_s=0.01, backoff_factor=2.0)
        assert channels is None
        assert len(attempts) == 3
        assert all(not delivered for _, delivered in attempts)
        gaps = np.diff(times)
        assert gaps[1] == pytest.approx(2 * gaps[0])   # exponential

    def test_delivered_poll_recovers_channels(self):
        ctl = self._fresh_controller()
        rng = make_rng(21)
        h = _h(rng)

        def poll(client_id, t):
            # The reply arrives on the second attempt; the handler
            # feeds it into the controller exactly as the real poll
            # path would.
            if len(calls) == 1:
                ctl.observe_ap_packet(h, t)
                ctl.observe_sounding(client_id, h, h, t)
                calls.append(t)
                return True
            calls.append(t)
            return False

        calls = []
        channels, attempts = ctl.channels_with_retry(
            "alice", now_s=0.0, poll=poll, max_retries=3)
        assert channels is not None
        assert [d for _, d in attempts] == [False, True]

    def test_no_poll_callable_returns_none(self):
        ctl = self._fresh_controller()
        channels, attempts = ctl.channels_with_retry("alice", now_s=0.0)
        assert channels is None
        assert attempts == []
