"""Breadth tests for corners not covered elsewhere."""

import numpy as np
import pytest

from repro.cancellation.digital import estimate_si_response_spectral
from repro.dsp import AnalogTapDelayLine
from repro.phy.params import LTE_10MHZ
from repro.phy.preamble import (
    Preamble,
    ltf_frequency_symbol,
    stf_time_symbol,
    stf_tone_indices,
)
from repro.utils import make_rng, signal_power_dbm


class TestSignalPowerDbm:
    def test_unit_power_is_zero_dbm(self):
        x = np.exp(2j * np.pi * np.linspace(0, 5, 1000))
        assert signal_power_dbm(x) == pytest.approx(0.0, abs=0.01)

    def test_scaling(self):
        x = 10.0 * np.ones(64, dtype=complex)
        assert signal_power_dbm(x) == pytest.approx(20.0)


class TestAttenuatorSigns:
    def test_signed_attenuations(self):
        line = AnalogTapDelayLine([0.0, 100e-12])
        line.set_attenuations_db([6.0, 6.0], signs=[+1, -1])
        assert line.gains[0].real > 0
        assert line.gains[1].real < 0

    def test_sign_shape_validated(self):
        line = AnalogTapDelayLine([0.0, 100e-12])
        with pytest.raises(ValueError):
            line.set_attenuations_db([6.0, 6.0], signs=[1.0])


class TestLtePreamble:
    def test_synthesised_ltf_is_bpsk(self):
        grid = ltf_frequency_symbol(LTE_10MHZ)
        used = [k % LTE_10MHZ.fft_size for k in LTE_10MHZ.used_subcarriers()]
        assert np.allclose(np.abs(grid[used]), 1.0)

    def test_synthesised_stf_period(self):
        stf = stf_time_symbol(LTE_10MHZ)
        assert stf.size == LTE_10MHZ.fft_size // 4
        assert np.mean(np.abs(stf) ** 2) > 0

    def test_stf_tone_indices_every_fourth(self):
        tones = stf_tone_indices(LTE_10MHZ)
        assert all(t % 4 == 0 for t in tones)
        assert 0 not in tones

    def test_lte_preamble_lengths(self):
        pre = Preamble(LTE_10MHZ)
        assert pre.stf_samples == 10 * (LTE_10MHZ.fft_size // 4)
        assert pre.ltf_samples == 2 * LTE_10MHZ.cp_len + 2 * LTE_10MHZ.fft_size


class TestWelchEstimator:
    def test_recovers_flat_channel(self):
        rng = make_rng(0)
        tx = rng.standard_normal(8192) + 1j * rng.standard_normal(8192)
        freqs, resp, mask = estimate_si_response_spectral(tx, 0.3j * tx,
                                                          nfft=256)
        assert mask.all()  # white training occupies every bin
        assert np.allclose(resp, 0.3j, atol=0.02)

    def test_unoccupied_bins_masked(self):
        rng = make_rng(1)
        x = rng.standard_normal(8192) + 1j * rng.standard_normal(8192)
        spec = np.fft.fft(x)
        f = np.fft.fftfreq(8192)
        spec[np.abs(f) > 0.1] = 0
        tx = np.fft.ifft(spec)
        _, _, mask = estimate_si_response_spectral(tx, tx, nfft=256)
        assert 0 < mask.sum() < 256

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            estimate_si_response_spectral(np.ones(100, dtype=complex),
                                          np.ones(100, dtype=complex),
                                          nfft=256)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            estimate_si_response_spectral(np.ones(512, dtype=complex),
                                          np.ones(511, dtype=complex))


class TestPilotPolarity:
    def test_polarity_sequence_varies(self):
        from repro.phy.ofdm import OfdmModulator
        from repro.phy.params import WIFI_20MHZ

        mod = OfdmModulator(WIFI_20MHZ)
        signs = [np.sign(mod.pilot_values(i)[0].real) for i in range(20)]
        assert len(set(signs)) == 2  # both polarities occur

    def test_polarity_periodic_127(self):
        from repro.phy.ofdm import OfdmModulator
        from repro.phy.params import WIFI_20MHZ

        mod = OfdmModulator(WIFI_20MHZ)
        assert np.allclose(mod.pilot_values(3), mod.pilot_values(3 + 127))
