"""Exporters and validators: JSONL, summary tables, Chrome traces."""

import json

import pytest

from repro.telemetry import (
    TelemetryCollector,
    TelemetrySchemaError,
    chrome_trace,
    read_jsonl,
    summary_table,
    validate_chrome_trace,
    validate_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.telemetry.validate import main as validate_main


def _sample_collector():
    tel = TelemetryCollector(origin="test")
    with tel.span("outer", phase="a"):
        with tel.span("inner"):
            pass
    tel.counter("tasks", fn="demo").inc(3)
    tel.gauge("rate").set(0.75)
    tel.histogram("wall_ns", unit="ns", stage="f").observe(1500.0)
    tel.event("transition", kind="fault")
    return tel


class TestJsonl:
    def test_write_then_validate(self, tmp_path):
        path = tmp_path / "run.jsonl"
        n = write_jsonl(_sample_collector(), path)
        summary = validate_jsonl(path)
        assert summary["records"] == n
        assert summary["by_type"] == {"meta": 1, "counter": 1, "gauge": 1,
                                      "histogram": 1, "span": 2, "event": 1}

    def test_round_trip(self, tmp_path):
        tel = _sample_collector()
        path = tmp_path / "run.jsonl"
        write_jsonl(tel, path)
        payload = read_jsonl(path)
        assert payload == tel.payload()

    def test_first_line_is_meta(self, tmp_path):
        path = tmp_path / "run.jsonl"
        write_jsonl(_sample_collector(), path)
        first = json.loads(path.read_text().splitlines()[0])
        assert first["type"] == "meta"
        assert first["origin"] == "test"

    def test_validator_rejects_missing_keys(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"type": "meta", "version": 1, "origin": "x"}\n'
            '{"type": "span", "name": "s"}\n')
        with pytest.raises(TelemetrySchemaError, match="missing key"):
            validate_jsonl(path)

    def test_validator_rejects_missing_meta(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "counter", "name": "c", '
                        '"labels": {}, "value": 1}\n')
        with pytest.raises(TelemetrySchemaError, match="meta"):
            validate_jsonl(path)

    def test_validator_rejects_bad_histogram_shape(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"type": "meta", "version": 1, "origin": "x"}\n'
            '{"type": "histogram", "name": "h", "labels": {}, '
            '"edges": [1.0, 2.0], "counts": [0, 1], "count": 1, '
            '"total": 1.5}\n')
        with pytest.raises(TelemetrySchemaError, match="counts"):
            validate_jsonl(path)

    def test_validator_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(TelemetrySchemaError, match="invalid JSON"):
            validate_jsonl(path)


class TestChromeTrace:
    def test_export_validates(self, tmp_path):
        path = tmp_path / "trace.json"
        n = write_chrome_trace(_sample_collector(), path)
        summary = validate_chrome_trace(path)
        assert summary["events"] == n
        # 2 spans (X), 1 event (i), 1 process-name metadata row (M).
        assert summary["by_phase"] == {"X": 2, "i": 1, "M": 1}

    def test_span_timestamps_in_microseconds(self):
        tel = _sample_collector()
        trace = chrome_trace(tel)
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        by_name = {e["name"]: e for e in spans}
        rec = {r["name"]: r for r in tel.spans}
        assert by_name["outer"]["ts"] == rec["outer"]["ts_ns"] / 1e3
        assert by_name["outer"]["dur"] == rec["outer"]["dur_ns"] / 1e3
        assert by_name["outer"]["args"]["phase"] == "a"

    def test_process_metadata_named_by_origin(self):
        trace = chrome_trace(_sample_collector())
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        assert meta[0]["args"]["name"] == "test"

    def test_merged_worker_spans_keep_origin(self):
        parent = TelemetryCollector(origin="main")
        worker = TelemetryCollector(origin="shard-0")
        with worker.span("exec.shard", shard=0):
            pass
        parent.merge(worker.payload())
        trace = chrome_trace(parent)
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        assert {e["args"]["name"] for e in meta} == {"shard-0"}

    def test_validator_rejects_bad_phase(self):
        with pytest.raises(TelemetrySchemaError, match="phase"):
            validate_chrome_trace({"traceEvents": [
                {"name": "x", "ph": "Z", "pid": 1, "tid": 1}]})

    def test_validator_rejects_negative_duration(self):
        with pytest.raises(TelemetrySchemaError, match="dur"):
            validate_chrome_trace({"traceEvents": [
                {"name": "x", "ph": "X", "pid": 1, "tid": 1,
                 "ts": 0, "dur": -5}]})

    def test_validator_rejects_missing_array(self):
        with pytest.raises(TelemetrySchemaError, match="traceEvents"):
            validate_chrome_trace({"foo": []})


class TestSummaryTables:
    def test_markdown_sections(self):
        text = summary_table(_sample_collector())
        assert "## Spans" in text
        assert "## Counters" in text
        assert "## Gauges" in text
        assert "## Histograms" in text
        assert "fn=demo" in text
        assert "| outer" in text

    def test_csv_rows(self):
        text = summary_table(_sample_collector(), fmt="csv")
        lines = text.strip().splitlines()
        header = lines[0].split(",")
        assert header[:3] == ["section", "name", "labels"]
        assert all(len(line.split(",")) == len(header)
                   for line in lines[1:])
        assert any(line.startswith("counters,tasks,fn=demo,3")
                   for line in lines)

    def test_empty_collector_renders(self):
        text = summary_table(TelemetryCollector())
        assert "no telemetry recorded" in text

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            summary_table(TelemetryCollector(), fmt="xml")


class TestValidateCli:
    def test_ok_exit_zero(self, tmp_path, capsys):
        # The sample collector uses free-form metric names, so the
        # repo-prefix gate (on by default) is switched off here; the
        # gate itself is covered by TestPrefixGate.
        jsonl = tmp_path / "run.jsonl"
        trace = tmp_path / "trace.json"
        tel = _sample_collector()
        write_jsonl(tel, jsonl)
        write_chrome_trace(tel, trace)
        assert validate_main([str(jsonl), "--no-prefix-check",
                              "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert out.count("OK") == 2

    def test_failure_exit_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("nope\n")
        assert validate_main([str(bad)]) == 1
        assert "schema error" in capsys.readouterr().out

    def test_requires_an_input(self):
        with pytest.raises(SystemExit):
            validate_main([])


class TestPrefixGate:
    """The CLI rejects metric families the repo does not define."""

    @staticmethod
    def _write(tmp_path, name):
        tel = TelemetryCollector(origin="prefix-test")
        tel.counter(name).inc()
        path = tmp_path / "run.jsonl"
        write_jsonl(tel, path)
        return path

    def test_known_prefixes_cover_probes(self):
        from repro.telemetry import KNOWN_METRIC_PREFIXES

        assert "probes." in KNOWN_METRIC_PREFIXES
        assert KNOWN_METRIC_PREFIXES == tuple(sorted(KNOWN_METRIC_PREFIXES))

    def test_known_prefixes_cover_fleet(self):
        from repro.telemetry import KNOWN_METRIC_PREFIXES

        assert "fleet." in KNOWN_METRIC_PREFIXES

    def test_known_prefixes_cover_service(self):
        from repro.telemetry import KNOWN_METRIC_PREFIXES

        assert "service." in KNOWN_METRIC_PREFIXES
        assert KNOWN_METRIC_PREFIXES == tuple(sorted(KNOWN_METRIC_PREFIXES))

    def test_repo_prefix_accepted(self, tmp_path):
        assert validate_main(
            [str(self._write(tmp_path, "probes.samples"))]) == 0

    def test_fleet_prefix_accepted(self, tmp_path):
        assert validate_main(
            [str(self._write(tmp_path, "fleet.reroute.events"))]) == 0

    def test_known_prefixes_cover_obs(self):
        from repro.telemetry import KNOWN_METRIC_PREFIXES

        assert "obs." in KNOWN_METRIC_PREFIXES
        assert KNOWN_METRIC_PREFIXES == tuple(sorted(KNOWN_METRIC_PREFIXES))

    def test_service_prefix_accepted(self, tmp_path):
        assert validate_main(
            [str(self._write(tmp_path, "service.frames.shed"))]) == 0

    def test_obs_prefix_accepted(self, tmp_path):
        assert validate_main(
            [str(self._write(tmp_path, "obs.slo.alerts"))]) == 0

    def test_obs_typo_still_rejected(self, tmp_path, capsys):
        # "observ." is NOT the registered family; near-miss names must
        # still fail the gate.
        assert validate_main(
            [str(self._write(tmp_path, "observ.slo.alerts"))]) == 1
        out = capsys.readouterr().out
        assert "unknown prefix" in out and "obs." in out

    def test_service_typo_still_rejected(self, tmp_path, capsys):
        # "services." is NOT the registered family; the gate must not
        # let the new prefix shadow near-miss names.
        assert validate_main(
            [str(self._write(tmp_path, "servicex.frames.shed"))]) == 1
        out = capsys.readouterr().out
        assert "unknown prefix" in out and "service." in out

    def test_unregistered_prefix_fails_with_actionable_message(
            self, tmp_path, capsys):
        # A new subsystem that emits metrics without registering its
        # family in KNOWN_METRIC_PREFIXES must fail CI with a message
        # naming both the offending metric and the accepted families.
        assert validate_main(
            [str(self._write(tmp_path, "flleet.reroute.events"))]) == 1
        out = capsys.readouterr().out
        assert "flleet.reroute.events" in out
        assert "unknown prefix" in out
        assert "fleet." in out          # the known list is printed

    def test_unknown_prefix_exits_nonzero(self, tmp_path, capsys):
        assert validate_main(
            [str(self._write(tmp_path, "typo.samples"))]) == 1
        out = capsys.readouterr().out
        assert "unknown prefix" in out and "typo.samples" in out

    def test_allow_prefix_extends_the_gate(self, tmp_path):
        path = self._write(tmp_path, "custom.thing")
        assert validate_main([str(path)]) == 1
        assert validate_main([str(path), "--allow-prefix", "custom."]) == 0

    def test_library_api_stays_permissive_by_default(self, tmp_path):
        # validate_jsonl only enforces prefixes when asked — existing
        # callers with free-form names keep working.
        path = self._write(tmp_path, "anything.goes")
        assert validate_jsonl(path)["records"] == 2
        from repro.telemetry import KNOWN_METRIC_PREFIXES

        with pytest.raises(TelemetrySchemaError, match="unknown prefix"):
            validate_jsonl(path, metric_prefixes=KNOWN_METRIC_PREFIXES)
