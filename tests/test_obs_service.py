"""Service integration of repro.obs: series sampling, SLOs, status output."""

import json
import os

from repro.obs.series import SeriesRecorder
from repro.service import ServeConfig, run_once
from repro.service.health import slo_html_section
from repro.service.loadtest import LoadTestConfig, run_loadtest


def _calm_config(**kwargs):
    base = dict(sessions=6, tenants=2, chains=2, seed=11,
                rate_fps=40.0, duration_s=0.2)
    base.update(kwargs)
    return ServeConfig(**base)


def _storm_config(**kwargs):
    """Overload + storm: sheds frames and mutes chains, so SLOs burn."""
    base = dict(sessions=10, tenants=2, chains=2, seed=23,
                rate_fps=80.0, duration_s=0.6, capacity_per_tick=2,
                storm_rate_per_s=25.0, status_interval_s=0.1)
    base.update(kwargs)
    return ServeConfig(**base)


class TestSeriesSampling:
    def test_pump_records_service_series(self):
        pump, _ = run_once(_calm_config())
        names = pump.series.names()
        for expected in ("service.queue_wait_p99_s", "service.shed_rate",
                         "service.chain_availability",
                         "service.queue_depth"):
            assert expected in names
        # One sample per tick — retention-bounded but non-empty.
        assert pump.series.series("service.queue_depth").points

    def test_samples_use_virtual_time(self):
        config = _calm_config()
        pump, _ = run_once(config)
        points = pump.series.series("service.queue_depth").points
        times = [t for t, _ in points]
        assert times == sorted(times)
        # Virtual clock: bounded by duration plus the drain horizon,
        # regardless of how long the run took on the wall.
        assert times[-1] <= config.duration_s + 1.0

    def test_calm_run_fires_nothing(self):
        pump, _ = run_once(_calm_config())
        assert pump.slo_engine.firing == []
        assert pump.slo_engine.alert_stream() == []


class TestStormSlos:
    def test_storm_fires_slo_alerts(self):
        pump, tel = run_once(_storm_config())
        fired = {a.slo for a in pump.slo_engine.alerts}
        assert "shed-rate" in fired
        counters = tel.metrics.counter_values("obs.slo.alerts")
        assert sum(counters.values()) == len(pump.slo_engine.alerts)

    def test_same_seed_identical_alert_streams(self):
        pump_a, _ = run_once(_storm_config())
        pump_b, _ = run_once(_storm_config())
        assert pump_a.slo_engine.alert_stream() \
            == pump_b.slo_engine.alert_stream()
        assert pump_a.slo_engine.alert_stream()

    def test_status_json_carries_slo_state(self, tmp_path):
        out = tmp_path / "status"
        pump, _ = run_once(_storm_config(), status_dir=out)
        status = json.loads((out / "status.json").read_text())
        slo = status["slo"]
        assert slo["firing"] or slo["alerts"]
        assert {s["name"] for s in slo["specs"]} == \
            {"frame-latency", "shed-rate", "chain-availability"}

    def test_series_jsonl_written_and_loadable(self, tmp_path):
        out = tmp_path / "status"
        pump, _ = run_once(_storm_config(), status_dir=out)
        path = out / "series.jsonl"
        assert path.exists()
        loaded = SeriesRecorder.load_jsonl(path)
        assert loaded.snapshot() == pump.series.snapshot()
        assert all(not name.endswith(".tmp") for name in os.listdir(out))

    def test_link_health_html_has_slo_section_no_scripts(self, tmp_path):
        out = tmp_path / "status"
        run_once(_storm_config(), status_dir=out)
        html = (out / "link_health.html").read_text()
        assert "SLO" in html
        assert "<script" not in html
        assert "shed-rate" in html


class TestSloHtmlSection:
    def test_empty_state_renders_nothing(self):
        assert slo_html_section(None) == ""
        assert slo_html_section({"state": {}, "alerts": [],
                                 "firing": [], "specs": []}) == ""

    def test_firing_rows_marked(self):
        from repro.obs.slo import SloEngine, SloSpec, SloWindow

        rec = SeriesRecorder()
        spec = SloSpec(name="shed-rate", series="service.shed_rate",
                       objective="le", target=0.0, budget=0.01,
                       windows=(SloWindow(long_s=1.0, short_s=0.3,
                                          burn_threshold=1.0),))
        engine = SloEngine([spec])
        for i in range(10):
            rec.sample("service.shed_rate", i * 0.1, 1.0)
        engine.evaluate(rec, 0.9)
        html = slo_html_section(engine.status())
        assert "FIRING" in html
        assert "shed-rate" in html
        assert "<script" not in html


class TestLoadtestReport:
    def test_report_carries_slo_outcome(self):
        report, pump = run_loadtest(LoadTestConfig(
            serve=_storm_config(duration_s=0.4),
            check_determinism=False))
        slo = report.slo
        assert slo["alert_count"] == len(pump.slo_engine.alerts)
        assert slo["alert_count"] > 0
        assert set(slo) == {"firing", "alert_count", "firing_count",
                            "alerts"}
        assert report.as_dict()["slo"] == slo
