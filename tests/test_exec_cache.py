"""The content-addressed result cache: round-trips, stats, corruption."""

import numpy as np
import pytest

from repro.exec import ResultCache


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestRoundTrip:
    def test_scalar_tree(self, cache):
        value = {"a": 1, "b": 2.5, "c": "x", "d": None, "e": True,
                 "f": [1, 2, {"g": 3}]}
        cache.put("k" * 64, value)
        assert cache.get("k" * 64) == value

    def test_arrays_bit_identical(self, cache):
        rng = np.random.default_rng(0)
        value = {"real": rng.standard_normal(17),
                 "cplx": rng.standard_normal(5) + 1j * rng.standard_normal(5),
                 "ints": np.arange(4, dtype=np.int64),
                 "nested": [np.zeros((2, 3)), {"deep": np.ones(2)}]}
        cache.put("a" * 64, value)
        out = cache.get("a" * 64)
        for key in ("real", "cplx", "ints"):
            assert out[key].dtype == value[key].dtype
            assert np.array_equal(out[key], value[key])
        assert np.array_equal(out["nested"][0], value["nested"][0])
        assert np.array_equal(out["nested"][1]["deep"],
                              value["nested"][1]["deep"])

    def test_tuples_survive(self, cache):
        cache.put("t" * 64, {"pair": (1, 2.0), "unit": ("x",)})
        out = cache.get("t" * 64)
        assert out["pair"] == (1, 2.0) and isinstance(out["pair"], tuple)

    def test_complex_scalars(self, cache):
        cache.put("c" * 64, {"z": 1.5 - 2.5j})
        assert cache.get("c" * 64)["z"] == 1.5 - 2.5j

    def test_uncacheable_type_rejected(self, cache):
        with pytest.raises(TypeError, match="cannot cache"):
            cache.put("u" * 64, {"bad": object()})


class TestStats:
    def test_hit_miss_store_counts(self, cache):
        assert cache.get("m" * 64) is None
        cache.put("m" * 64, {"v": 1})
        assert cache.get("m" * 64) == {"v": 1}
        s = cache.stats
        assert (s.hits, s.misses, s.stores) == (1, 1, 1)
        assert s.hit_rate == 0.5

    def test_len_counts_entries(self, cache):
        assert len(cache) == 0
        cache.put("x" * 64, {"v": 1})
        cache.put("y" * 64, {"v": 2})
        assert len(cache) == 2


class TestCorruptionAndInvalidation:
    def test_corrupt_entry_is_invalidated(self, cache):
        key = "z" * 64
        cache.put(key, {"v": 1})
        path = cache._path(key)
        path.write_bytes(b"not an npz file")
        assert cache.get(key) is None
        assert cache.stats.invalidations == 1
        assert not path.exists()

    def test_invalidate_all(self, cache):
        cache.put("p" * 64, {"v": 1}, fn="fn.a", version="1")
        cache.put("q" * 64, {"v": 2}, fn="fn.b", version="1")
        assert cache.invalidate() == 2
        assert len(cache) == 0

    def test_invalidate_by_fn(self, cache):
        cache.put("p" * 64, {"v": 1}, fn="fn.a", version="1")
        cache.put("q" * 64, {"v": 2}, fn="fn.b", version="1")
        assert cache.invalidate(fn="fn.a") == 1
        assert cache.get("q" * 64) == {"v": 2}

    def test_version_changes_key(self):
        # A bumped task version changes the content address itself, so
        # stale results can never be returned for new code.
        from repro.exec import digest

        key_v1 = digest(["task", "fn", "1", {"x": 1}, 0])
        key_v2 = digest(["task", "fn", "2", {"x": 1}, 0])
        assert key_v1 != key_v2

    def test_corrupt_stat_counts_torn_entries(self, cache):
        key = "y" * 64
        cache.put(key, {"v": np.arange(40.0)})
        path = cache._path(key)
        payload = path.read_bytes()
        path.write_bytes(payload[: len(payload) // 2])   # torn zip
        assert cache.get(key, default="gone") == "gone"
        assert cache.stats.corrupt == 1
        assert cache.stats.invalidations == 1
        assert not path.exists()
        # Recompute-and-store repopulates cleanly.
        cache.put(key, {"v": np.arange(40.0)})
        assert np.array_equal(cache.get(key)["v"], np.arange(40.0))
        assert cache.stats.corrupt == 1                  # unchanged

    def test_plain_miss_is_not_corrupt(self, cache):
        assert cache.get("m" * 64) is None
        assert cache.stats.misses == 1
        assert cache.stats.corrupt == 0

    def test_invalidate_by_fn_skips_corrupt_entries(self, cache):
        cache.put("p" * 64, {"v": 1}, fn="fn.a", version="1")
        cache.put("q" * 64, {"v": 2}, fn="fn.b", version="1")
        cache._path("p" * 64).write_bytes(b"\x00garbage")
        # The torn entry has no readable fn metadata: a targeted
        # invalidation must not crash (nor remove the other entry).
        assert cache.invalidate(fn="fn.b") == 1
        assert cache.get("q" * 64) is None
