"""The district sweep on the exec engine: identity, caching, bounds."""

import numpy as np
import pytest

from repro.exec import ChaosPolicy, last_sweep_stats
from repro.fleet import FleetReroutePolicy, fleet_experiment
from repro.telemetry.collector import TelemetryCollector, use_collector

#: Small but storm-heavy district: 9 relays, 18 clients, enough steps
#: for the supervision ladder to mute and recover several relays.
KW = {"rows": 3, "cols": 3, "clients_per_home": 2, "seed": 5,
      "storm": 0.5, "num_steps": 200}

COMPARE = ("throughput_mbps", "reroute_latency_intervals", "rescued",
           "relay_load")


@pytest.fixture(scope="module")
def serial():
    return fleet_experiment(**KW, jobs=1, backend="serial", cache=False)


class TestAggregates:
    def test_shapes_and_bookkeeping(self, serial):
        assert serial["num_relays"] == 9
        assert serial["num_clients"] == 18
        assert serial["throughput_mbps"].shape == (18,)
        assert int(serial["relay_load"].sum()) == 18
        assert serial["reroutes"] == serial["reroute_latency_intervals"].size
        assert serial["rescued"].size == serial["reroutes"]

    def test_storm_is_non_vacuous(self, serial):
        # The gate below is meaningless unless the storm actually
        # muted relays and forced reroutes.
        assert serial["outage_relays"] > 0
        assert serial["reroutes"] > 0
        assert serial["muted_clients"] > 0

    def test_every_reroute_within_policy_bound(self, serial):
        lat = serial["reroute_latency_intervals"]
        bound = serial["latency_bound_intervals"]
        assert bound == FleetReroutePolicy().max_reroute_intervals
        assert int(lat.min()) >= 1
        assert int(lat.max()) <= bound
        assert serial["max_latency_intervals"] <= bound

    def test_every_feasible_muted_client_rerouted(self, serial):
        # The fast-reroute acceptance criterion: a client whose primary
        # muted, who has a precomputed backup and whose switch window
        # fits the horizon, must actually have switched.
        assert serial["unrerouted_muted_clients"] == 0

    def test_cdf_summaries_consistent(self, serial):
        cdf = serial["throughput_cdf"]
        assert cdf["count"] == 18
        assert cdf["mean"] == pytest.approx(
            float(serial["throughput_mbps"].mean()))
        pcts = [cdf["percentiles"][p] for p in ("5", "50", "95")]
        assert pcts == sorted(pcts)
        assert serial["latency_cdf"]["count"] == serial["reroutes"]

    def test_calm_storm_has_no_reroutes(self):
        out = fleet_experiment(**{**KW, "storm": 0.0}, jobs=1,
                               backend="serial", cache=False)
        assert out["reroutes"] == 0
        assert out["outage_relays"] == 0
        assert out["rescue_rate"] == 1.0
        assert (out["throughput_mbps"] > 0).all()

    def test_storm_costs_throughput(self, serial):
        calm = fleet_experiment(**{**KW, "storm": 0.0}, jobs=1,
                                backend="serial", cache=False)
        assert serial["throughput_mbps"].mean() \
            < calm["throughput_mbps"].mean()


class TestBackendIdentity:
    def test_process_bit_identical_to_serial(self, serial):
        proc = fleet_experiment(**KW, jobs=2, backend="process",
                                cache=False)
        for key in COMPARE:
            assert np.array_equal(serial[key], proc[key]), key

    def test_thread_bit_identical_to_serial(self, serial):
        thr = fleet_experiment(**KW, jobs=2, backend="thread", cache=False)
        for key in COMPARE:
            assert np.array_equal(serial[key], thr[key]), key


class TestEngineIntegration:
    def test_warm_cache_replays_identically(self, serial, tmp_path):
        cache = str(tmp_path / "cache")
        cold = fleet_experiment(**KW, jobs=1, backend="serial", cache=cache)
        cold_stats = last_sweep_stats()
        warm = fleet_experiment(**KW, jobs=1, backend="serial", cache=cache)
        warm_stats = last_sweep_stats()
        assert cold_stats.cache_hits == 0
        assert warm_stats.executed == 0
        assert warm_stats.cache_hits == cold_stats.executed > 0
        for key in COMPARE:
            assert np.array_equal(serial[key], cold[key]), key
            assert np.array_equal(serial[key], warm[key]), key

    def test_checkpoint_resume(self, serial, tmp_path):
        manifest = str(tmp_path / "fleet.manifest.jsonl")
        cache = str(tmp_path / "cache")
        fleet_experiment(**KW, jobs=1, backend="serial", cache=cache,
                         checkpoint=manifest)
        resumed = fleet_experiment(**KW, jobs=1, backend="serial",
                                   cache=cache, checkpoint=manifest)
        stats = last_sweep_stats()
        assert stats.resumed > 0
        assert stats.executed == 0
        for key in COMPARE:
            assert np.array_equal(serial[key], resumed[key]), key

    def test_survives_chaos_bit_identically(self, serial):
        # PR 7 fault tolerance carries over: a kill/error storm inside
        # the workers must not change a single aggregate bit.
        chaos = ChaosPolicy(seed=3, error_rate=0.3, kill_rate=0.2)
        out = fleet_experiment(**KW, jobs=2, backend="process",
                               cache=False, max_retries=4, chaos=chaos)
        for key in COMPARE:
            assert np.array_equal(serial[key], out[key]), key

    def test_policy_kwargs_reach_the_policy(self, serial):
        # Widening the RSS margin turns every candidate equal-cost, so
        # the hash spreads clients off their home relays — visible in
        # the load vector, proving the kwargs reached the policy.
        out = fleet_experiment(**KW, policy="hashed-lb",
                               policy_kwargs={"rss_margin_db": 60.0,
                                              "salt": 1},
                               jobs=1, backend="serial", cache=False)
        assert not np.array_equal(serial["relay_load"], out["relay_load"])


class TestTelemetry:
    def test_fleet_metric_family_emitted(self):
        tel = TelemetryCollector(origin="fleet-test")
        with use_collector(tel):
            out = fleet_experiment(**KW, jobs=1, backend="serial",
                                   cache=False)
        assert tel.counter("fleet.clients").value == out["num_clients"]
        assert tel.counter("fleet.relays").value == out["num_relays"]
        assert tel.counter("fleet.reroute.events").value == out["reroutes"]
        assert tel.counter("fleet.reroute.rescued").value == \
            int(out["rescued"].sum())
        hist = tel.histogram("fleet.reroute.latency_intervals",
                             unit="intervals")
        assert hist.count == out["reroutes"]
        spans = [s["name"] for s in tel.spans]
        assert "fleet.experiment" in spans

    def test_deterministic_snapshot_backend_invariant(self):
        a = TelemetryCollector(origin="fleet")
        with use_collector(a):
            fleet_experiment(**KW, jobs=1, backend="serial", cache=False)
        b = TelemetryCollector(origin="fleet")
        with use_collector(b):
            fleet_experiment(**KW, jobs=2, backend="process", cache=False)
        assert a.deterministic_snapshot() == b.deterministic_snapshot()
