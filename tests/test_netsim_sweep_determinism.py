"""Parallel/cached/resumed sweeps are bit-identical to serial runs.

The contract of :mod:`repro.exec`: shard layout, worker count, cache
state and checkpoint recovery must never change a published number.
These tests run each experiment family at a small scale and compare
every output array bit-for-bit across execution modes.
"""

import dataclasses

import numpy as np

from repro.netsim.experiments import (
    fault_sweep_experiment,
    latency_sweep_experiment,
    overall_gains_experiment,
    siso_gains_experiment,
)
from repro.netsim.heatmap import coverage_heatmap
from repro.netsim.testbed import Testbed, paper_scenarios


def _assert_same_tree(a, b, path=""):
    assert type(a) is type(b), f"{path}: {type(a)} != {type(b)}"
    if isinstance(a, dict):
        assert a.keys() == b.keys(), f"{path}: key mismatch"
        for key in a:
            _assert_same_tree(a[key], b[key], f"{path}.{key}")
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b), f"{path}: length mismatch"
        for i, (x, y) in enumerate(zip(a, b)):
            _assert_same_tree(x, y, f"{path}[{i}]")
    elif isinstance(a, np.ndarray):
        assert a.dtype == b.dtype, f"{path}: dtype mismatch"
        assert np.array_equal(a, b, equal_nan=True), f"{path}: values differ"
    elif dataclasses.is_dataclass(a):
        _assert_same_tree(dataclasses.asdict(a), dataclasses.asdict(b), path)
    else:
        assert a == b, f"{path}: {a!r} != {b!r}"


class TestParallelMatchesSerial:
    def test_overall_gains(self):
        serial = overall_gains_experiment(num_clients=6, seed=3, jobs=1)
        parallel = overall_gains_experiment(num_clients=6, seed=3, jobs=4,
                                            backend="thread")
        _assert_same_tree(serial, parallel, "overall")

    def test_siso_gains(self):
        serial = siso_gains_experiment(num_clients=6, seed=5, jobs=1)
        parallel = siso_gains_experiment(num_clients=6, seed=5, jobs=3,
                                         backend="thread")
        _assert_same_tree(serial, parallel, "siso")

    def test_latency_sweep(self):
        serial = latency_sweep_experiment(latencies_ns=(0, 400),
                                          num_clients=4, seed=2, jobs=1)
        parallel = latency_sweep_experiment(latencies_ns=(0, 400),
                                            num_clients=4, seed=2, jobs=4,
                                            backend="thread")
        _assert_same_tree(serial, parallel, "latency")

    def test_fault_sweep(self):
        kwargs = dict(fault_rates=(0.0, 0.3), num_clients=3, num_steps=10,
                      seed=1)
        serial = fault_sweep_experiment(jobs=1, **kwargs)
        parallel = fault_sweep_experiment(jobs=4, backend="thread", **kwargs)
        _assert_same_tree(serial, parallel, "fault")

    def test_coverage_heatmap(self):
        testbed = Testbed(paper_scenarios()[0], seed=7)
        serial = coverage_heatmap(testbed, spacing_m=6.0, seed=7, jobs=1)
        parallel = coverage_heatmap(testbed, spacing_m=6.0, seed=7, jobs=4,
                                    backend="thread")
        _assert_same_tree(serial, parallel, "heatmap")


class TestCacheTransparency:
    def test_cold_then_warm_identical(self, tmp_path):
        cache = tmp_path / "cache"
        cold = overall_gains_experiment(num_clients=5, seed=11, cache=cache)
        warm = overall_gains_experiment(num_clients=5, seed=11, cache=cache)
        _assert_same_tree(cold, warm, "cached")
        uncached = overall_gains_experiment(num_clients=5, seed=11)
        _assert_same_tree(cold, uncached, "uncached")

    def test_seed_change_defeats_cache(self, tmp_path):
        cache = tmp_path / "cache"
        a = overall_gains_experiment(num_clients=4, seed=1, cache=cache)
        b = overall_gains_experiment(num_clients=4, seed=2, cache=cache)
        assert not np.array_equal(a["fastforward"], b["fastforward"])


class TestCheckpointResume:
    def test_resume_after_kill_identical(self, tmp_path):
        # Run the sweep to completion, then throw away most of the
        # manifest — as if the process died mid-sweep — and rerun.
        cache = tmp_path / "cache"
        manifest = tmp_path / "sweep.jsonl"
        full = overall_gains_experiment(num_clients=5, seed=9, cache=cache,
                                        checkpoint=manifest)
        lines = manifest.read_text().splitlines()
        assert len(lines) > 4
        manifest.write_text("\n".join(lines[:4]) + "\n")   # header + 3 done

        resumed = overall_gains_experiment(num_clients=5, seed=9,
                                           cache=cache, checkpoint=manifest)
        _assert_same_tree(full, resumed, "resumed")

    def test_multi_phase_checkpoints(self, tmp_path):
        # fault_sweep runs two engine phases; each gets its own manifest.
        manifest = tmp_path / "faults.jsonl"
        kwargs = dict(fault_rates=(0.0, 0.3), num_clients=3, num_steps=8,
                      seed=4, cache=tmp_path / "cache")
        first = fault_sweep_experiment(checkpoint=manifest, **kwargs)
        assert (tmp_path / "faults.jsonl.probe").exists()
        assert (tmp_path / "faults.jsonl.run").exists()
        again = fault_sweep_experiment(checkpoint=manifest, **kwargs)
        _assert_same_tree(first, again, "fault-resume")
