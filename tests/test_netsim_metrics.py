"""CDF and gain statistics."""

import numpy as np
import pytest

from repro.netsim import empirical_cdf, median_gain, percentile_gain, relative_gains


class TestCdf:
    def test_sorted_and_normalised(self):
        v, p = empirical_cdf([3.0, 1.0, 2.0])
        assert np.allclose(v, [1.0, 2.0, 3.0])
        assert np.allclose(p, [1 / 3, 2 / 3, 1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_cdf([])


class TestGains:
    def test_elementwise_ratio(self):
        g = relative_gains([10.0, 30.0], [10.0, 10.0])
        assert np.allclose(g, [1.0, 3.0])

    def test_zero_baseline_dropped(self):
        g = relative_gains([10.0, 30.0], [0.0, 10.0])
        assert np.allclose(g, [3.0])

    def test_zero_baseline_error_mode(self):
        with pytest.raises(ValueError):
            relative_gains([1.0], [0.0], drop_zero_baseline=False)

    def test_all_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            relative_gains([1.0, 2.0], [0.0, 0.0])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            relative_gains([1.0], [1.0, 2.0])

    def test_median_gain(self):
        assert median_gain([10, 20, 30], [10, 10, 10]) == 2.0

    def test_percentile_gain(self):
        scheme = np.arange(1, 101, dtype=float)
        base = np.ones(100)
        assert percentile_gain(scheme, base, 20) == pytest.approx(20.8, rel=0.05)
