"""Digital cancellation: causal vs non-causal, estimators."""

import numpy as np
import pytest

from repro.cancellation import (
    CausalDigitalCanceller,
    NonCausalDigitalCanceller,
    estimate_si_taps_ls,
)
from repro.cancellation.digital import fit_causal_taps
from repro.dsp.fir import fir_frequency_response
from repro.utils import make_rng


def _bandlimited(n, rng, frac=0.1, power=1.0):
    x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    spec = np.fft.fft(x)
    f = np.fft.fftfreq(n)
    spec[np.abs(f) > frac / 2] = 0
    x = np.fft.ifft(spec)
    return x * np.sqrt(power / np.mean(np.abs(x) ** 2))


class TestLatencyContract:
    def test_causal_has_zero_latency(self):
        assert CausalDigitalCanceller().latency_s == 0.0

    def test_non_causal_buffers(self):
        # The prior-work baseline: look-ahead forces buffering (§3.3).
        nc = NonCausalDigitalCanceller(num_taps=16, num_precursor=16,
                                       sample_rate_hz=20e6)
        assert nc.latency_s == pytest.approx(16 / 20e6 + 50e-9)

    def test_paper_default_tap_count(self):
        assert CausalDigitalCanceller().num_taps == 120


class TestTimeDomainLs:
    def test_recovers_exact_fir_channel(self):
        rng = make_rng(0)
        true_taps = np.array([0.5, -0.2 + 0.1j, 0.05])
        tx = rng.standard_normal(2000) + 1j * rng.standard_normal(2000)
        rx = np.convolve(tx, true_taps)[:2000]
        est = estimate_si_taps_ls(tx, rx, num_taps=3)
        assert np.allclose(est, true_taps, atol=1e-10)

    def test_precursor_taps_capture_anticausal(self):
        rng = make_rng(1)
        tx = rng.standard_normal(2000) + 1j * rng.standard_normal(2000)
        # rx depends on a FUTURE tx sample.
        rx = np.concatenate([tx[1:], [0.0]]) * 0.3
        causal = estimate_si_taps_ls(tx, rx, num_taps=4)
        both = estimate_si_taps_ls(tx, rx, num_taps=4, num_precursor=2)
        res_causal = rx - np.convolve(tx, causal)[:2000]
        pred_both = np.convolve(tx, both)[2 : 2 + 2000]
        res_both = rx - pred_both
        assert np.mean(np.abs(res_both[5:-5]) ** 2) < \
            0.01 * np.mean(np.abs(res_causal[5:-5]) ** 2)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            estimate_si_taps_ls(np.ones(10, complex), np.ones(9, complex), 2)

    def test_needs_enough_samples(self):
        with pytest.raises(ValueError):
            estimate_si_taps_ls(np.ones(10, complex), np.ones(10, complex), 8)


class TestFitCausalTaps:
    def test_norm_stays_bounded(self):
        f = np.linspace(-0.05, 0.05, 201)
        target = np.exp(-2j * np.pi * f * 8.65)  # fractional delay
        taps = fit_causal_taps(f, target, 120, ridge=1e-9)
        assert np.abs(taps).max() < 20.0

    def test_in_band_accuracy(self):
        f = np.linspace(-0.05, 0.05, 201)
        target = 0.1 * np.exp(-2j * np.pi * f * 8.65)
        taps = fit_causal_taps(f, target, 120, ridge=1e-12)
        realised = fir_frequency_response(taps, f)
        err = np.mean(np.abs(realised - target) ** 2) / np.mean(
            np.abs(target) ** 2)
        assert 10 * np.log10(err) < -50.0


class TestCausalCanceller:
    def _setup(self, rng, delay=8.3, gain=0.15):
        n = 32768
        tx = _bandlimited(n, rng, power=100.0)
        spec = np.fft.fft(tx, 2 * n)
        f = np.fft.fftfreq(2 * n)
        rx = np.fft.ifft(spec * gain * np.exp(-2j * np.pi * f * delay))[:n]
        return tx, rx

    def test_train_and_cancel_deeply(self):
        rng = make_rng(2)
        tx, rx = self._setup(rng)
        canc = CausalDigitalCanceller()
        canc.train(tx, rx)
        assert canc.cancellation_db(rx, tx) > 45.0

    def test_streaming_matches_block(self):
        rng = make_rng(3)
        tx, rx = self._setup(rng)
        canc = CausalDigitalCanceller(num_taps=24)
        canc.train(tx, rx)
        block = canc.cancel(rx[:200], tx[:200])
        stream = np.array([canc.cancel_streaming(r, t)
                           for r, t in zip(rx[:200], tx[:200])])
        assert np.allclose(stream, block)

    def test_set_taps_validates_length(self):
        canc = CausalDigitalCanceller(num_taps=8)
        with pytest.raises(ValueError):
            canc.set_taps(np.ones(7, dtype=complex))

    def test_untrained_predicts_zero(self):
        canc = CausalDigitalCanceller(num_taps=8)
        assert np.allclose(canc.predict(np.ones(16, dtype=complex)), 0.0)


class TestNonCausalCanceller:
    def test_cancels_with_lookahead(self):
        rng = make_rng(4)
        n = 16384
        tx = _bandlimited(n, rng, power=100.0)
        # Anticausal leakage: rx[n] depends on tx[n+2].
        rx = 0.1 * np.concatenate([tx[2:], np.zeros(2, dtype=complex)])
        nc = NonCausalDigitalCanceller(num_taps=8, num_precursor=8)
        nc.train(tx, rx)
        assert nc.cancellation_db(rx, tx) > 40.0
