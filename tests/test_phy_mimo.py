"""MIMO detection, SINRs and rank measures."""

import numpy as np
import pytest

from repro.channel import iid_rayleigh_mimo, pinhole_mimo
from repro.phy import (
    condition_number_db,
    effective_rank,
    mimo_stream_sinrs,
    mmse_detect,
    water_filling,
    zf_detect,
)
from repro.utils import make_rng


class TestDetectors:
    def test_zf_inverts_clean_channel(self):
        rng = make_rng(0)
        h = iid_rayleigh_mimo(2, 2, rng)
        x = np.array([1.0 + 1j, -1.0 + 0.5j])
        assert np.allclose(zf_detect(h, h @ x), x)

    def test_mmse_approaches_zf_at_high_snr(self):
        rng = make_rng(1)
        h = iid_rayleigh_mimo(2, 2, rng)
        x = np.array([1.0, 1j])
        y = h @ x
        assert np.allclose(mmse_detect(h, y, 1e-9), x, atol=1e-3)

    def test_mmse_shrinks_at_low_snr(self):
        rng = make_rng(2)
        h = iid_rayleigh_mimo(2, 2, rng)
        x = np.array([1.0, 1.0])
        est = mmse_detect(h, h @ x, 10.0)
        assert np.linalg.norm(est) < np.linalg.norm(x)

    def test_mmse_rejects_bad_noise(self):
        with pytest.raises(ValueError):
            mmse_detect(np.eye(2), np.ones(2), 0.0)


class TestStreamSinrs:
    def test_identity_channel(self):
        sinrs = mimo_stream_sinrs(np.eye(2), 0.01)
        assert np.allclose(sinrs, 100.0, rtol=0.02)

    def test_rank_one_channel_interference_limited(self):
        # A rank-1 channel cannot separate two streams: MMSE SINRs pin
        # near 0 dB (each stream sees the other as interference) no
        # matter how low the noise is.
        h = np.array([[1.0, 1.0], [1.0, 1.0]])  # rank 1
        sinrs = mimo_stream_sinrs(h, 0.01)
        assert sinrs.max() < 2.0
        full = mimo_stream_sinrs(np.eye(2), 0.01)
        assert full.min() > 50.0

    def test_zf_matches_mmse_at_high_snr(self):
        rng = make_rng(3)
        h = iid_rayleigh_mimo(2, 2, rng)
        zf = mimo_stream_sinrs(h, 1e-8, detector="zf")
        mmse = mimo_stream_sinrs(h, 1e-8, detector="mmse")
        assert np.allclose(zf, mmse, rtol=1e-3)

    def test_unknown_detector(self):
        with pytest.raises(ValueError):
            mimo_stream_sinrs(np.eye(2), 1.0, detector="ml")

    def test_singular_zf_is_zero(self):
        h = np.ones((2, 2))
        assert np.allclose(mimo_stream_sinrs(h, 1.0, detector="zf"), 0.0)


class TestRank:
    def test_identity_full_rank(self):
        assert effective_rank(np.eye(2)) == 2

    def test_pure_pinhole_rank_one(self):
        rng = make_rng(4)
        h = pinhole_mimo(2, 2, leakage=0.0, rng=rng)
        assert effective_rank(h) == 1

    def test_rich_scattering_usually_full_rank(self):
        rng = make_rng(5)
        count = sum(effective_rank(iid_rayleigh_mimo(2, 2, rng)) == 2
                    for _ in range(50))
        assert count > 30

    def test_zero_channel(self):
        assert effective_rank(np.zeros((2, 2))) == 0

    def test_condition_number_identity(self):
        assert condition_number_db(np.eye(2)) == pytest.approx(0.0)

    def test_condition_number_pinhole_large(self):
        rng = make_rng(6)
        h = pinhole_mimo(2, 2, leakage=0.01, rng=rng)
        assert condition_number_db(h) > 15.0


class TestWaterFilling:
    def test_total_power_conserved(self):
        p = water_filling([1.0, 0.5, 0.1], 2.0)
        assert p.sum() == pytest.approx(2.0)

    def test_stronger_channel_gets_more(self):
        p = water_filling([1.0, 0.2], 1.0)
        assert p[0] > p[1]

    def test_weak_channel_dropped_at_low_power(self):
        p = water_filling([1.0, 0.01], 0.1)
        assert p[1] == 0.0

    def test_equal_channels_split_evenly(self):
        p = water_filling([1.0, 1.0], 2.0)
        assert np.allclose(p, [1.0, 1.0])

    def test_invalid_power(self):
        with pytest.raises(ValueError):
            water_filling([1.0], 0.0)
