"""PHY validation: simulated error rates vs closed-form theory."""

import pytest

from repro.phy.analysis import (
    mcs_operating_point,
    packet_error_waterfall,
    q_function,
    simulate_coded_ber,
    simulate_uncoded_ber,
    theoretical_ber_awgn,
)
from repro.phy.modulation import BPSK, QAM16, QAM64, QPSK
from repro.phy.rates import MCS_TABLE
from repro.utils import make_rng


class TestQFunction:
    def test_known_values(self):
        assert q_function(0.0) == pytest.approx(0.5)
        assert q_function(1.0) == pytest.approx(0.1587, abs=1e-3)
        assert q_function(3.0) == pytest.approx(1.35e-3, rel=0.05)

    def test_symmetry(self):
        assert q_function(-1.5) + q_function(1.5) == pytest.approx(1.0)


class TestUncodedBerVsTheory:
    @pytest.mark.parametrize("mod,snr_db", [
        (BPSK, 4.0), (BPSK, 7.0), (QPSK, 7.0), (QPSK, 10.0),
        (QAM16, 14.0), (QAM64, 20.0),
    ], ids=lambda v: str(v))
    def test_matches_theory(self, mod, snr_db):
        if not hasattr(mod, "bits_per_symbol"):
            pytest.skip()
        rng = make_rng(0)
        sim = simulate_uncoded_ber(mod, snr_db, num_bits=120000, rng=rng)
        theory = theoretical_ber_awgn(mod, snr_db)
        # Within a factor ~1.5 of theory (Monte-Carlo + NN approximation).
        assert sim == pytest.approx(theory, rel=0.5, abs=2e-4)

    def test_ber_monotone_in_snr(self):
        rng = make_rng(1)
        bers = [simulate_uncoded_ber(QPSK, s, num_bits=60000, rng=rng)
                for s in (4.0, 8.0, 12.0)]
        assert bers[0] > bers[1] > bers[2]


class TestCodedBer:
    def test_coding_gain(self):
        # At the same per-symbol SNR the coded stream is far cleaner.
        rng = make_rng(2)
        uncoded = simulate_uncoded_ber(QPSK, 6.0, num_bits=60000, rng=rng)
        coded = simulate_coded_ber(QPSK, 6.0, num_bits=30000, rng=rng)
        assert coded < uncoded / 5.0

    def test_waterfall_region(self):
        rng = make_rng(3)
        bad = simulate_coded_ber(QPSK, 0.0, num_bits=20000, rng=rng)
        good = simulate_coded_ber(QPSK, 7.0, num_bits=20000, rng=rng)
        assert bad > 0.01
        assert good == 0.0


class TestPacketWaterfall:
    def test_per_collapses_with_snr(self):
        rng = make_rng(4)
        pers = packet_error_waterfall(2, [4.0, 20.0], packets=10, rng=rng)
        assert pers[0] > 0.5
        assert pers[1] == 0.0

    @pytest.mark.parametrize("mcs", [0, 3, 5])
    def test_mcs_thresholds_near_operating_point(self, mcs):
        # The table's thresholds are post-detection link-abstraction
        # numbers; the sample-level chain adds sync/estimation overhead
        # (a few dB at the bottom of the ladder), so the measured AWGN
        # crossing must sit within that band of the table entry.
        rng = make_rng(10 + mcs)
        crossing = mcs_operating_point(mcs, packets=12, rng=rng)
        assert crossing <= MCS_TABLE[mcs].min_snr_db + 4.0
        assert crossing >= MCS_TABLE[mcs].min_snr_db - 6.0

    def test_higher_mcs_needs_more_snr(self):
        rng = make_rng(5)
        low = mcs_operating_point(0, packets=10, rng=rng)
        high = mcs_operating_point(6, packets=10, rng=rng)
        assert high > low + 8.0
