"""Path-loss models."""

import numpy as np
import pytest

from repro.channel import (
    PathLossModel,
    free_space_path_loss_db,
    log_distance_path_loss_db,
)
from repro.utils import make_rng


class TestFreeSpace:
    def test_known_value_2_4ghz_1m(self):
        # FSPL at 2.45 GHz, 1 m is ~40.2 dB.
        assert free_space_path_loss_db(1.0, 2.45e9) == pytest.approx(40.2,
                                                                     abs=0.3)

    def test_inverse_square(self):
        l1 = free_space_path_loss_db(1.0, 2.45e9)
        l2 = free_space_path_loss_db(2.0, 2.45e9)
        assert l2 - l1 == pytest.approx(6.02, abs=0.05)

    def test_rejects_zero_distance(self):
        with pytest.raises(ValueError):
            free_space_path_loss_db(0.0, 2.45e9)


class TestLogDistance:
    def test_matches_fspl_at_reference(self):
        assert log_distance_path_loss_db(1.0, 2.45e9) == pytest.approx(
            free_space_path_loss_db(1.0, 2.45e9))

    def test_exponent_controls_slope(self):
        slope_db = (log_distance_path_loss_db(10.0, 2.45e9, exponent=3.0)
                    - log_distance_path_loss_db(1.0, 2.45e9, exponent=3.0))
        assert slope_db == pytest.approx(30.0, abs=0.01)

    def test_clamps_below_reference(self):
        near = log_distance_path_loss_db(0.2, 2.45e9)
        ref = log_distance_path_loss_db(1.0, 2.45e9)
        assert near == ref

    def test_shadowing_adds(self):
        base = log_distance_path_loss_db(5.0, 2.45e9)
        shadowed = log_distance_path_loss_db(5.0, 2.45e9, shadowing_db=4.0)
        assert shadowed == pytest.approx(base + 4.0)


class TestPathLossModel:
    def test_deterministic_without_shadowing(self):
        model = PathLossModel(exponent=3.0)
        assert model.loss_db(5.0) == model.loss_db(5.0)

    def test_shadowing_requires_rng(self):
        model = PathLossModel(shadowing_sigma_db=4.0)
        with pytest.raises(ValueError):
            model.loss_db(5.0)

    def test_shadowing_statistics(self):
        model = PathLossModel(shadowing_sigma_db=4.0)
        rng = make_rng(0)
        draws = np.array([model.loss_db(5.0, rng=rng) for _ in range(2000)])
        assert draws.std() == pytest.approx(4.0, rel=0.1)

    def test_received_power(self):
        model = PathLossModel(exponent=3.0)
        rx = model.received_power_dbm(20.0, 5.0)
        assert rx == pytest.approx(20.0 - model.loss_db(5.0))

    def test_rejects_negative_sigma(self):
        with pytest.raises(ValueError):
            PathLossModel(shadowing_sigma_db=-1.0)
