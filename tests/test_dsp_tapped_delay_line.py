"""The analog tap-delay-line model (cancellation board / CNF filter)."""

import numpy as np
import pytest

from repro.dsp import AnalogTapDelayLine
from repro.utils import make_rng


def _line(num_taps=4, spacing=100e-12):
    return AnalogTapDelayLine(np.arange(num_taps) * spacing, carrier_hz=2.45e9)


class TestConstruction:
    def test_rejects_negative_delays(self):
        with pytest.raises(ValueError):
            AnalogTapDelayLine([-1e-12])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            AnalogTapDelayLine([])

    def test_gains_start_at_zero(self):
        line = _line()
        assert np.allclose(line.gains, 0.0)

    def test_carrier_phase_quarter_wave(self):
        # 100 ps at 2.45 GHz rotates by ~88 degrees (0.245 cycles).
        line = _line()
        phases = line.carrier_phases()
        assert phases[1] == pytest.approx(-2 * np.pi * 0.245, rel=1e-6)


class TestGainProgramming:
    def test_set_gains_shape_check(self):
        with pytest.raises(ValueError):
            _line().set_gains([1.0, 2.0])

    def test_attenuator_quantisation(self):
        line = _line()
        programmed = line.set_attenuations_db([0.13, 10.12, 31.9, 50.0])
        assert np.allclose(programmed, [0.25, 10.0, 31.75, 31.75])

    def test_quantize_gains_limits_magnitude(self):
        line = _line()
        q = line.quantize_gains(np.array([2.0, 0.5, 1e-9, 0.0]))
        assert np.abs(q).max() <= 1.0
        assert q[3] == 0.0

    def test_quantize_preserves_phase(self):
        line = _line()
        g = 0.5 * np.exp(1j * 0.9) * np.ones(4)
        q = line.quantize_gains(g)
        assert np.allclose(np.angle(q), 0.9)

    def test_quantisation_error_small(self):
        line = _line()
        g = np.array([0.3, 0.7, 0.05, 0.9], dtype=complex)
        q = line.quantize_gains(g)
        # 0.25 dB steps: worst-case magnitude error ~1.5%.
        assert np.abs(np.abs(q) - np.abs(g)).max() < 0.02


class TestResponse:
    def test_single_tap_rotation(self):
        line = _line(1)
        line.set_gains([1.0])
        h = line.frequency_response(np.array([0.0]))
        assert h[0] == pytest.approx(1.0)  # zero delay tap

    def test_full_circle_coverage(self):
        # With 4 taps spanning ~360 degrees, any phase is reachable.
        line = _line()
        for target_phase in np.linspace(-np.pi, np.pi, 8, endpoint=False):
            target = np.exp(1j * target_phase) * np.ones(5) * 0.5
            freqs = np.linspace(-10e6, 10e6, 5)
            gains = line.solve_gains_for_response(freqs, target, max_gain=1.0)
            line.set_gains(gains)
            realised = line.frequency_response(freqs)
            assert np.abs(realised - target).max() < 0.05

    def test_apply_matches_response_for_tone(self):
        rng = make_rng(0)
        line = _line()
        line.set_gains(rng.standard_normal(4) * 0.3)
        fs = 20e6
        f0 = 2.5e6
        n = np.arange(1024)
        x = np.exp(2j * np.pi * f0 / fs * n)
        y = line.apply(x, fs)
        h = line.frequency_response(np.array([f0]))[0]
        # Interior samples follow x * H(f0).
        assert np.allclose(y[200:800], h * x[200:800], atol=1e-3)

    def test_max_gain_constraint_respected(self):
        line = _line(8, 200e-12)
        freqs = np.linspace(-10e6, 10e6, 33)
        target = 3.0 * np.exp(-2j * np.pi * freqs * 1e-9)
        gains = line.solve_gains_for_response(freqs, target, max_gain=1.0)
        assert np.abs(gains).max() <= 1.0 + 1e-6
