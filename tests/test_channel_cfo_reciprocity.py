"""CFO impairment and channel reciprocity."""

import numpy as np
import pytest

from repro.channel import CfoImpairment, MimoLink, MultipathChannel, reciprocal_channel
from repro.channel.multipath import exponential_pdp
from repro.phy.sync import estimate_cfo
from repro.utils import make_rng


class TestCfoImpairment:
    def test_phase_continuity_across_chunks(self):
        imp = CfoImpairment(50e3, 20e6)
        x = np.ones(200, dtype=complex)
        whole = CfoImpairment(50e3, 20e6).apply(x)
        part = np.concatenate([imp.apply(x[:77]), imp.apply(x[77:])])
        assert np.allclose(whole, part)

    def test_estimator_recovers_impairment(self):
        imp = CfoImpairment(42e3, 20e6)
        n = np.arange(512)
        periodic = np.exp(2j * np.pi * (n % 16) / 16.0)
        rotated = imp.apply(periodic)
        est = estimate_cfo(rotated, 16, 20e6, num_repeats=16)
        assert est == pytest.approx(42e3, rel=1e-3)

    def test_random_within_ppm(self):
        rng = make_rng(0)
        for _ in range(50):
            imp = CfoImpairment.random(20e6, carrier_hz=2.45e9, ppm=20.0,
                                       rng=rng)
            assert abs(imp.cfo_hz) <= 2.45e9 * 20e-6

    def test_reset(self):
        imp = CfoImpairment(100e3, 20e6)
        first = imp.apply(np.ones(64, dtype=complex))
        imp.reset()
        again = imp.apply(np.ones(64, dtype=complex))
        assert np.allclose(first, again)


class TestReciprocity:
    def test_siso_identical(self):
        chan = MultipathChannel(np.array([1.0, 0.3j]), extra_delay_samples=2)
        rev = reciprocal_channel(chan)
        assert np.allclose(rev.taps, chan.taps)
        assert rev.extra_delay_samples == 2

    def test_mimo_transposed(self):
        rng = make_rng(1)
        pdp = exponential_pdp(3, 30e-9, 50e-9)
        link = MimoLink.draw(2, 2, pdp, rng=rng)
        rev = reciprocal_channel(link)
        assert np.allclose(rev.taps, np.transpose(link.taps, (0, 2, 1)))

    def test_reverse_frequency_response_is_transpose(self):
        rng = make_rng(2)
        pdp = exponential_pdp(3, 30e-9, 50e-9)
        link = MimoLink.draw(2, 3, pdp, rng=rng)
        rev = reciprocal_channel(link)
        fwd = link.frequency_response([5], 64)[0]
        back = rev.frequency_response([5], 64)[0]
        assert np.allclose(back, fwd.T)

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            reciprocal_channel("not a channel")

    def test_cnf_filter_commutes_siso(self):
        # §4.2: per-subcarrier, h_sr * F * h_rd == h_rd * F * h_sr — the
        # same filter serves both directions.
        rng = make_rng(3)
        h_sr = rng.standard_normal(8) + 1j * rng.standard_normal(8)
        h_rd = rng.standard_normal(8) + 1j * rng.standard_normal(8)
        f = np.exp(2j * np.pi * rng.random(8))
        assert np.allclose(h_sr * f * h_rd, h_rd * f * h_sr)
