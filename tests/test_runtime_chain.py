"""The streaming runtime: Stage/Chain contract and block invariance.

The load-bearing property: a chain fed a stream in *any* block sizes —
including size 1 and primes — produces exactly the output of one whole-
signal call, and ``reset()`` returns it to a reusable pristine state.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cfo_restore import CfoRestorer
from repro.core.relay import FastForwardRelay, RelayConfig
from repro.phy.params import WIFI_20MHZ
from repro.runtime import (
    CfoCorrectStage,
    CfoRestoreStage,
    Chain,
    FrequencyResponseStage,
    FunctionStage,
    GainStage,
    Stage,
)

FS = WIFI_20MHZ.bandwidth_hz


def _chunks(x, sizes):
    """Split ``x`` along its last axis into blocks drawn from ``sizes``."""
    out, pos, i = [], 0, 0
    n = x.shape[-1]
    while pos < n:
        step = min(sizes[i % len(sizes)], n - pos)
        out.append(x[..., pos:pos + step])
        pos += step
        i += 1
    return out


def _stream(chain, x, sizes):
    parts = [chain.process_block(b) for b in _chunks(x, sizes)]
    parts.append(chain.flush())
    parts = [p for p in parts if p.shape[-1]]
    return np.concatenate(parts, axis=-1)


def _rms(a, b):
    return float(np.sqrt(np.mean(np.abs(a - b) ** 2)))


def _siso_relay(seed=7):
    rng = np.random.default_rng(seed)
    freqs = WIFI_20MHZ.subcarrier_freqs_hz()

    def draw():
        return (rng.normal(size=freqs.size)
                + 1j * rng.normal(size=freqs.size))

    relay = FastForwardRelay(RelayConfig())
    relay.configure_siso_link(draw(), draw(), draw())
    return relay


def _mimo_relay(k=2, seed=11):
    rng = np.random.default_rng(seed)
    freqs = WIFI_20MHZ.subcarrier_freqs_hz()

    def draw():
        return (rng.normal(size=(freqs.size, k, k))
                + 1j * rng.normal(size=(freqs.size, k, k)))

    relay = FastForwardRelay(RelayConfig())
    relay.configure_mimo_link(draw(), draw(), draw())
    return relay


class TestStageContract:
    def test_base_stage_defaults(self):
        s = Stage()
        assert s.latency_samples == 0
        assert s.flush().size == 0
        s.reset()  # no-op, must not raise
        with pytest.raises(NotImplementedError):
            s.process_block(np.zeros(4, dtype=complex))

    def test_function_stage_applies(self):
        s = FunctionStage(lambda x: 2.0 * x, name="double")
        out = s.process_block(np.ones(5, dtype=complex))
        assert np.allclose(out, 2.0)
        assert s.name == "double"

    def test_gain_stage_db(self):
        s = GainStage(20.0)
        out = s.process_block(np.ones(3, dtype=complex))
        assert np.allclose(out, 10.0)

    def test_chain_dedups_stage_labels(self):
        chain = Chain([GainStage(0.0), GainStage(0.0)])
        assert len(set(chain.labels)) == 2

    def test_chain_latency_is_sum(self):
        relay = _siso_relay()
        chain = relay.make_siso_chain()
        stage = [s for s in chain.stages
                 if isinstance(s, FrequencyResponseStage)][0]
        assert chain.latency_samples == stage.latency_samples > 0


class TestBlockInvariance:
    """Streaming in arbitrary block sizes matches one-shot <= 1e-8 RMS."""

    @settings(max_examples=20, deadline=None)
    @given(sizes=st.lists(st.sampled_from([1, 2, 3, 7, 13, 64, 97, 1000]),
                          min_size=1, max_size=6),
           cfo_hz=st.sampled_from([0.0, 312.5, 4300.0]))
    def test_siso_chain_any_chunking(self, sizes, cfo_hz):
        relay = _siso_relay()
        rng = np.random.default_rng(3)
        x = rng.normal(size=2500) + 1j * rng.normal(size=2500)
        one_shot = relay.process(x, cfo_hz=cfo_hz)
        chain = relay.make_siso_chain(cfo_hz=cfo_hz, block_size=512)
        chain.reset()
        assert _rms(_stream(chain, x, sizes), one_shot) <= 1e-8

    @settings(max_examples=10, deadline=None)
    @given(sizes=st.lists(st.sampled_from([1, 5, 17, 128, 311]),
                          min_size=1, max_size=4))
    def test_mimo_chain_any_chunking(self, sizes):
        relay = _mimo_relay()
        rng = np.random.default_rng(5)
        x = rng.normal(size=(2, 1800)) + 1j * rng.normal(size=(2, 1800))
        one_shot = relay.process_mimo(x, cfo_hz=700.0)
        chain = relay.make_mimo_chain(cfo_hz=700.0, block_size=256)
        chain.reset()
        assert _rms(_stream(chain, x, sizes), one_shot) <= 1e-8

    def test_long_ppdu_prime_blocks(self):
        # A frame-sized stream pumped in prime-length blocks.
        relay = _siso_relay()
        rng = np.random.default_rng(9)
        x = rng.normal(size=16000) + 1j * rng.normal(size=16000)
        one_shot = relay.process(x, cfo_hz=1250.0)
        chain = relay.make_siso_chain(cfo_hz=1250.0)
        chain.reset()
        assert _rms(_stream(chain, x, [101, 1, 499, 7]), one_shot) <= 1e-8

    def test_reset_makes_chain_reusable(self):
        relay = _siso_relay()
        rng = np.random.default_rng(13)
        x = rng.normal(size=3000) + 1j * rng.normal(size=3000)
        chain = relay.make_siso_chain(cfo_hz=950.0)
        chain.reset()
        first = _stream(chain, x, [64])
        chain.reset()
        second = _stream(chain, x, [251])
        assert _rms(first, second) <= 1e-12

    def test_cfo_stages_roundtrip_phase_continuously(self):
        restorer = CfoRestorer(1500.0, FS)
        chain = Chain([CfoCorrectStage(restorer), CfoRestoreStage(restorer)])
        rng = np.random.default_rng(17)
        x = rng.normal(size=900) + 1j * rng.normal(size=900)
        chain.reset()
        out = _stream(chain, x, [37, 5])
        # correct then restore with a shared oscillator is the identity
        assert _rms(out, x) <= 1e-12


class TestFrequencyResponseStage:
    def test_preserves_length_and_reports_latency(self):
        stage = FrequencyResponseStage(
            lambda f: np.exp(-2j * np.pi * f * 25e-9), FS, block_size=256)
        rng = np.random.default_rng(19)
        x = rng.normal(size=1111) + 1j * rng.normal(size=1111)
        out = stage.run(x)
        assert out.shape == x.shape
        assert stage.latency_samples > 0

    def test_flat_response_is_near_identity_in_band(self):
        stage = FrequencyResponseStage(
            lambda f: np.ones_like(np.asarray(f, dtype=float), dtype=complex),
            FS)
        rng = np.random.default_rng(23)
        # In-band tone: flat response with band-edge window passes it.
        n = np.arange(4096)
        x = np.exp(2j * np.pi * 2e6 * n / FS)
        out = stage.run(x)
        mid = slice(600, 3400)
        assert _rms(out[mid], x[mid]) <= 1e-3

    def test_rejects_wrong_rank(self):
        stage = FrequencyResponseStage(lambda f: np.ones(np.size(f)), FS)
        with pytest.raises(ValueError):
            stage.process_block(np.zeros((2, 2, 2), dtype=complex))


class _TrippingStage(Stage):
    """Raises on the Nth processed block while armed; counts resets."""

    def __init__(self, trip_on=2):
        self.name = "tripwire"
        self.trip_on = trip_on
        self.armed = False
        self.calls = 0
        self.resets = 0

    def reset(self):
        self.resets += 1
        self.calls = 0

    def process_block(self, x):
        self.calls += 1
        if self.armed and self.calls >= self.trip_on:
            raise RuntimeError("injected mid-chain failure")
        return x


class TestChainFailureRecovery:
    """A chain must be fully reusable after a mid-chain stage raises."""

    def _chain(self, trip_on=2):
        tripwire = _TrippingStage(trip_on)
        stage = FrequencyResponseStage(
            lambda f: np.exp(-2j * np.pi * f * 50e-9), FS, block_size=256)
        return Chain([stage, tripwire, GainStage(3.0)]), tripwire

    def test_reset_after_midchain_raise_restores_output(self):
        chain, tripwire = self._chain(trip_on=2)
        rng = np.random.default_rng(29)
        x = rng.normal(size=1500) + 1j * rng.normal(size=1500)
        chain.reset()
        reference = _stream(chain, x, [1500])

        chain.reset()
        tripwire.armed = True
        with pytest.raises(RuntimeError, match="injected"):
            for block in _chunks(x, [300]):     # trips on second block
                chain.process_block(block)

        tripwire.armed = False
        chain.reset()                           # must clear stale state
        again = _stream(chain, x, [1500])
        assert _rms(again, reference) <= 1e-12

    def test_reset_reaches_every_stage_past_the_failure(self):
        chain, tripwire = self._chain(trip_on=1)
        tripwire.armed = True
        with pytest.raises(RuntimeError):
            chain.process_block(np.ones(64, dtype=complex))
        resets_before = tripwire.resets
        chain.reset()
        assert tripwire.resets == resets_before + 1

    def test_flush_after_failed_run_does_not_leak_old_samples(self):
        chain, tripwire = self._chain(trip_on=2)
        rng = np.random.default_rng(31)
        x = rng.normal(size=600) + 1j * rng.normal(size=600)
        chain.reset()
        tripwire.armed = True
        with pytest.raises(RuntimeError):
            for block in _chunks(x, [300]):
                chain.process_block(block)
        tripwire.armed = False
        chain.reset()
        # A pristine chain flushes to (at most) pure zeros — any energy
        # here is state leaked from the failed run.
        tail = chain.flush()
        assert np.all(tail == 0)

    def test_interrupted_chain_is_reusable_for_new_stream(self):
        chain, tripwire = self._chain(trip_on=3)
        rng = np.random.default_rng(37)
        a = rng.normal(size=900) + 1j * rng.normal(size=900)
        b = rng.normal(size=900) + 1j * rng.normal(size=900)
        chain.reset()
        ref_b = _stream(chain, b, [900])
        chain.reset()
        tripwire.armed = True
        with pytest.raises(RuntimeError):
            for block in _chunks(a, [300]):
                chain.process_block(block)
        tripwire.armed = False
        chain.reset()
        assert _rms(_stream(chain, b, [900]), ref_b) <= 1e-12
