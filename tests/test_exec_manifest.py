"""Checkpoint/resume: sweep manifests and interrupted-sweep recovery."""

import json
import os

import numpy as np
import pytest

from repro.exec import (
    ResultCache,
    SweepManifest,
    Task,
    last_sweep_stats,
    run_sweep,
    sweep_id,
    task_fn,
)


@pytest.fixture(autouse=True)
def _no_env_cache(monkeypatch):
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.delenv("REPRO_BACKEND", raising=False)


@task_fn("test.manifest.draw", version="1")
def _draw(n, rng=None):
    return {"v": rng.standard_normal(n)}


@task_fn("test.manifest.interrupt", version="1")
def _maybe_interrupt(i, arm, log, rng=None):
    # Count every execution (append-per-run), then simulate the user's
    # Ctrl-C landing while task ``i == trip`` is running: the arm file
    # exists only on the first pass, so the resume run sails through.
    with open(os.path.join(log, f"ran-{i}"), "a") as fh:
        fh.write("x")
    if os.path.exists(arm) and i == 5:
        raise KeyboardInterrupt
    return {"i": i}


def _tasks(count=8):
    return [Task("test.manifest.draw", {"n": 5}, seed=i)
            for i in range(count)]


class TestManifestFile:
    def test_records_survive_reopen(self, tmp_path):
        keys = [t.cache_key() for t in _tasks()]
        path = tmp_path / "m.jsonl"
        with SweepManifest.open(path, keys) as m:
            m.record(0, keys[0])
            m.record(3, keys[3])
        with SweepManifest.open(path, keys) as m:
            assert m.completed == {0: keys[0], 3: keys[3]}

    def test_different_sweep_restarts(self, tmp_path):
        keys_a = [t.cache_key() for t in _tasks(4)]
        keys_b = [t.cache_key() for t in _tasks(5)]
        path = tmp_path / "m.jsonl"
        with SweepManifest.open(path, keys_a) as m:
            m.record(1, keys_a[1])
        with SweepManifest.open(path, keys_b) as m:
            assert m.completed == {}
        header = json.loads(path.read_text().splitlines()[0])
        assert header["sweep"] == sweep_id(keys_b)

    def test_half_written_tail_ignored(self, tmp_path):
        keys = [t.cache_key() for t in _tasks(4)]
        path = tmp_path / "m.jsonl"
        with SweepManifest.open(path, keys) as m:
            m.record(0, keys[0])
            m.record(1, keys[1])
        with open(path, "a") as fh:
            fh.write('{"i": 2, "ke')           # the kill mid-write
        with SweepManifest.open(path, keys) as m:
            assert m.completed == {0: keys[0], 1: keys[1]}

    def test_duplicate_record_ignored(self, tmp_path):
        keys = [t.cache_key() for t in _tasks(2)]
        path = tmp_path / "m.jsonl"
        with SweepManifest.open(path, keys) as m:
            m.record(0, keys[0])
            m.record(0, keys[0])
        assert len(path.read_text().splitlines()) == 2   # header + 1


class TestResume:
    def test_full_resume_skips_execution(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        manifest = tmp_path / "m.jsonl"
        tasks = _tasks()
        first = run_sweep(tasks, cache=cache, checkpoint=manifest)
        again = run_sweep(tasks, cache=cache, checkpoint=manifest)
        assert again.stats.executed == 0
        assert again.stats.resumed == len(tasks)
        for a, b in zip(first.results, again.results):
            assert np.array_equal(a["v"], b["v"])

    def test_resume_after_kill_is_identical(self, tmp_path):
        # Simulate a sweep killed mid-flight: keep only a prefix of the
        # manifest, then rerun — output must be bit-identical.
        cache = ResultCache(tmp_path / "c")
        manifest = tmp_path / "m.jsonl"
        tasks = _tasks()
        first = run_sweep(tasks, cache=cache, checkpoint=manifest)

        lines = manifest.read_text().splitlines()
        manifest.write_text("\n".join(lines[:4]) + "\n")   # header + 3

        again = run_sweep(tasks, cache=ResultCache(tmp_path / "c"),
                          checkpoint=manifest)
        assert again.stats.resumed == 3
        for a, b in zip(first.results, again.results):
            assert np.array_equal(a["v"], b["v"])

    def test_resume_with_lost_cache_entry_reruns(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        manifest = tmp_path / "m.jsonl"
        tasks = _tasks(4)
        first = run_sweep(tasks, cache=cache, checkpoint=manifest)
        # Drop one cached result: the manifest says done, the cache
        # disagrees — the task must re-run, not return garbage.
        cache._path(tasks[2].cache_key()).unlink()
        again = run_sweep(tasks, cache=ResultCache(tmp_path / "c"),
                          checkpoint=manifest)
        assert again.stats.executed == 1
        for a, b in zip(first.results, again.results):
            assert np.array_equal(a["v"], b["v"])

    def test_checkpoint_implies_cache(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        out = run_sweep(_tasks(3), checkpoint=tmp_path / "m.jsonl")
        assert out.stats.cache is not None
        assert (tmp_path / ".repro-cache").is_dir()


class TestKeyboardInterrupt:
    """Ctrl-C mid-sweep must leave a resumable checkpoint behind."""

    @staticmethod
    def _interrupt_tasks(tmp_path, count=8):
        log = tmp_path / "log"
        log.mkdir(exist_ok=True)
        arm = tmp_path / "arm"
        return [Task("test.manifest.interrupt",
                     {"i": i, "arm": str(arm), "log": str(log)}, seed=i)
                for i in range(count)], arm, log

    @staticmethod
    def _manifest_indices(path):
        lines = path.read_text().splitlines()[1:]          # skip header
        return {json.loads(line)["i"] for line in lines}

    def test_serial_interrupt_then_resume_no_recompute(self, tmp_path):
        tasks, arm, log = self._interrupt_tasks(tmp_path)
        arm.touch()
        cache = ResultCache(tmp_path / "c")
        manifest = tmp_path / "m.jsonl"
        with pytest.raises(KeyboardInterrupt):
            run_sweep(tasks, cache=cache, checkpoint=manifest)
        # Tasks 0-4 finished before the interrupt; each is durably on
        # the manifest even though the sweep died, and the trip task is
        # not (it never completed).
        assert self._manifest_indices(manifest) == {0, 1, 2, 3, 4}
        arm.unlink()
        again = run_sweep(tasks, cache=ResultCache(tmp_path / "c"),
                          checkpoint=manifest)
        assert again.stats.resumed == 5
        assert again.stats.executed == 3
        assert [r["i"] for r in again.results] == list(range(8))
        # Checkpointed tasks ran exactly once across both sweeps.
        for i in range(5):
            assert (log / f"ran-{i}").read_text() == "x"

    def test_thread_interrupt_salvages_inflight_results(self, tmp_path,
                                                        monkeypatch):
        # The interrupt lands in the dispatcher's wait(); completed
        # in-flight futures must still be banked to cache + manifest
        # before it propagates.
        from repro.exec import executor as executor_mod

        real_wait = executor_mod.wait
        calls = {"n": 0}

        def tripping_wait(fs, timeout=None, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                real_wait(fs, timeout=30)     # let the pool finish first
                raise KeyboardInterrupt
            return real_wait(fs, timeout=timeout, **kwargs)

        monkeypatch.setattr(executor_mod, "wait", tripping_wait)
        tasks = _tasks()
        cache = ResultCache(tmp_path / "c")
        manifest = tmp_path / "m.jsonl"
        with pytest.raises(KeyboardInterrupt):
            run_sweep(tasks, jobs=2, backend="thread", chunk_size=1,
                      cache=cache, checkpoint=manifest)
        stats = last_sweep_stats()
        assert stats.interrupted is True
        # Every future had completed by the time the interrupt landed,
        # so the salvage pass banks all of them.
        assert self._manifest_indices(manifest) == set(range(len(tasks)))
        monkeypatch.setattr(executor_mod, "wait", real_wait)
        again = run_sweep(tasks, jobs=2, backend="thread", chunk_size=1,
                          cache=ResultCache(tmp_path / "c"),
                          checkpoint=manifest)
        assert again.stats.executed == 0
        assert again.stats.resumed == len(tasks)

    def test_clean_sweep_not_marked_interrupted(self, tmp_path):
        run_sweep(_tasks(3), cache=ResultCache(tmp_path / "c"),
                  checkpoint=tmp_path / "m.jsonl")
        assert last_sweep_stats().interrupted is False


class TestTornTails:
    def test_truncated_lines_counted(self, tmp_path):
        keys = [t.cache_key() for t in _tasks(4)]
        path = tmp_path / "m.jsonl"
        with SweepManifest.open(path, keys) as m:
            m.record(0, keys[0])
            m.record(1, keys[1])
        with open(path, "a") as fh:
            fh.write('{"i": 2, "ke')
        with SweepManifest.open(path, keys) as m:
            assert m.completed == {0: keys[0], 1: keys[1]}
            assert m.truncated_lines == 1

    def test_truncation_counter_emitted(self, tmp_path):
        from repro.telemetry.collector import (
            TelemetryCollector,
            use_collector,
        )

        keys = [t.cache_key() for t in _tasks(3)]
        path = tmp_path / "m.jsonl"
        with SweepManifest.open(path, keys) as m:
            m.record(0, keys[0])
        with open(path, "a") as fh:
            fh.write('{"i": 1')
        tel = TelemetryCollector()
        with use_collector(tel):
            with SweepManifest.open(path, keys):
                pass
        counts = tel.metrics.counter_values("exec.manifest.truncated")
        assert sum(counts.values()) == 1

    def test_tail_torn_inside_multibyte_char(self, tmp_path):
        # A kill can cut a UTF-8 sequence in half; the resume must not
        # die on the decode.
        keys = [t.cache_key() for t in _tasks(2)]
        path = tmp_path / "m.jsonl"
        with SweepManifest.open(path, keys) as m:
            m.record(0, keys[0])
        with open(path, "ab") as fh:
            fh.write('{"i": 1, "key": "é'.encode()[:-1])
        with SweepManifest.open(path, keys) as m:
            assert m.completed == {0: keys[0]}
            assert m.truncated_lines == 1

    def test_clean_manifest_reports_zero_truncated(self, tmp_path):
        keys = [t.cache_key() for t in _tasks(2)]
        path = tmp_path / "m.jsonl"
        with SweepManifest.open(path, keys) as m:
            m.record(0, keys[0])
        with SweepManifest.open(path, keys) as m:
            assert m.truncated_lines == 0
