"""Fractional-delay filters: accuracy vs taps (the §3.4 motivation)."""

import numpy as np
import pytest

from repro.dsp import (
    apply_fractional_delay,
    lagrange_fractional_delay_taps,
    sinc_fractional_delay_taps,
)
from repro.dsp.fir import fir_frequency_response
from repro.utils import make_rng, signal_power


def _bandlimited(n, rng, frac=0.6):
    x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    spec = np.fft.fft(x)
    f = np.fft.fftfreq(n)
    spec[np.abs(f) > frac / 2] = 0
    return np.fft.ifft(spec)


class TestSincDesign:
    def test_integer_delay_is_exact(self):
        taps = sinc_fractional_delay_taps(4.0, 9, window=None)
        expected = np.zeros(9)
        expected[4] = 1.0
        assert np.allclose(taps, expected, atol=1e-12)

    def test_group_delay_matches_target(self):
        taps = sinc_fractional_delay_taps(8.3, 17)
        freqs = np.linspace(-0.2, 0.2, 51)
        h = fir_frequency_response(taps, freqs)
        phase_slope = np.polyfit(freqs, np.unwrap(np.angle(h)), 1)[0]
        delay = -phase_slope / (2 * np.pi)
        assert delay == pytest.approx(8.3, abs=0.05)

    def test_more_taps_more_accuracy(self):
        freqs = np.linspace(-0.3, 0.3, 101)
        target = np.exp(-2j * np.pi * freqs * 0.5)
        errors = []
        for n in (5, 11, 31):
            taps = sinc_fractional_delay_taps(n // 2 + 0.5, n)
            h = fir_frequency_response(taps, freqs)
            # Compensate the integer centring delay.
            h = h * np.exp(2j * np.pi * freqs * (n // 2))
            errors.append(np.abs(h - target).max())
        assert errors[0] > errors[1] > errors[2]

    def test_unknown_window_rejected(self):
        with pytest.raises(ValueError):
            sinc_fractional_delay_taps(1.5, 9, window="kaiser-nope")


class TestLagrangeDesign:
    def test_taps_sum_to_one(self):
        taps = lagrange_fractional_delay_taps(1.3, 3)
        assert taps.sum() == pytest.approx(1.0)

    def test_first_order_is_linear_interp(self):
        taps = lagrange_fractional_delay_taps(0.25, 1)
        assert np.allclose(taps, [0.75, 0.25])

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            lagrange_fractional_delay_taps(0.5, 0)


class TestApplyFractionalDelay:
    def test_delays_bandlimited_signal(self):
        rng = make_rng(0)
        x = _bandlimited(256, rng)
        y = apply_fractional_delay(x, 5.0)
        # Compare interior, away from filter edges.
        assert np.allclose(y[40:200], x[35:195], atol=1e-3)

    def test_energy_approximately_preserved(self):
        rng = make_rng(1)
        x = _bandlimited(512, rng)
        y = apply_fractional_delay(x, 2.5)
        assert signal_power(y[50:450]) == pytest.approx(
            signal_power(x[50:450]), rel=0.05)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            apply_fractional_delay(np.ones(8, dtype=complex), -1.0)

    def test_half_sample_delay_phase(self):
        # A delayed tone must be rotated by exp(-j pi f) at tone freq.
        n = np.arange(512)
        f0 = 0.1
        x = np.exp(2j * np.pi * f0 * n)
        y = apply_fractional_delay(x, 0.5, num_taps=65)
        ratio = y[100] / x[100]
        assert np.angle(ratio) == pytest.approx(-2 * np.pi * f0 * 0.5, abs=0.02)
