"""Property-based tests (hypothesis) on the DRR dispatcher invariants.

The scheduler is exercised against randomly generated arrival/dispatch
interleavings with a duck-typed stub chain pool (no DSP cost), so
hypothesis can run hundreds of cases.  Invariants:

* queue depth never exceeds the per-tenant high-water mark — at any
  instant, not just at the end;
* frames are never reordered within a session — PROCESSED events for
  one session carry strictly increasing frame indices;
* frames are conserved — every offered frame is rejected, processed,
  shed, or still queued; after a flush nothing is queued.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import (
    ClientSession,
    FrameEventKind,
    SchedulerPolicy,
    ServiceScheduler,
    TrafficConfig,
)


class _StubEntry:
    def __init__(self, key):
        self.key = key
        self.relaying = True
        self.frames = 0

    def advance(self, now_s):
        pass

    def process(self, frame):
        self.frames += 1


class _StubPool:
    def __init__(self):
        self._entries = {}

    def entry(self, key="default"):
        return self._entries.setdefault(key, _StubEntry(key))

    def entries(self):
        return list(self._entries.values())

    def attach_storm(self, storm):
        pass


#: One step of a random schedule: either offer the next frame of
#: session ``s`` (op 0..n_sessions-1) or dispatch with a small budget
#: (op >= n_sessions, budget = op - n_sessions + 1).
def _schedules(n_sessions, max_ops=120):
    return st.lists(st.integers(0, n_sessions + 5),
                    min_size=1, max_size=max_ops)


def _build(n_sessions, high_water, quantum):
    sched = ServiceScheduler(
        policy=SchedulerPolicy(queue_high_water=high_water,
                               quantum_samples=quantum),
        pool=_StubPool(), record_processed_events=True)
    sessions = []
    for i in range(n_sessions):
        session = ClientSession(
            f"s{i}", tenant=f"t{i % 2}",
            traffic=TrafficConfig(frame_samples=8), seed=i)
        sched.admit_session(session, 0.0)
        session.activate(0.0)
        sessions.append(session)
    return sched, sessions


class TestDispatcherInvariants:
    @settings(max_examples=60, deadline=None)
    @given(ops=_schedules(3), high_water=st.integers(1, 12),
           quantum=st.integers(1, 64))
    def test_queue_bound_never_exceeded(self, ops, high_water, quantum):
        sched, sessions = _build(3, high_water, quantum)
        cursors = [0] * len(sessions)
        for step, op in enumerate(ops):
            now = step * 0.01
            if op < len(sessions):
                sched.offer(now, sessions[op], cursors[op])
                cursors[op] += 1
            else:
                sched.dispatch(now, max_frames=op - len(sessions) + 1)
            for tenant in sched.tenant_names():
                assert sched.queue_depth(tenant) <= high_water

    @settings(max_examples=60, deadline=None)
    @given(ops=_schedules(4), high_water=st.integers(1, 16),
           quantum=st.integers(1, 64))
    def test_no_reordering_within_a_session(self, ops, high_water,
                                            quantum):
        sched, sessions = _build(4, high_water, quantum)
        cursors = [0] * len(sessions)
        for step, op in enumerate(ops):
            now = step * 0.01
            if op < len(sessions):
                sched.offer(now, sessions[op], cursors[op])
                cursors[op] += 1
            else:
                sched.dispatch(now, max_frames=op - len(sessions) + 1)
        sched.dispatch(len(ops) * 0.01)             # final full drain
        processed = {}
        for event in sched.events:
            if event.kind is FrameEventKind.PROCESSED:
                processed.setdefault(event.session_id, []).append(
                    event.index)
        for indices in processed.values():
            assert indices == sorted(indices)
            assert len(set(indices)) == len(indices)

    @settings(max_examples=60, deadline=None)
    @given(ops=_schedules(3), high_water=st.integers(1, 12),
           quantum=st.integers(1, 64))
    def test_frames_conserved_at_every_step(self, ops, high_water,
                                            quantum):
        sched, sessions = _build(3, high_water, quantum)
        cursors = [0] * len(sessions)
        for step, op in enumerate(ops):
            now = step * 0.01
            if op < len(sessions):
                sched.offer(now, sessions[op], cursors[op])
                cursors[op] += 1
            else:
                sched.dispatch(now, max_frames=op - len(sessions) + 1)
            sched.check_conservation()              # at EVERY step
        sched.flush(len(ops) * 0.01)
        sched.check_conservation()
        assert sched.queue_depth() == 0
        # Terminal ledger: nothing unresolved anywhere.
        assert sched.admitted == sched.processed + sched.shed
        for session in sessions:
            assert session.unresolved == 0

    @settings(max_examples=30, deadline=None)
    @given(ops=_schedules(3), budget=st.integers(1, 8))
    def test_dispatch_never_serves_more_than_budget(self, ops, budget):
        sched, sessions = _build(3, 32, 16)
        cursors = [0] * len(sessions)
        for step, op in enumerate(ops):
            now = step * 0.01
            if op < len(sessions):
                sched.offer(now, sessions[op], cursors[op])
                cursors[op] += 1
        served = sched.dispatch(1.0, max_frames=budget)
        assert served <= budget

    @settings(max_examples=30, deadline=None)
    @given(ops=_schedules(2, max_ops=60))
    def test_event_log_replays_identically(self, ops):
        def run():
            sched, sessions = _build(2, 8, 16)
            cursors = [0, 0]
            for step, op in enumerate(ops):
                now = step * 0.01
                if op < 2:
                    sched.offer(now, sessions[op], cursors[op])
                    cursors[op] += 1
                else:
                    sched.dispatch(now, max_frames=op - 1)
            sched.flush(len(ops) * 0.01)
            return sched.event_digest()

        assert run() == run()
