"""District generation: seeded tiling, geometry, and the link budget."""

import numpy as np
import pytest

from repro.channel.floorplan import fig1_home
from repro.fleet import District, DistrictConfig


def _district(**kwargs):
    defaults = {"rows": 3, "cols": 3, "clients_per_home": 4, "seed": 7}
    defaults.update(kwargs)
    return District(DistrictConfig(**defaults))


class TestDistrictConfig:
    def test_counts(self):
        cfg = DistrictConfig(rows=3, cols=5, clients_per_home=2)
        assert cfg.num_homes == 15
        assert cfg.num_clients == 30

    @pytest.mark.parametrize("bad", [
        {"rows": 0}, {"cols": 0}, {"clients_per_home": 0},
        {"max_candidate_relays": 0},
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            DistrictConfig(**bad)


class TestGeneration:
    def test_shapes(self):
        d = _district()
        assert d.num_relays == 9
        assert d.num_clients == 36
        assert d.client_positions.shape == (36, 2)
        assert d.relay_positions().shape == (9, 2)
        assert d.ap_positions().shape == (9, 2)

    def test_deterministic(self):
        a = _district()
        b = _district()
        assert np.array_equal(a.client_positions, b.client_positions)
        assert a.homes == b.homes

    def test_seed_changes_layout(self):
        a = _district(seed=7)
        b = _district(seed=8)
        assert not np.array_equal(a.client_positions, b.client_positions)

    def test_homes_differ_from_each_other(self):
        # Per-home jitter: no two homes place AP and relay identically
        # relative to their own tile origin.
        d = _district()
        rel = {(round(h.relay[0] - h.origin[0], 6),
                round(h.relay[1] - h.origin[1], 6)) for h in d.homes}
        assert len(rel) == d.num_relays

    def test_clients_inside_their_home_tile(self):
        d = _district()
        plan, _, _ = fig1_home()
        for pos, home in zip(d.client_positions, d.client_home):
            origin = np.asarray(d.homes[home].origin)
            local = pos - origin
            assert 0.0 < local[0] < plan.width_m
            assert 0.0 < local[1] < plan.depth_m

    def test_district_extent(self):
        d = _district(rows=2, cols=4)
        plan, _, _ = fig1_home()
        assert d.width_m == pytest.approx(4 * plan.width_m)
        assert d.depth_m == pytest.approx(2 * plan.depth_m)


class TestLinkBudget:
    def test_wall_losses_nonnegative_and_symmetric(self):
        d = _district()
        p = d.ap_positions()[:4]
        q = d.client_positions[:4]
        fwd = d.wall_losses_db(p, q)
        rev = d.wall_losses_db(q, p)
        assert np.all(fwd >= 0.0)
        assert np.allclose(fwd, rev)

    def test_cross_district_ray_crosses_walls(self):
        # A ray from one corner home to the opposite corner must pierce
        # multiple exterior walls; a ray within one open region may not.
        d = _district()
        far = d.wall_losses_db(d.relay_positions()[:1],
                               d.relay_positions()[-1:])
        assert far[0] >= 12.0       # at least an exterior wall's worth

    def test_path_loss_grows_with_distance(self):
        d = _district()
        p = np.array([[1.0, 1.0], [1.0, 1.0]])
        q = np.array([[2.0, 1.0], [6.0, 1.0]])
        losses = d.path_loss_db(p, q)
        assert losses[1] > losses[0]

    def test_snr_uses_tx_power(self):
        d = _district()
        p, q = d.ap_positions()[:1], d.client_positions[:1]
        base = d.snr_db(p, q)
        hot = d.snr_db(p, q, tx_power_dbm=d.config.tx_power_dbm + 10.0)
        assert hot[0] == pytest.approx(base[0] + 10.0)

    def test_chunked_matches_unchunked(self):
        # The chunk loop must be invisible: one big batch equals
        # many small ones.
        d = _district()
        p = np.repeat(d.ap_positions(), 4, axis=0)
        q = d.client_positions
        whole = d.wall_losses_db(p, q)
        parts = np.concatenate([d.wall_losses_db(p[i:i + 5], q[i:i + 5])
                                for i in range(0, len(p), 5)])
        assert np.array_equal(whole, parts)


class TestCandidates:
    def test_home_relay_always_candidate(self):
        d = _district()
        for c in range(d.num_clients):
            assert int(d.client_home[c]) in d.candidate_relays(c)

    def test_candidate_count_capped(self):
        d = _district()
        for c in range(d.num_clients):
            cands = d.candidate_relays(c)
            assert 1 <= len(cands) <= d.config.max_candidate_relays
            assert len(set(cands)) == len(cands)

    def test_radius_excludes_far_relays(self):
        d = _district(rows=1, cols=4)
        cfg = d.config
        relays = d.relay_positions()
        for c in range(d.num_clients):
            pos = d.client_positions[c]
            home = int(d.client_home[c])
            for r in d.candidate_relays(c):
                if r != home:
                    assert np.linalg.norm(relays[r] - pos) \
                        <= cfg.neighbor_radius_m
