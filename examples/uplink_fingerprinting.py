#!/usr/bin/env python3
"""Uplink sender identification from STF channel fingerprints (§6.1).

Clients cannot be modified, so the relay names an uplink transmitter by
how the known STF arrives transformed by that client's channel.  This
example enrolls four clients in the Fig. 1 home, fires noisy packets
from each, and prints the confusion matrix plus false-positive /
false-negative rates for the aggressive and passive thresholds
(paper Fig. 21).

Run:  python examples/uplink_fingerprinting.py
"""

import numpy as np

from repro.channel import PropagationModel, fig1_home
from repro.ident import (
    AGGRESSIVE_THRESHOLD,
    ChannelFingerprinter,
    PASSIVE_THRESHOLD,
)
from repro.phy.params import WIFI_20MHZ
from repro.phy.preamble import stf_time_symbol, stf_tone_indices
from repro.utils import make_rng


def stf_through_channel(h_used, params):
    """One received STF period after the client->relay channel."""
    stf = stf_time_symbol(params)
    used = list(params.used_subcarriers())
    grid = np.fft.fft(np.tile(stf, 4))
    h_full = np.ones(params.fft_size, dtype=complex)
    for tone in stf_tone_indices(params):
        h_full[tone % params.fft_size] = h_used[used.index(tone)]
    return np.fft.ifft(grid * h_full)[:16]


def run_threshold(threshold, name, channels, params, rng,
                  packets_per_client=200, noise=0.1, drift=0.18):
    finger = ChannelFingerprinter(params, threshold=threshold)
    used = params.used_subcarriers()
    for cid, h in channels.items():
        finger.enroll(cid, h, used)

    confusion = {c: {d: 0 for d in list(channels) + [None]}
                 for c in channels}
    for cid, h in channels.items():
        for _ in range(packets_per_client):
            # Per-tone channel drift since enrollment, plus receiver
            # noise on the measurement.
            wobble = h * (1.0 + drift / np.sqrt(2.0) * (
                rng.standard_normal(h.size)
                + 1j * rng.standard_normal(h.size)))
            wobble = wobble + noise * (rng.standard_normal(h.size)
                                       + 1j * rng.standard_normal(h.size))
            decision = finger.identify(stf_through_channel(wobble, params))
            confusion[cid][decision.client_id] += 1

    total = packets_per_client * len(channels)
    fp = sum(confusion[c][d] for c in channels for d in channels if d != c)
    fn = sum(confusion[c][None] for c in channels)
    print(f"\n--- {name} threshold ({threshold}) ---")
    header = "true\\named " + " ".join(f"{d!s:>7}" for d in
                                       list(channels) + ["none"])
    print(header)
    for c in channels:
        row = " ".join(f"{confusion[c][d]:7d}" for d in
                       list(channels) + [None])
        print(f"{c!s:>10} {row}")
    print(f"false positive rate: {fp / total:.3%}   "
          f"false negative rate: {fn / total:.3%}")
    return fp / total, fn / total


def main():
    plan, ap, relay_pos = fig1_home()
    propagation = PropagationModel(plan)
    params = WIFI_20MHZ
    rng = make_rng(3)

    spots = [np.array(p) for p in ((2.0, 5.5), (7.5, 6.0), (8.0, 1.5),
                                   (3.5, 2.0))]
    channels = {}
    used = params.used_subcarriers()
    for i, spot in enumerate(spots):
        h = propagation.siso_channel(spot, relay_pos,
                                     params.sample_period_s, num_taps=4,
                                     rng=rng).frequency_response(used, 64)
        h = h / np.sqrt(np.mean(np.abs(h) ** 2))
        channels[f"client{i}"] = h
        print(f"client{i} at {spot} enrolled")

    fp_a, fn_a = run_threshold(AGGRESSIVE_THRESHOLD, "aggressive",
                               channels, params, rng)
    fp_p, fn_p = run_threshold(PASSIVE_THRESHOLD, "passive",
                               channels, params, rng)

    print("\nThe paper deploys the AGGRESSIVE threshold: a false negative "
          "only skips constructive relaying for one packet, while a false "
          "positive applies the wrong filter and can hurt SNR (§6).")
    print(f"aggressive: FP {fp_a:.2%} / FN {fn_a:.2%}    "
          f"passive: FP {fp_p:.2%} / FN {fn_p:.2%}")


if __name__ == "__main__":
    main()
