#!/usr/bin/env python3
"""Link health: probes localizing a drifting analog stage.

Two relay arms process the same reference frame.  Arm A is healthy.
In arm B the analog CNF line's tap settings drift (a
:class:`repro.faults.TapDriftStage` spliced *between* the CNF filter
and the amplifier — temperature wander on the board, invisible to any
scalar counter).  The IQ tap probes tell the arms apart *and point at
the stage*: in arm B the ``post-cnf`` tap still reads healthy while
``post-amplification`` — the first tap downstream of the drifting
element — shows the EVM hit.

Run:  python examples/link_health_demo.py
"""

import numpy as np

from repro.core import FastForwardRelay, RelayConfig
from repro.faults import FaultSchedule, TapDriftStage
from repro.netsim import Testbed, paper_scenarios
from repro.probes import ALWAYS, ProbeSet, make_reference_frame
from repro.runtime import Chain


def probe_run(chain, probes, frame, params):
    """Run one frame through an instrumented copy of ``chain``."""
    probed = probes.instrument(chain, sample_rate_hz=params.bandwidth_hz)
    probed.reset()
    probed.run(frame.iq)
    return probes.summary()


def main():
    testbed = Testbed(paper_scenarios()[0], seed=5)
    params = testbed.params
    rng = np.random.default_rng(42)
    client = testbed.client_positions(1, rng=rng)[0]

    cfg = RelayConfig(params=params, use_decomposition=False)
    relay = FastForwardRelay(cfg)
    relay.configure_siso_link(*testbed.siso_triple(client, rng))
    frame = make_reference_frame(params, n_symbols=24, rng=7)

    # Arm A: the healthy relay chain.
    healthy = relay.make_siso_chain()
    probes_a = ProbeSet(params, reference=frame, policy=ALWAYS,
                        budget=cfg.latency)
    summary_a = probe_run(healthy, probes_a, frame, params)

    # Arm B: identical chain, but the analog line drifts between the
    # CNF filter and the amplifier — downstream of the post-cnf tap,
    # upstream of the post-amplification tap.
    base = relay.make_siso_chain()
    drift = TapDriftStage(FaultSchedule(99), params.bandwidth_hz,
                          amp_sigma_db_per_sqrt_s=60.0,
                          phase_sigma_rad_per_sqrt_s=60.0)
    cnf_index = base.labels.index("cnf-filter")
    stages = list(base.stages)
    stages.insert(cnf_index + 1, drift)
    drifty = Chain(stages, name="drifty-relay")
    probes_b = ProbeSet(params, reference=frame, policy=ALWAYS,
                        budget=cfg.latency)
    summary_b = probe_run(drifty, probes_b, frame, params)

    sites = ("post-si-cancellation", "post-cnf", "post-amplification")
    print("per-site EVM (dB): healthy arm vs drifting-analog-line arm\n")
    print(f"  {'tap site':<24} {'healthy':>9} {'drifting':>9} {'delta':>8}")
    degraded = []
    for site in sites:
        a = summary_a[f"{site}.evm_rms_db"]
        b = summary_b[f"{site}.evm_rms_db"]
        flag = "  <- degradation enters here" if b - a > 3.0 else ""
        if b - a > 3.0:
            degraded.append(site)
        print(f"  {site:<24} {a:9.2f} {b:9.2f} {b - a:+8.2f}{flag}")

    print(f"\n  latency ledger: {probes_b.latency.total_ns:.0f} ns of "
          f"{probes_b.latency.cp_ns:.0f} ns CP "
          f"(margin {probes_b.latency.margin_ns:+.0f} ns)")

    # The probes must localize the fault: everything upstream of the
    # drifting element reads healthy, the first tap downstream does not.
    assert degraded == ["post-amplification"], degraded
    print("\n  probes localize the drift to the analog line after the "
          "CNF filter: OK")


if __name__ == "__main__":
    main()
