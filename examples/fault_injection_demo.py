#!/usr/bin/env python3
"""The self-healing relay under fire, sample by sample.

Two live-fault scenarios on real IQ streams through the full relay
chain, with the supervisor's typed event log narrating the response:

* **Scenario A — SI-channel jump.**  Someone walks past the relay's
  antennas mid-stream: the tuned cancellation is suddenly 42 dB short
  and residual self-interference floods the forwarded signal.  The
  supervisor detects the rising residual and re-tunes (the paper's
  noise-injection tuner pass), restoring full-duplex operation within
  a few blocks.

* **Scenario B — sustained ADC clipping.**  A strong interferer drives
  the relay's converters into their rails and *stays there*.  No
  re-tune can fix physics, so the supervisor walks the rest of the
  ladder: gain backoff first, then graceful fallback to half-duplex
  (the relay mutes; clients keep the direct path) — and recovery the
  moment the interferer leaves.

Run:  python examples/fault_injection_demo.py
"""

import numpy as np

from repro.core import FastForwardRelay, RelayConfig
from repro.faults import AdcSaturationStage, FaultSchedule, ResidualSiStage
from repro.supervision import RelayHealthMonitor, RelaySupervisor, \
    SupervisorPolicy
from repro.utils import make_rng

FS = 20e6
BLOCK = 4096


def build_relay(seed=0):
    cfg = RelayConfig(use_decomposition=False)
    relay = FastForwardRelay(cfg)
    rng = make_rng(seed)
    n = len(cfg.params.used_subcarriers())

    def h(scale=1.0):
        return scale * (rng.standard_normal(n)
                        + 1j * rng.standard_normal(n)) / np.sqrt(2)

    relay.configure_siso_link(h(0.05), h(), h())
    return relay


def make_supervisor(retune=None):
    # Block-scale timing: at 4096 samples / 20 MHz each block is
    # ~205 us, so the holds below are a handful of blocks.
    policy = SupervisorPolicy(retune_backoff_s=4e-4,
                              escalation_hold_s=1e-4,
                              recovery_hold_s=5e-4,
                              max_gain_backoff_db=6.0)
    return RelaySupervisor(monitor=RelayHealthMonitor(alpha=1.0),
                           policy=policy, retune=retune)


def run_blocks(relay, sup, faults, make_block, num_blocks):
    states = []
    for i in range(num_blocks):
        relay.process(make_block(i), FS, faults=faults, supervisor=sup)
        states.append(sup.state.value)
    return states


def scenario_a():
    print("Scenario A: SI-channel jump -> detect -> re-tune -> resume")
    print("-" * 64)
    relay = build_relay()
    rng = make_rng(1)
    schedule = FaultSchedule(2014)
    si = ResidualSiStage(schedule, jump_rate_per_sample=0.0,
                         jump_residual_db=-8.0)
    sup = make_supervisor(retune=si.retune)

    def block(i):
        if i == 3:
            si._jumped = True          # the walker passes the antenna
            si.jump_count += 1
        return 0.05 * (rng.standard_normal(BLOCK)
                       + 1j * rng.standard_normal(BLOCK))

    states = run_blocks(relay, sup, [si], block, 8)
    print("  per-block state:", " ".join(states))
    print(sup.event_log() or "  (no events)")
    assert not si.jumped, "re-tune should have cleared the jump"
    print()


def scenario_b():
    print("Scenario B: sustained clipping -> gain backoff -> half-duplex"
          " -> recover")
    print("-" * 64)
    relay = build_relay()
    rng = make_rng(2)
    sup = make_supervisor()            # no re-tune can fix saturation

    def block(i):
        # Blocks 2..9: an interferer drives the input 26 dB hotter.
        scale = 1.0 if 2 <= i < 10 else 0.05
        return scale * (rng.standard_normal(BLOCK)
                        + 1j * rng.standard_normal(BLOCK))

    states = []
    for i in range(14):
        clip = AdcSaturationStage(full_scale=0.15)   # fresh counter per block
        y = relay.process(block(i), FS, faults=[clip], supervisor=sup)
        muted = " muted" if not np.any(y) else ""
        states.append(f"{sup.state.value}{muted}")
    print("  per-block state:", " | ".join(states))
    print(sup.event_log())
    assert any("half-duplex" in s for s in states), "ladder should bottom out"
    assert states[-1].startswith("active"), "relay should recover"
    print()


if __name__ == "__main__":
    scenario_a()
    scenario_b()
    print("Both scenarios survived: faults contained, service degraded "
          "gracefully, relay recovered.")
