#!/usr/bin/env python3
"""Dead-spot rescue, sample by sample.

The full Layer-1 story on real IQ waveforms: an AP transmits an actual
802.11-style PPDU, an edge client fails to decode it, and the
FastForward relay — receiving, filtering and re-transmitting the very
same samples — turns the dead spot into a working link.  No link-budget
shortcuts: the client runs the stock receiver chain (detection, CFO,
channel estimation, Viterbi) on the combined waveform.

Run:  python examples/deadspot_rescue.py
"""

import numpy as np

from repro.channel import PropagationModel, fig1_home
from repro.core import FastForwardRelay, RelayConfig
from repro.phy import Receiver, Transmitter, TxConfig, WIFI_20MHZ
from repro.utils import add_signals, awgn_like, make_rng


def decode(combined, rng, label):
    noisy = combined + awgn_like(combined, 1e-9, rng)  # -90 dBm floor
    result = Receiver(detection_threshold=0.7).receive(noisy)
    status = "DECODED" if result.success else f"FAILED ({result.failure_reason})"
    snr = (f"{result.snr_estimate_db:5.1f} dB"
           if np.isfinite(result.snr_estimate_db) else "   n/a")
    print(f"  {label:<28} {status:<30} est. SNR {snr}")
    return result


def main():
    plan, ap, relay_pos = fig1_home()
    propagation = PropagationModel(plan, rms_delay_spread_s=30e-9)
    client = np.array([7.8, 6.2])
    params = WIFI_20MHZ
    rng = make_rng(7)

    chan = lambda a, b, s: propagation.siso_channel(
        a, b, params.sample_period_s, num_taps=3, rng=make_rng(s))
    ch_sd, ch_sr, ch_rd = chan(ap, client, 11), chan(ap, relay_pos, 12), \
        chan(relay_pos, client, 13)

    # The AP's actual transmission: MCS1 (QPSK 1/2), 240 payload bits.
    tx = Transmitter(TxConfig(mcs_index=1, tx_power_dbm=20.0))
    bits = rng.integers(0, 2, 240)
    wave = tx.transmit(bits)[0] * 10.0  # scale to 20 dBm (sqrt-mW units)

    print(f"AP -> client at {client} (MCS 1, {bits.size} payload bits)\n")

    # --- attempt 1: direct only -------------------------------------------
    direct = ch_sd.apply_trimmed(wave)
    prefix = np.zeros(120, dtype=complex)
    decode(np.concatenate([prefix, direct]), rng, "direct only")

    # --- attempt 2: with the FF relay --------------------------------------
    used = params.used_subcarriers()
    relay = FastForwardRelay(RelayConfig(params=params))
    relay.configure_siso_link(ch_sd.frequency_response(used, 64),
                              ch_sr.frequency_response(used, 64),
                              ch_rd.frequency_response(used, 64))

    at_relay = ch_sr.apply_trimmed(wave)
    relayed = relay.process(at_relay)
    latency_samples = int(round(relay.latency_s() / params.sample_period_s))
    relayed = np.concatenate([np.zeros(latency_samples, dtype=complex),
                              relayed])
    combined = add_signals(direct, ch_rd.apply_trimmed(relayed))
    result = decode(np.concatenate([prefix, combined]), rng,
                    "direct + FF relay")
    if result.success:
        ok = np.array_equal(result.payload_bits, bits)
        print(f"\n  payload bit-exact: {ok}")
        print(f"  relay amplification: {relay.amplification_db:.0f} dB, "
              f"latency {relay.latency_s() * 1e9:.0f} ns "
              f"(CP {params.cp_duration_s * 1e9:.0f} ns)")

    # --- attempt 3: a slow relay (blows the CP) ----------------------------
    slow = np.concatenate([np.zeros(12, dtype=complex), relayed])  # +600 ns
    combined_slow = add_signals(direct, ch_rd.apply_trimmed(slow))
    print()
    decode(np.concatenate([prefix, combined_slow]), rng,
           "direct + SLOW relay (+600ns)")
    print("\nThe slow relay's copy lands outside the cyclic prefix and "
          "turns into inter-symbol interference (paper Fig. 6 / §5.4).")


if __name__ == "__main__":
    main()
