#!/usr/bin/env python3
"""A district of relays under a fault storm, reroute by reroute.

Builds a small seeded district (3×3 homes, one FastForward relay
each, 4 clients per home), runs the hashed load-balancing association
policy, then unleashes a relay fault storm: seeded SI-channel jumps
and lost sounding polls drive each relay's `RelaySupervisor` down the
degradation ladder, and some relays mute to half-duplex.

The fleet control plane answers with fast reroute: every client's
backup relay was precomputed at association time, the typed
`FALLBACK_HALF_DUPLEX` event is the failure signal, and the switch
lands within a hard bound of sounding intervals (detection + the
client's next sounding tick).  The demo prints the association plan,
every relay outage, and — per rerouted client — where it went and how
many 50 ms sounding intervals the switch took.

Run:  python examples/fleet_demo.py
"""

import numpy as np

from repro.fleet import (
    District,
    DistrictConfig,
    FleetReroutePolicy,
    RelayFaultStorm,
    build_candidate_table,
    fleet_experiment,
    make_policy,
)
from repro.fleet.reroute import relay_outage_timeline, relay_timeline_seed

SEED = 2014
STORM = RelayFaultStorm(rate=0.35)
STEPS = 240                      # 240 × 50 ms = 12 s of air time


def main():
    cfg = DistrictConfig(rows=3, cols=3, clients_per_home=4, seed=SEED)
    district = District(cfg)
    table = build_candidate_table(district)
    plan = make_policy("hashed-lb").assign(district, table)
    policy = FleetReroutePolicy()

    print(f"district: {district.num_relays} relays / "
          f"{district.num_clients} clients on a "
          f"{district.width_m:.0f}x{district.depth_m:.0f} m grid")
    print(f"association (hashed-lb): load per relay = "
          f"{plan.relay_load.tolist()}")
    print(f"reroute bound: detection {policy.detection_intervals} + "
          f"next sounding tick (<= {policy.resound_intervals}) = "
          f"{policy.max_reroute_intervals} intervals of 50 ms\n")

    # -- which relays does the storm actually mute? ------------------------
    storm_seed = SEED * 7919 + 8008
    print(f"fault storm (rate {STORM.rate}): relay outages over "
          f"{STEPS} sounding intervals")
    for relay in range(district.num_relays):
        timeline = relay_outage_timeline(
            relay_timeline_seed(storm_seed, relay), STEPS, STORM)
        spans = timeline.outages(STEPS)
        if spans:
            detail = ", ".join(f"[{a}..{b})" for a, b in spans)
            print(f"  relay {relay}: muted {detail}")
    print()

    # -- the same storm through the sweep engine ---------------------------
    result = fleet_experiment(
        config=cfg, policy="hashed-lb", storm=STORM, storm_seed=storm_seed,
        num_steps=STEPS, reroute=policy, jobs=1, cache=False)

    # The experiment aggregates; re-derive the per-client stories from
    # the same pure task function the sweep ran.
    from repro.fleet.experiment import _fleet_cell_block

    print("per-client reroutes (client -> backup, latency in intervals):")

    cells = {}
    for p in plan.clients:
        cells.setdefault(p.primary, []).append(
            (p.client, p.primary, p.backup, p.direct_rate_mbps,
             p.primary_rate_mbps, p.backup_rate_mbps))
    rerouted = 0
    for relay in sorted(cells):
        rows = _fleet_cell_block(storm_seed, STEPS, STORM.as_dict(),
                                 policy.as_dict(), tuple(cells[relay]))
        for row in rows:
            for latency, rescued in zip(row["latencies"], row["rescued"]):
                rerouted += 1
                verdict = "rescued" if rescued else "backup down too"
                print(f"  client {row['client']:2d}: relay "
                      f"{row['primary']} -> {row['backup']}, "
                      f"{latency} intervals ({verdict})")

    print(f"\nsummary: {result['reroutes']} reroutes across "
          f"{result['outage_relays']} muted relays, rescue rate "
          f"{result['rescue_rate']:.0%}, max latency "
          f"{result['max_latency_intervals']} <= bound "
          f"{result['latency_bound_intervals']} intervals")
    print(f"throughput p5/p50/p95: "
          f"{result['throughput_cdf']['percentiles']['5']:.1f} / "
          f"{result['throughput_cdf']['percentiles']['50']:.1f} / "
          f"{result['throughput_cdf']['percentiles']['95']:.1f} Mbps")
    assert result["max_latency_intervals"] <= \
        result["latency_bound_intervals"]
    assert int(np.sum(plan.relay_load)) == district.num_clients


if __name__ == "__main__":
    main()
