#!/usr/bin/env python3
"""Deployment, end to end: one AP, one relay, a roomful of clients (§6).

Every mechanism from the paper working together at sample level:

* the AP prepends each packet with the destination client's PN
  signature (Fig. 19);
* the relay's control plane detects the signature mid-stream, checks
  its sounding book, and arms that client's constructive filter —
  before the preamble even ends (Fig. 20);
* packets from a *neighbouring* network carry unknown signatures and
  are left alone ("FF should only constructively relay the packets from
  its own network");
* each client runs a completely stock receiver.

Run:  python examples/network_deployment.py
"""

import numpy as np

from repro.netsim import Testbed, paper_scenarios
from repro.netsim.network import NetworkSimulation
from repro.utils import make_rng


def main():
    testbed = Testbed(paper_scenarios()[0], seed=3)
    positions = {
        "laptop-livingroom": np.array([3.2, 1.8]),
        "tv-bedroom1": np.array([6.8, 5.6]),
        "phone-bedroom2": np.array([1.5, 6.3]),
    }
    net = NetworkSimulation(testbed, positions, seed=3, mcs_index=1)
    rng = make_rng(1)

    print(f"AP at {testbed.scenario.ap}, relay at {testbed.scenario.relay}")
    print(f"clients: {', '.join(net.clients())}\n")

    print("--- one downlink round (own network) ---")
    payloads = {c: rng.integers(0, 2, 160) for c in net.clients()}
    outcomes = net.run_round(payloads, rng)
    for client, outcome in outcomes.items():
        print(f"  {client:<20} relayed={str(outcome.relayed):<5} "
              f"decoded={str(outcome.decoded):<5} "
              f"bit-exact={outcome.bit_exact}")

    print("\n--- a neighbour's packet (unknown signature) ---")
    foreign = net.send_downlink("phone-bedroom2",
                                rng.integers(0, 2, 160), rng, foreign=True)
    print(f"  relayed={foreign.relayed}  decoded={foreign.decoded}"
          f"  ({foreign.controller_reason})")

    print("\n--- stale channel state (sounding expired) ---")
    stale = net.send_downlink("phone-bedroom2",
                              rng.integers(0, 2, 160), rng, now_s=60.0)
    print(f"  relayed={stale.relayed}  ({stale.controller_reason})")
    print("\nThe relay only acts when it knows who the packet is for and "
          "holds fresh channels — a missed relay is harmless, a wrong "
          "filter is not (§6).")


if __name__ == "__main__":
    main()
