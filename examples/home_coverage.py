#!/usr/bin/env python3
"""Home coverage maps: the paper's Figs. 1 and 2 as ASCII heatmaps.

Sweeps a grid of client positions across the Fig. 1 home and renders
the effective SNR field and the usable-MIMO-streams field, with the AP
alone and with the FastForward relay active.

Run:  python examples/home_coverage.py
"""

import numpy as np

from repro.netsim import Testbed, coverage_heatmap, paper_scenarios

SNR_GLYPHS = " .:-=+*#%@"  # low -> high


def _render_field(positions, values, vmin, vmax, glyphs):
    xs = np.unique(positions[:, 0])
    ys = np.unique(positions[:, 1])
    lines = []
    for y in ys[::-1]:
        row = []
        for x in xs:
            idx = np.argmin(np.hypot(positions[:, 0] - x,
                                     positions[:, 1] - y))
            v = np.clip((values[idx] - vmin) / (vmax - vmin), 0.0, 0.999)
            row.append(glyphs[int(v * len(glyphs))])
        lines.append("".join(row))
    return "\n".join(lines)


def main():
    scenario = paper_scenarios()[0]  # the Fig. 1 home
    testbed = Testbed(scenario, seed=0)
    print(f"scenario: {scenario.name}  (AP at {scenario.ap}, "
          f"relay at {scenario.relay})")
    print("computing coverage grid (this runs one relay optimisation "
          "per grid point)...")
    result = coverage_heatmap(testbed, spacing_m=0.75, seed=1)

    print("\n=== Fig. 1: effective SNR (dB), scale 0..30 ===")
    print("\n-- AP only --")
    print(_render_field(result.positions, result.snr_ap_only_db,
                        0.0, 30.0, SNR_GLYPHS))
    print("\n-- AP + FF relay --")
    print(_render_field(result.positions, result.snr_with_ff_db,
                        0.0, 30.0, SNR_GLYPHS))
    print(f"\nmedian SNR improvement: "
          f"{result.median_improvement_db():.1f} dB")

    print("\n=== Fig. 2: usable MIMO spatial streams (0/1/2) ===")
    print("\n-- AP only --")
    print(_render_field(result.positions,
                        result.streams_ap_only.astype(float),
                        0.0, 2.01, " 12"))
    print("\n-- AP + FF relay --")
    print(_render_field(result.positions,
                        result.streams_with_ff.astype(float),
                        0.0, 2.01, " 12"))
    print(f"\nfraction of home with 2 usable streams: "
          f"{result.fraction_full_rank(False):.0%} (AP only) -> "
          f"{result.fraction_full_rank(True):.0%} (with FF)")


if __name__ == "__main__":
    main()
