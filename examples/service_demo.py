#!/usr/bin/env python3
"""A fault storm hits the always-on relay service, live sessions ride it out.

Eight seeded client sessions stream IQ frames through two shared,
memoised relay chains.  At t = 150 ms a storm window opens on
``chain-0`` only: SI-channel jumps void its tuned cancellation and
keep re-arriving, so the chain's supervisor walks the PR 2 ladder —
retune fails mid-storm, gain backs off, the chain mutes to
half-duplex and the scheduler sheds its frames with a declared
``half-duplex`` reason while marking the affected sessions DEGRADED.
Sessions on ``chain-1`` never notice.  When the window closes the
next retune succeeds, the chain recovers, and the degraded sessions
RESUME — every hop visible in the typed event logs printed below,
and the frame ledger conserves: admitted == processed + shed.

Run:  python examples/service_demo.py
"""

from repro.service import (
    ChainPool,
    PumpConfig,
    SchedulerPolicy,
    ServicePump,
    ServiceScheduler,
    ServiceStorm,
    TrafficConfig,
    make_sessions,
)

STORM_START_S = 0.15
STORM_DURATION_S = 0.2


def build_pump():
    pool = ChainPool(seed=2014)
    scheduler = ServiceScheduler(policy=SchedulerPolicy(), pool=pool)
    sessions = make_sessions(
        8, tenants=("tenant-a", "tenant-b"), seed=2014,
        chain_keys=("chain-0", "chain-1"), model_mix=("cbr",),
        traffic=TrafficConfig(model="cbr", rate_fps=100.0,
                              start_s=0.05, duration_s=0.6))
    # One explicit storm window, on chain-0 only -- chain-1 is the
    # control group.  Re-jumps every 50 ms keep retunes failing for
    # the whole window.
    storm = ServiceStorm.scheduled(STORM_START_S, STORM_DURATION_S,
                                   chain_keys=("chain-0",))
    return ServicePump(scheduler, sessions, storm=storm,
                       config=PumpConfig(tick_s=0.005))


def main():
    pump = build_pump()
    print(__doc__.splitlines()[0])
    print("=" * 70)
    print(f"storm window: [{STORM_START_S * 1e3:.0f} ms, "
          f"{(STORM_START_S + STORM_DURATION_S) * 1e3:.0f} ms) on chain-0\n")

    pump.run()
    sched = pump.scheduler

    print("Supervisor ladder, per chain")
    print("-" * 70)
    for entry in sched.pool.entries():
        print(f"chain {entry.key}: state={entry.supervisor.state.value}, "
              f"SI jumps={entry.stage.jump_count}, "
              f"frames carried={entry.frames}")
        log = entry.supervisor.event_log()
        print(log if log else "  (no events -- the storm never touched it)")
        print()

    print("Sessions that degraded and resumed")
    print("-" * 70)
    touched = [s for s in pump.sessions
               if any(e.kind.value == "degraded" for e in s.events)]
    for session in touched:
        print(f"{session.session_id} (tenant={session.tenant}, "
              f"chain={session.chain_key}):")
        for event in session.events:
            print(f"  {event}")
        print()
    spared = [s.session_id for s in pump.sessions if s not in touched]
    print(f"untouched sessions (all on chain-1 or out of window): "
          f"{', '.join(spared)}\n")

    print("Frame ledger")
    print("-" * 70)
    sheds = {}
    for event in sched.events:
        if event.kind.value == "shed":
            reason = event.detail["reason"]
            sheds[reason] = sheds.get(reason, 0) + 1
    print(f"offered {sched.offered}, admitted {sched.admitted}, "
          f"processed {sched.processed}, shed {sched.shed}")
    for reason, count in sorted(sheds.items()):
        print(f"  shed[{reason}] = {count}")
    sched.check_conservation()
    print("conservation holds: admitted == processed + shed, "
          "every shed declared")

    # The demo's own assertions -- the storm must actually bite and heal.
    assert touched, "at least one session should ride the ladder down"
    assert all(not s.degraded for s in pump.sessions), \
        "every degraded session should have resumed"
    kinds = [e.kind for e in
             sched.pool.entry("chain-0").supervisor.events]
    names = [k.value for k in kinds]
    assert "fallback-half-duplex" in names and "recovered" in names, \
        "chain-0 should mute and recover"
    print("\nThe service stayed up: chain-0 muted and recovered, its "
          "sessions resumed,\nand not one frame went missing "
          "unexplained.")


if __name__ == "__main__":
    main()
