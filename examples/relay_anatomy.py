#!/usr/bin/env python3
"""A guided tour of the relay's internals.

Walks the three mechanisms that make FastForward work, with measured
numbers from the simulation models:

1. self-interference cancellation — the noise-injection tuning loop and
   the 108-110 dB figure of §3.3, plus the amplification/stability
   trade-off of Fig. 7;
2. the construct-and-forward filter — the ideal per-subcarrier response
   and its split into the 4-tap digital pre-filter and the 100 ps analog
   line (§3.4);
3. the latency budget — where the nanoseconds go, and why causal
   digital cancellation is the linchpin (§3.3, Fig. 9).

Run:  python examples/relay_anatomy.py
"""

import numpy as np

from repro.cancellation import CancellationPipeline, RelayLoop
from repro.core import LatencyBudget, siso_cnf_phase
from repro.phy.params import WIFI_20MHZ
from repro.utils import make_rng


def section(title):
    print(f"\n{'=' * 64}\n{title}\n{'=' * 64}")


def cancellation_tour():
    section("1. Self-interference cancellation (§3.3)")
    pipe = CancellationPipeline(rng=1)
    print("tuning with the injected Gaussian probe (offline bring-up)...")
    pipe.tune()
    report = pipe.measure()
    print(f"  {report}")
    print(f"  paper's figure: 108-110 dB (max observable: 20 dBm TX over "
          f"a -90 dBm floor = 110 dB)")

    pipe_online = CancellationPipeline(rng=2)
    print("re-tuning ONLINE (probe 30 dB under live relayed traffic,\n"
          "  iterative retargeting -- the §3.3 correlation-trap-safe loop)...")
    pipe_online.tune(online=True, iterations=6)
    print(f"  {pipe_online.measure()}")

    print("\nloop stability (Fig. 7): amplification vs isolation")
    rng = make_rng(0)
    src = 1e-4 * (rng.standard_normal(2500) + 1j * rng.standard_normal(2500))
    for a in (100, 107, 112):
        res = RelayLoop(a, 110.0).run(src)
        verdict = "stable" if res.stable else "UNSTABLE (rings to saturation)"
        print(f"  A = {a:3d} dB vs C = 110 dB -> {verdict}")


def cnf_tour():
    section("2. The construct-and-forward filter (§3.2, §3.4)")
    from repro.channel import PropagationModel, fig1_home
    from repro.core import FastForwardRelay, RelayConfig

    plan, ap, relay_pos = fig1_home()
    pm = PropagationModel(plan, rms_delay_spread_s=30e-9)
    params = WIFI_20MHZ
    freqs = params.subcarrier_freqs_hz()
    used = params.used_subcarriers()
    client = np.array([7.0, 5.5])
    rng = make_rng(5)

    def chan(a, b):
        return pm.siso_channel(a, b, params.sample_period_s, num_taps=4,
                               rng=rng).frequency_response(used, 64)

    h_sd, h_sr, h_rd = chan(ap, client), chan(ap, relay_pos), \
        chan(relay_pos, client)
    ideal = siso_cnf_phase(h_sd, h_sr, h_rd)
    print(f"  ideal filter: unit-modulus, per-subcarrier phases "
          f"spanning {np.ptp(np.unwrap(np.angle(ideal))):.2f} rad "
          f"across the band")

    relay = FastForwardRelay(RelayConfig(params=params))
    relay.configure_siso_link(h_sd, h_sr, h_rd)
    decomp = relay.decomposition
    print(f"  split: {decomp.digital_taps.size} digital taps @ "
          f"{decomp.digital_rate_hz / 1e6:.0f} Msps + "
          f"{decomp.analog_line.num_taps} analog taps @ "
          f"{decomp.analog_line.tap_delays_s[1] * 1e12:.0f} ps spacing")
    print(f"  fit error vs (slid) ideal: {decomp.fit_error_db:.1f} dB "
          f"(alternating least squares / SCP)")
    print(f"  digital group delay: "
          f"{decomp.digital_group_delay_s() * 1e9:.1f} ns "
          f"(worst case {decomp.worst_case_digital_delay_s() * 1e9:.1f} ns, "
          f"budget 50 ns)")
    a = 10.0 ** (relay.amplification_db / 20.0)
    blind = np.abs(h_sd + h_rd * a * h_sr)
    cnf = np.abs(h_sd + h_rd * relay.filter_response * a * h_sr)
    print(f"  combined channel gain (band mean, relative to blind "
          f"forwarding): {20 * np.log10(cnf.mean() / blind.mean()):+.1f} dB")


def latency_tour():
    section("3. The latency budget (§3.3, Fig. 9, §5.4)")
    budget = LatencyBudget()
    rows = [
        ("ADC + DAC", budget.adc_dac_s),
        ("digital cancellation (causal!)", budget.digital_cancellation_s),
        ("CNF digital pre-filter", budget.cnf_digital_s),
        ("CNF analog filter", budget.cnf_analog_s),
        ("analog cancellation path", budget.analog_cancellation_s),
    ]
    for name, value in rows:
        print(f"  {name:<32} {value * 1e9:6.1f} ns")
    print(f"  {'TOTAL':<32} {budget.total_s() * 1e9:6.1f} ns "
          f"(WiFi CP: {WIFI_20MHZ.cp_duration_s * 1e9:.0f} ns)")
    buffered = budget.non_causal_digital(350e-9)
    print(f"\n  prior work's buffered (non-causal) digital cancellation "
          f"would add 350 ns:\n  total {buffered.total_s() * 1e9:.0f} ns -> "
          f"fits WiFi CP: {buffered.fits_cp(WIFI_20MHZ)} "
          f"(the reason FastForward's causal filter matters)")


def closed_loop_tour():
    section("4. The loop, closed (Figs. 3 and 7, live)")
    from repro.cancellation.pipeline import bandlimited_gaussian
    from repro.core import FullDuplexRelaySession

    pipe = CancellationPipeline(rng=11)
    pipe.tune()
    session = FullDuplexRelaySession(pipe, amplification_db=78.0, rng=12)
    print(f"  loop effective isolation: "
          f"{session.measured_isolation_db(rng=13):.1f} dB")
    rng = make_rng(14)
    src = bandlimited_gaussian(12000, -60.0, pipe.occupied_fraction, rng)
    res = session.run(src, rng=rng)
    import numpy as _np
    tail = slice(2000, None)
    corr = abs(_np.vdot(res.cleaned[tail], src[tail])) / (
        _np.linalg.norm(res.cleaned[tail]) * _np.linalg.norm(src[tail]))
    print(f"  A = 78 dB: stable={res.stable}, the relay hears the source "
          f"at correlation {corr:.3f}\n             WHILE transmitting it "
          f"{78:.0f} dB louder on the same frequency")
    hot = FullDuplexRelaySession(pipe, amplification_db=105.0, rng=12)
    res_hot = hot.run(src, rng=make_rng(15))
    print(f"  A = 105 dB: stable={res_hot.stable} — the positive feedback "
          f"loop rings to {res_hot.peak_tx_dbm:.0f} dBm saturation")


def main():
    cancellation_tour()
    cnf_tour()
    latency_tour()
    closed_loop_tour()


if __name__ == "__main__":
    main()
