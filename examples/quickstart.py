#!/usr/bin/env python3
"""Quickstart: a FastForward relay rescuing one edge client.

Builds the paper's Fig. 1 home, places an AP, the FF relay and a client
at the far bedroom, and walks the public API end to end:

1. draw the three channels construct-and-forward needs;
2. configure the relay (filter computation, amplification control);
3. compare destination SNR and PHY throughput with and without it.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.channel import PropagationModel, fig1_home
from repro.core import FastForwardRelay, RelayConfig
from repro.netsim.throughput import ap_only_siso_rate, ff_siso_rate
from repro.phy.params import WIFI_20MHZ
from repro.phy.rates import effective_snr_db
from repro.utils import make_rng


def main():
    # --- the scene: the paper's Fig. 1 home -------------------------------
    plan, ap, relay_pos = fig1_home()
    propagation = PropagationModel(plan, rms_delay_spread_s=30e-9)
    client = np.array([7.8, 6.2])  # far bedroom, behind walls

    print(f"floor plan : {plan.name} ({plan.width_m:.0f} x {plan.depth_m:.0f} m)")
    print(f"AP         : {ap},  relay: {relay_pos},  client: {client}")

    # --- the three channels the relay needs (§4.2) ------------------------
    params = WIFI_20MHZ
    used = params.used_subcarriers()
    rng = make_rng(42)

    def channel(a, b):
        chan = propagation.siso_channel(a, b, params.sample_period_s,
                                        num_taps=4, rng=rng)
        return chan.frequency_response(used, params.fft_size)

    h_sd = channel(ap, client)        # source -> destination (from sounding)
    h_sr = channel(ap, relay_pos)     # source -> relay (measured locally)
    h_rd = channel(relay_pos, client) # relay -> destination (reciprocity)

    direct_snr = effective_snr_db(
        10 * np.log10(np.abs(h_sd) ** 2 * 100.0 / 1e-9 + 1e-30))
    print(f"\ndirect link SNR      : {direct_snr:6.1f} dB "
          f"-> {ap_only_siso_rate(h_sd):5.1f} Mbps")

    # --- the FastForward relay --------------------------------------------
    relay = FastForwardRelay(RelayConfig(params=params))
    relay.configure_siso_link(h_sd, h_sr, h_rd)

    boosted_snr = effective_snr_db(relay.destination_snr_db())
    print(f"with FF relay        : {boosted_snr:6.1f} dB "
          f"-> {ff_siso_rate(relay):5.1f} Mbps")
    print(f"\nrelay amplification  : {relay.amplification_db:.1f} dB "
          f"(cancellation and noise-safety caps applied)")
    print(f"processing latency   : {relay.latency_s() * 1e9:.0f} ns "
          f"(CP budget: {params.cp_duration_s * 1e9:.0f} ns)")
    decomp = relay.decomposition
    print(f"CNF filter split     : 4 digital taps @ 80 Msps + "
          f"4 analog taps @ 100 ps (fit {decomp.fit_error_db:.1f} dB)")


if __name__ == "__main__":
    main()
